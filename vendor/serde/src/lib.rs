//! Vendored no-op subset of `serde` for offline builds.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward-looking
//! annotations — nothing serializes yet — so this stub provides the two trait names
//! and inert derive macros that expand to nothing. When the build environment gains
//! registry access, deleting `vendor/` and the `[patch]`-free path deps restores the
//! real crate with no source changes.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; carries no methods in this stub.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; carries no methods in this stub.
pub trait Deserialize<'de> {}
