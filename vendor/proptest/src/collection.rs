//! Collection strategies: `vec` and `hash_set` over a size range.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive size bounds for collection strategies (subset of
/// `proptest::collection::SizeRange`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_u64(self.size.min as u64, self.size.max as u64) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with a target size drawn from `size`.
///
/// Like the real proptest, the set may come out smaller than the drawn size if the
/// element domain is too small to furnish enough distinct values; a bounded number of
/// redraws keeps generation total.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = rng.range_u64(self.size.min as u64, self.size.max as u64) as usize;
        let mut set = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(16).max(64) {
            set.insert(self.element.new_value(rng));
            attempts += 1;
        }
        // Never return fewer than the minimum while distinct values keep appearing.
        while set.len() < self.size.min && attempts < 1_000_000 {
            set.insert(self.element.new_value(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size_bounds() {
        let s = vec(any::<u32>(), 3..10);
        let mut rng = TestRng::for_test("vec_respects_size_bounds");
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((3..10).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn hash_set_reaches_min_size() {
        let s = hash_set(any::<u16>(), 1..500);
        let mut rng = TestRng::for_test("hash_set_reaches_min_size");
        for _ in 0..100 {
            assert!(!s.new_value(&mut rng).is_empty());
        }
    }
}
