//! The [`Strategy`] trait and the combinators this workspace uses: `any`, integer
//! ranges, tuples, `prop_map`, boxing, and [`Union`] (backing `prop_oneof!`).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Object-safe so unions can mix
/// differently-shaped strategies over the same value type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<T, S: Strategy<Value = T> + ?Sized> Strategy for &S {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Types with a canonical "generate anything" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// Strategy generating any value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_u64(self.start as u64, self.end as u64 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.range_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

strategy_tuple!(A: 0, B: 1);
strategy_tuple!(A: 0, B: 1, C: 2);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Uniform choice among type-erased strategies; produced by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.range_usize(0, self.options.len());
        self.options[i].new_value(rng)
    }
}
