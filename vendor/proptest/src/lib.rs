//! Vendored minimal property-testing harness exposing the subset of the `proptest`
//! API this workspace uses: [`prelude::Strategy`] with `prop_map`, [`prelude::any`],
//! integer-range and tuple strategies, [`collection::vec`] / [`collection::hash_set`],
//! the [`prop_oneof!`] union macro, `ProptestConfig::with_cases`, and the
//! [`proptest!`] test macro with `prop_assert*` assertions.
//!
//! It is a deliberately small re-implementation for an offline build environment, not
//! a copy of proptest's source. Differences from the real crate:
//!
//! * **No shrinking.** A failing case panics with the generated values in the assert
//!   message (every model test here formats the inputs), but is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the test name, so
//!   failures reproduce exactly across runs; set `PROPTEST_SEED` to vary it.
//! * `prop_assert*` delegate to the panicking `assert*` macros instead of returning
//!   `Result`, which is observationally equivalent under the test harness.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
///
/// Weights (`N => strategy`) are not supported by this vendored subset.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...) { .. }` runs
/// `ProptestConfig::cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr)) => {};
    // `#[test]` is captured by the meta repetition (alongside doc comments) and
    // re-emitted verbatim on the generated zero-argument wrapper.
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let run = || {
                    $(let $arg = $crate::strategy::Strategy::new_value(&$strategy, &mut rng);)+
                    $body
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest: case {}/{} of `{}` failed (vendored runner: no shrinking)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_cases!(($config) $($rest)*);
    };
}
