//! Test configuration and the deterministic RNG driving value generation.

/// Subset of `proptest::test_runner::ProptestConfig`: only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated input cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64 generator; deterministic per test name so failures reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name (FNV-1a) xor the optional `PROPTEST_SEED` env var.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng {
            state: h ^ env_seed,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi]` (inclusive); `lo <= hi` required.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Modulo bias is irrelevant for test-input generation.
        lo + self.next_u64() % (span + 1)
    }

    /// Uniform `usize` in `[lo, hi)`; `lo < hi` required.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        self.range_u64(lo as u64, (hi - 1) as u64) as usize
    }
}
