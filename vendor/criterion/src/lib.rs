//! Vendored minimal benchmark harness exposing the subset of the `criterion` API this
//! workspace uses: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`]
//! / [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`], [`BatchSize`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model (much simpler than the real criterion, no statistics engine):
//! each benchmark is warmed up for ~20 ms, then timed for ~80 ms, and the mean
//! wall-clock time per iteration is printed as a single tab-separated line. Enough to
//! eyeball relative cost and — the point for this workspace — to keep every
//! `cargo bench` target compiling and runnable offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(80);

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("## {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs (reported as a rate).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this harness sizes runs by wall-clock time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness uses a fixed measurement window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Ends the group (purely cosmetic in this harness).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        if bencher.iterations == 0 {
            eprintln!("{}/{id}\t(no iterations)", self.name);
            return;
        }
        let ns = bencher.total.as_nanos() as f64 / bencher.iterations as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("\t{:.0} elem/s", n as f64 * 1e9 / ns)
            }
            Some(Throughput::Bytes(n)) => {
                format!("\t{:.0} B/s", n as f64 * 1e9 / ns)
            }
            None => String::new(),
        };
        eprintln!("{}/{id}\t{ns:.1} ns/iter{rate}", self.name);
    }
}

/// Times closures; handed to benchmark bodies.
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` in a loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup: discover a batch size that keeps clock overhead negligible.
        let mut batch = 1u64;
        let warmup_end = Instant::now() + WARMUP;
        while Instant::now() < warmup_end {
            for _ in 0..batch {
                black_box(routine());
            }
            batch = (batch * 2).min(1 << 20);
        }
        let measure_end = Instant::now() + MEASURE;
        while Instant::now() < measure_end {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total += start.elapsed();
            self.iterations += batch;
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warmup_end = Instant::now() + WARMUP;
        while Instant::now() < warmup_end {
            let input = setup();
            black_box(routine(input));
        }
        let measure_end = Instant::now() + MEASURE;
        while Instant::now() < measure_end {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Hint for how much state `iter_batched` setup builds (ignored by this harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Rebuild state on every iteration.
    PerIteration,
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for `name` measured at `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id varying only by `parameter`.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.parameter {
            Some(p) if self.name.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{p}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and any user filter args); this harness runs
            // everything unconditionally.
            $($group();)+
        }
    };
}
