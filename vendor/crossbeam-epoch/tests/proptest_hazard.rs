//! Model check of the hazard substrate's protect/retire/scan protocol.
//!
//! A single thread drives several [`HpHandle`]s registered on one private
//! [`HazardDomain`] through randomized operation sequences — pin, unpin, repin,
//! protected observation, retirement, era advances, scans, handle drop and slot
//! reuse — while a shadow model tracks which items each *currently pinned*
//! handle has observed through [`HpHandle::protected`] since it pinned. The real
//! substrate frees real closures (per-item `Arc<AtomicU32>` counters), and after
//! every operation the model's protection claims are checked against the real
//! free counts:
//!
//! * **Safety** — an item observed through `protected` while live is never freed
//!   for as long as its observer stays pinned (the protect → re-validate
//!   contract: the observation's era lies inside the observer's published
//!   interval, and a later retirement cannot leave that interval).
//! * **At-most-once** — no item's free counter ever exceeds one.
//! * **Exactly-once on drain** — when every handle and then the domain drops,
//!   every retired item has been freed exactly once (nothing leaks through slot
//!   reuse or orphan hand-off) and every unretired item remains untouched.
//!
//! Weakening the scan's interval-intersection test (the documented canary
//! mutation in `hazard::partition_covered`) makes the safety check fail within a
//! handful of cases.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crossbeam_epoch::hazard::{HazardDomain, HpHandle};
use proptest::prelude::*;

const PARTICIPANTS: usize = 3;
const MAX_ITEMS: usize = 48;

/// One step of the randomized schedule, interpreted modulo the current state.
#[derive(Debug, Clone)]
enum Op {
    Pin(usize),
    Unpin(usize),
    Repin(usize),
    /// Allocate a fresh item (its birth is the domain's current era).
    Alloc,
    /// `participant` observes `item` through a protected read, if it is pinned
    /// and the item is still live (unretired): a model of loading the item's
    /// pointer from a still-reachable shared location.
    Protect(usize, usize),
    /// `participant` retires `item` with the item's recorded birth era.
    Retire(usize, usize),
    AdvanceEra,
    Scan(usize),
    Flush(usize),
    /// Drop `participant`'s handle (releasing its slot and orphaning its
    /// garbage) and immediately re-register — exercising slot reuse.
    Reregister(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let p = 0..PARTICIPANTS;
    let item = 0..MAX_ITEMS;
    // The vendored `prop_oneof!` draws alternatives uniformly; repeating the
    // protect/retire/alloc arms biases schedules toward the interesting
    // protect-while-retiring interleavings.
    prop_oneof![
        p.clone().prop_map(Op::Pin),
        p.clone().prop_map(Op::Pin),
        p.clone().prop_map(Op::Unpin),
        p.clone().prop_map(Op::Repin),
        (0..1usize).prop_map(|_| Op::Alloc),
        (0..1usize).prop_map(|_| Op::Alloc),
        (0..1usize).prop_map(|_| Op::Alloc),
        (p.clone(), item.clone()).prop_map(|(a, b)| Op::Protect(a, b)),
        (p.clone(), item.clone()).prop_map(|(a, b)| Op::Protect(a, b)),
        (p.clone(), item.clone()).prop_map(|(a, b)| Op::Protect(a, b)),
        (p.clone(), item.clone()).prop_map(|(a, b)| Op::Retire(a, b)),
        (p.clone(), item.clone()).prop_map(|(a, b)| Op::Retire(a, b)),
        (p.clone(), item).prop_map(|(a, b)| Op::Retire(a, b)),
        (0..1usize).prop_map(|_| Op::AdvanceEra),
        p.clone().prop_map(Op::Scan),
        p.clone().prop_map(Op::Flush),
        p.prop_map(Op::Reregister),
    ]
}

/// Shadow state for one allocated item.
struct Item {
    freed: Arc<AtomicU32>,
    birth: u64,
    retired: bool,
}

/// Items `participant` observed through `protected` (indices into `items`),
/// valid only while its current pin lasts.
type HeldSets = Vec<Vec<usize>>;

fn check_protection(items: &[Item], held: &HeldSets, handles: &[Option<HpHandle<'_>>]) {
    for (p, set) in held.iter().enumerate() {
        let pinned = handles[p].as_ref().is_some_and(|h| h.is_pinned());
        if !pinned {
            continue;
        }
        for &i in set {
            assert_eq!(
                items[i].freed.load(Ordering::SeqCst),
                0,
                "item {i} (birth {}) freed while participant {p} still pins and protects it",
                items[i].birth
            );
        }
    }
    for (i, item) in items.iter().enumerate() {
        assert!(
            item.freed.load(Ordering::SeqCst) <= 1,
            "item {i} freed more than once"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn protect_retire_scan_interleavings_free_safely_and_exactly_once(
        ops in proptest::collection::vec(op_strategy(), 1..250)
    ) {
        let domain = HazardDomain::new();
        let mut handles: Vec<Option<HpHandle<'_>>> =
            (0..PARTICIPANTS).map(|_| Some(domain.register())).collect();
        let mut items: Vec<Item> = Vec::new();
        let mut held: HeldSets = vec![Vec::new(); PARTICIPANTS];

        for op in &ops {
            match *op {
                Op::Pin(p) => {
                    let h = handles[p].as_ref().unwrap();
                    if !h.is_pinned() {
                        h.pin();
                    }
                }
                Op::Unpin(p) => {
                    let h = handles[p].as_ref().unwrap();
                    if h.is_pinned() {
                        h.unpin();
                        held[p].clear();
                    }
                }
                Op::Repin(p) => {
                    let h = handles[p].as_ref().unwrap();
                    if h.is_pinned() {
                        // Repin is an unpin+pin: prior observations lapse.
                        h.repin();
                        held[p].clear();
                    }
                }
                Op::Alloc => {
                    if items.len() < MAX_ITEMS {
                        items.push(Item {
                            freed: Arc::new(AtomicU32::new(0)),
                            birth: domain.current_era(),
                            retired: false,
                        });
                    }
                }
                Op::Protect(p, raw) => {
                    if items.is_empty() {
                        continue;
                    }
                    let i = raw % items.len();
                    let h = handles[p].as_ref().unwrap();
                    // Only a pinned participant may observe, and only an item
                    // that is still reachable (unretired) and unfreed — exactly
                    // what a correct traversal can encounter.
                    if h.is_pinned()
                        && !items[i].retired
                        && items[i].freed.load(Ordering::SeqCst) == 0
                    {
                        let freed = Arc::clone(&items[i].freed);
                        let observed = h.protected(&mut || freed.load(Ordering::SeqCst));
                        prop_assert_eq!(observed, 0, "protected read of a freed item");
                        if !held[p].contains(&i) {
                            held[p].push(i);
                        }
                    }
                }
                Op::Retire(p, raw) => {
                    if items.is_empty() {
                        continue;
                    }
                    let i = raw % items.len();
                    if !items[i].retired {
                        items[i].retired = true;
                        let freed = Arc::clone(&items[i].freed);
                        let h = handles[p].as_ref().unwrap();
                        // SAFETY (model): the item is marked retired exactly once
                        // and never observed again afterwards; the closure only
                        // bumps an Arc-kept counter.
                        unsafe {
                            h.retire_unchecked(items[i].birth, move || {
                                freed.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    }
                }
                Op::AdvanceEra => {
                    domain.advance_era();
                }
                Op::Scan(p) => handles[p].as_ref().unwrap().scan(),
                Op::Flush(p) => handles[p].as_ref().unwrap().flush(),
                Op::Reregister(p) => {
                    // Dropping the handle orphans its garbage and releases its
                    // slot; the fresh registration may reuse that slot and must
                    // not inherit the previous owner's protection.
                    handles[p] = None;
                    held[p].clear();
                    handles[p] = Some(domain.register());
                }
            }
            check_protection(&items, &held, &handles);
        }

        // Drain: drop every handle (orphaning leftovers), then the domain
        // (running every orphan exactly once).
        drop(handles);
        drop(domain);
        for (i, item) in items.iter().enumerate() {
            let freed = item.freed.load(Ordering::SeqCst);
            if item.retired {
                prop_assert_eq!(freed, 1, "retired item {} freed {} times", i, freed);
            } else {
                prop_assert_eq!(freed, 0, "unretired item {} freed {} times", i, freed);
            }
        }
    }
}
