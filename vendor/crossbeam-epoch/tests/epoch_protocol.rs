//! Black-box protocol tests for the vendored epoch reclamation, including
//! property-based stress with the vendored proptest (deterministic per-test seeds).
//!
//! The in-crate unit tests cover the internals (epoch arithmetic, participant
//! registry reuse, the `e + 2` readiness gate); these tests pin down the observable
//! contract: deferred closures run exactly once, never while a guard that could
//! reach them is pinned, regardless of nesting, thread churn, or thread exit.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use crossbeam_epoch::pin;
use proptest::prelude::*;

/// Repeatedly pin+flush until `done` holds (reclamation is eventual; exiting threads
/// publish their bags from TLS teardown, which can lag a join).
fn drain_until(mut done: impl FnMut() -> bool) -> bool {
    for _ in 0..10_000 {
        pin().flush();
        if done() {
            return true;
        }
        std::thread::yield_now();
    }
    done()
}

/// A guard pinned on another thread blocks reclamation of everything deferred while
/// it is pinned; dropping it releases the garbage.
#[test]
fn pinned_holder_blocks_reclamation_until_dropped() {
    let ran = Arc::new(AtomicUsize::new(0));
    let (pinned_tx, pinned_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let holder = std::thread::spawn(move || {
        let guard = pin();
        pinned_tx.send(()).unwrap();
        release_rx.recv().unwrap();
        drop(guard);
    });
    pinned_rx.recv().unwrap();

    // Deferred strictly after the holder pinned: must not run while it stays pinned.
    {
        let guard = pin();
        let ran = Arc::clone(&ran);
        unsafe { guard.defer_unchecked(move || ran.fetch_add(1, Ordering::SeqCst)) };
        guard.flush();
    }
    for _ in 0..64 {
        pin().flush();
    }
    assert_eq!(
        ran.load(Ordering::SeqCst),
        0,
        "garbage ran while a thread pinned at its retirement epoch was still live"
    );

    release_tx.send(()).unwrap();
    holder.join().unwrap();
    assert!(drain_until(|| ran.load(Ordering::SeqCst) == 1));
}

/// Threads that exit after deferring still get their garbage published and run
/// (thread-exit unregistration: the participant slot is released and the residual
/// bag pushed, so reclamation neither stalls nor leaks).
#[test]
fn exiting_threads_neither_stall_nor_leak() {
    let ran = Arc::new(AtomicUsize::new(0));
    let rounds = 24;
    for _ in 0..rounds {
        let ran = Arc::clone(&ran);
        std::thread::spawn(move || {
            let guard = pin();
            unsafe { guard.defer_unchecked(move || ran.fetch_add(1, Ordering::SeqCst)) };
            // No flush: the bag must survive via thread-exit publication.
        })
        .join()
        .unwrap();
    }
    assert!(
        drain_until(|| ran.load(Ordering::SeqCst) == rounds),
        "only {} of {rounds} exit-published closures ran",
        ran.load(Ordering::SeqCst)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary nesting depths: guards nest, the innermost defer is reclaimed after
    /// all of them unwind, and never before.
    #[test]
    fn nested_guards_release_in_lifo_order(depth in 1usize..12) {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let guards: Vec<_> = (0..depth).map(|_| pin()).collect();
            let counter = Arc::clone(&ran);
            unsafe {
                guards
                    .last()
                    .unwrap()
                    .defer_unchecked(move || counter.fetch_add(1, Ordering::SeqCst));
            }
            guards.last().unwrap().flush();
            // While this thread is pinned (any depth), its epoch cannot be passed.
            for _ in 0..8 {
                pin().flush();
            }
            prop_assert_eq!(ran.load(Ordering::SeqCst), 0);
            drop(guards);
        }
        prop_assert!(drain_until(|| ran.load(Ordering::SeqCst) == 1));
    }

    /// Many-thread pin/defer/collect stress: every boxed allocation deferred by every
    /// thread is dropped exactly once (drop counters), with interleaved flushes.
    #[test]
    fn concurrent_pin_defer_collect_is_exact_once(
        threads in 2usize..=8,
        per_thread in 16usize..200,
        flush_every in 1usize..32,
    ) {
        let dropped = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let dropped = Arc::clone(&dropped);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let guard = pin();
                        let d = Arc::clone(&dropped);
                        let boxed = Box::into_raw(Box::new(i as u64));
                        unsafe {
                            guard.defer_unchecked(move || {
                                drop(Box::from_raw(boxed));
                                d.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                        if i % flush_every == 0 {
                            guard.flush();
                        }
                    }
                    // Publish the residual bag before the scope observes completion.
                    pin().flush();
                });
            }
        });
        let expected = threads * per_thread;
        prop_assert!(
            drain_until(|| dropped.load(Ordering::SeqCst) == expected),
            "dropped {} of {expected}",
            dropped.load(Ordering::SeqCst)
        );
        // Exact once: the counter can never overshoot (a double free would).
        prop_assert_eq!(dropped.load(Ordering::SeqCst), expected);
    }

    /// Repin lets the epoch pass a long-lived guard: garbage deferred before the
    /// repin becomes collectable afterwards even though the guard stays alive.
    #[test]
    fn repin_releases_garbage_held_by_a_long_pin(spins in 1usize..16) {
        let ran = Arc::new(AtomicUsize::new(0));
        let mut long = pin();
        {
            let ran = Arc::clone(&ran);
            unsafe { long.defer_unchecked(move || ran.fetch_add(1, Ordering::SeqCst)) };
            long.flush();
        }
        for _ in 0..spins {
            long.repin();
            long.flush();
        }
        // A few more repin+flush cycles always suffice (each advances the epoch).
        for _ in 0..8 {
            long.repin();
            long.flush();
            if ran.load(Ordering::SeqCst) == 1 {
                break;
            }
        }
        prop_assert_eq!(ran.load(Ordering::SeqCst), 1);
        drop(long);
    }
}
