//! A lock-free epoch-based memory reclamation scheme exposing the subset of the
//! `crossbeam-epoch` API this workspace uses: [`pin`], [`Guard`],
//! [`Guard::defer_unchecked`], [`Guard::flush`], and [`Guard::repin`] — plus
//! [`pin_domain`], a fixed pool of **independent epoch domains** (the moral
//! equivalent of upstream crossbeam's `Collector`, statically allocated so domains
//! are immortal and the hot path stays allocation- and lock-free).
//!
//! This crate is vendored because the build environment has no access to a crates.io
//! registry. It is a from-scratch implementation of the design the real
//! `crossbeam-epoch` uses (Fraser's three-epoch scheme with per-thread garbage bags),
//! not a copy of crossbeam's source. No operation on the hot path — pin, unpin,
//! defer, or collection — acquires a mutex:
//!
//! * **Global epoch.** A monotone counter. It advances only when every *pinned*
//!   participant has observed the current value, so threads pinned in epoch `e` block
//!   the advance to `e + 2` (but not to `e + 1`).
//! * **Participant list.** A lock-free intrusive singly-linked list of per-thread
//!   records. Registration claims a retired record with a CAS on its `in_use` flag or
//!   prepends a freshly leaked one with a CAS on the list head. Removal on thread
//!   exit is *lazy*: the record is only flagged unused (never unlinked or freed), so
//!   concurrent `try_advance` scans can traverse the list
//!   without any protection — records are immortal and the list only ever grows to
//!   the maximum number of concurrently live threads.
//! * **Per-thread garbage bags.** [`Guard::defer_unchecked`] pushes the closure into
//!   an unsynchronized thread-local bag. When the bag fills (or on [`Guard::flush`]
//!   and thread exit) it is *sealed* with the global epoch observed at that moment
//!   and pushed onto a global Treiber stack of sealed bags with a single CAS.
//! * **Amortized collection, piggybacked on pin.** Every `PIN_INTERVAL`-th pin (and
//!   every flush) attempts an epoch advance and then collects: it steals the whole
//!   sealed-bag stack with one `swap`, runs every bag sealed at epoch `e` such that
//!   `e + 2 <= global`, and pushes the rest back. Unpinning is a single release
//!   store.
//!
//! # Fence discipline
//!
//! Blanket `SeqCst` is replaced by the orderings the protocol actually needs; the
//! three places that genuinely require sequential consistency use explicit fences,
//! mirroring the real crossbeam-epoch:
//!
//! 1. **Pin publication** ([`pin`], [`Guard::repin`]): the participant's epoch is
//!    stored `Relaxed`, followed by a `SeqCst` *fence*, followed by a re-check of the
//!    global epoch (looping until the published value matches). The fence makes the
//!    announcement visible before any subsequent read of shared memory, so an
//!    advancing thread either observes the announcement or the pinning thread
//!    observes the newer epoch and re-announces.
//! 2. **Sealing** (`Global::push_sealed`): a `SeqCst` fence orders every unlink CAS
//!    performed by the retiring thread before the `Relaxed` load of the epoch the bag
//!    is sealed with — a reader that obtained the unlinked object must therefore have
//!    pinned an epoch the seal does not postdate by more than one advance.
//! 3. **Advance** (`Global::try_advance`): the global epoch is loaded `Relaxed`, a
//!    `SeqCst` fence orders that load before the `Relaxed` participant scans, and an
//!    `Acquire` fence before the final `Release` CAS makes everything the scanned
//!    participants published visible to whoever observes the new epoch.
//!
//! Everything else is plain acquire/release: unpin is a `Release` store of
//! `INACTIVE`; Treiber-stack pushes are `Release` CASes matched by an `Acquire`
//! swap in the collector; participant claim/release are an `Acquire` CAS matched by a
//! `Release` store.
//!
//! # Why freeing at `seal_epoch + 2` is safe
//!
//! Two threads can only be pinned in epochs that differ by at most one (a thread
//! pinned at `e` blocks the advance from `e + 1` to `e + 2`). A bag is sealed at an
//! epoch `s` no older than its owner's pin epoch `p` (per-thread coherence: the owner
//! read `p` at pin time), and every thread that can still hold a reference to an
//! object in the bag was pinned when that object was unlinked, i.e. at some epoch
//! `r <= p + 1 <= s + 1`. Reaching `global >= s + 2` therefore required an advance
//! past `r + 1`, which that reader — had it remained pinned — would have blocked.
//!
//! # Epoch domains
//!
//! The scheme above is instantiated [`NUM_DOMAINS`] times over a static array of
//! fully independent `Global`s: separate epoch counters, participant registries, and
//! garbage queues, so domains never contend on a shared cache line. [`pin`] pins the
//! **default domain** (index 0), which is what every structure uses unless told
//! otherwise; [`pin_domain`]`(d)` pins domain `d % NUM_DOMAINS`. A [`Guard`]
//! remembers the domain it was pinned in, and `defer_unchecked`/`flush`/`repin`
//! operate on that domain.
//!
//! The safety contract is **per domain**: garbage retired under a guard of domain
//! `d` is reclaimed once no thread holds a pin *of domain `d`* — pins of other
//! domains do not protect it. A data structure is safe as long as all of its
//! operations (readers and retirers alike) pin the *same* domain, which is exactly
//! how the sharded SkipTrie forest assigns one domain per shard: a long scan of one
//! shard then stalls only that shard's reclamation, and shards never serialize on a
//! shared epoch counter or garbage stack. Pins of different domains nest freely.
//!
//! # Reclamation substrates
//!
//! Each domain index addresses **two** independent substrates: the epoch scheme
//! above ([`Reclaimer::Ebr`], the default) and a hazard-era substrate
//! ([`Reclaimer::Hazard`], see the [`hazard`] module docs for the protocol).
//! [`pin_domain_with`] selects which one a guard routes to; the [`Guard`] shape
//! (`defer_unchecked`, `flush`, `repin`) is identical either way, which is what
//! lets data structures switch substrates by config plumbing alone. The trade:
//! EBR has the cheaper read path but one stalled reader blocks its whole domain's
//! reclamation; the hazard substrate pays a clock re-validation per protected
//! read and in return bounds the garbage a stalled reader can pin to items born
//! inside its frozen era interval. Both substrates report pending garbage and its
//! high-water mark per domain through [`domain_stats`] (exact gauges) and the
//! process-wide `garbage_pending` / `garbage_freed` / `garbage_hwm` metrics
//! counters.

#![warn(missing_docs)]

use std::cell::{Cell, OnceCell, RefCell};
use std::marker::PhantomData;
use std::ptr;
use std::str::FromStr;
use std::sync::atomic::{self, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use skiptrie_metrics::{self as metrics, Counter};

pub mod hazard;

pub use hazard::{HazardDomain, HpHandle};

/// Number of independent epoch domains (see the crate docs). Domain 0 is the default
/// domain that [`pin`] uses; [`pin_domain`] indexes the rest modulo this constant.
pub const NUM_DOMAINS: usize = 32;

/// Sentinel meaning "this participant is not currently pinned".
const INACTIVE: usize = usize::MAX;

/// Which reclamation substrate a guard routes to (see the crate docs on
/// reclamation substrates). Parsed fail-loud from the `SKIPTRIE_RECLAIM` knob by
/// the workloads harness: `ebr`/`epoch` and `hp`/`hazard` are accepted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Reclaimer {
    /// Epoch-based reclamation — the throughput default. Reads are unvalidated;
    /// one stalled pinned reader blocks its whole domain's reclamation.
    #[default]
    Ebr,
    /// Hazard-era reclamation — protected reads re-validate against the era
    /// clock; a stalled reader blocks only items born inside its frozen interval,
    /// so pending garbage stays bounded under churn.
    Hazard,
}

impl FromStr for Reclaimer {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ebr" | "epoch" => Ok(Reclaimer::Ebr),
            "hp" | "hazard" => Ok(Reclaimer::Hazard),
            other => Err(format!(
                "unknown reclaimer {other:?} (expected \"ebr\"/\"epoch\" or \"hp\"/\"hazard\")"
            )),
        }
    }
}

impl std::fmt::Display for Reclaimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Reclaimer::Ebr => "ebr",
            Reclaimer::Hazard => "hp",
        })
    }
}

/// Exact garbage gauges for one (domain, substrate) pair, from [`domain_stats`]:
/// how many retired-but-unfreed closures the substrate currently holds, and the
/// most it ever held. Unlike the process-wide metrics counters these are precise
/// per-domain values suitable for exact test asserts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GarbageStats {
    /// Closures retired into this domain and not yet executed.
    pub pending: u64,
    /// High-water mark of `pending` over the domain's lifetime (monotone).
    pub hwm: u64,
}

/// Exact pending / high-water-mark garbage gauges for `domain % NUM_DOMAINS`
/// under the given substrate. The two substrates of one domain index are fully
/// independent and so are their gauges.
pub fn domain_stats(domain: usize, reclaimer: Reclaimer) -> GarbageStats {
    let domain = domain % NUM_DOMAINS;
    match reclaimer {
        Reclaimer::Ebr => GLOBALS[domain].stats(),
        Reclaimer::Hazard => hazard::domain(domain).stats(),
    }
}

/// How many deferred closures a thread-local bag holds before it is sealed and pushed
/// to the global queue.
const BAG_CAPACITY: usize = 64;

/// Every how many pins a thread piggybacks an epoch advance plus collection.
const PIN_INTERVAL: usize = 64;

/// A deferred destruction closure; owned by a thread-local bag until sealed.
struct Deferred {
    call: Box<dyn FnOnce()>,
}

// SAFETY: deferred closures are only ever executed by the collector, exactly once,
// after the epoch protocol has proven no other thread can observe the data they free.
// `defer_unchecked` is `unsafe` precisely so the caller vouches for cross-thread use.
unsafe impl Send for Deferred {}

/// A bag of deferred closures stamped with the global epoch observed when it was
/// sealed; a node of the global Treiber stack.
struct SealedBag {
    epoch: usize,
    deferreds: Vec<Deferred>,
    /// Intrusive stack link; written only between allocation and the publishing CAS.
    next: *mut SealedBag,
}

/// Per-thread participant record. Records are `Box::leak`ed on first registration and
/// never freed; a thread exiting merely clears `in_use` so a later thread can claim
/// the record with a CAS (lazy removal). This keeps the advance scan safe without any
/// memory protection for the list itself.
struct Participant {
    /// The epoch this thread is pinned in, or `INACTIVE`.
    epoch: AtomicUsize,
    /// Claimed by a live thread. Claim: CAS `false -> true` (Acquire). Release: store
    /// `false` (Release) after storing `INACTIVE`.
    in_use: AtomicBool,
    /// Next record in the registry; written once before the prepend CAS publishes it.
    next: AtomicPtr<Participant>,
}

struct Global {
    /// The global epoch (monotone; participants publish the value they pinned at).
    epoch: AtomicUsize,
    /// Head of the intrusive participant list.
    participants: AtomicPtr<Participant>,
    /// Head of the Treiber stack of sealed garbage bags.
    garbage: AtomicPtr<SealedBag>,
    /// The epoch the last collection ran at. Readiness is monotone in the global
    /// epoch, so when the epoch has not advanced since the previous collection there
    /// is nothing new to free and [`Global::collect`] skips the steal/re-push cycle —
    /// this keeps a stalled epoch (one thread descheduled while pinned) from turning
    /// every piggybacked collection into a full walk of the pending-bag stack.
    collected_at: AtomicUsize,
    /// Deferred-but-not-yet-run closures in this domain (exact; see
    /// [`domain_stats`]). Incremented at defer, decremented when a ready bag runs.
    pending: AtomicU64,
    /// High-water mark of `pending` (exact, monotone).
    hwm: AtomicU64,
}

/// The independent epoch domains. Statically allocated: domains are immortal, so the
/// participant registries stay traversable without protection and a domain can never
/// disappear under garbage still queued in it (late garbage is simply collected by
/// the next thread to pin that domain).
static GLOBALS: [Global; NUM_DOMAINS] = [const { Global::new() }; NUM_DOMAINS];

impl Global {
    const fn new() -> Global {
        Global {
            epoch: AtomicUsize::new(0),
            participants: AtomicPtr::new(ptr::null_mut()),
            garbage: AtomicPtr::new(ptr::null_mut()),
            collected_at: AtomicUsize::new(usize::MAX),
            pending: AtomicU64::new(0),
            hwm: AtomicU64::new(0),
        }
    }

    /// Exact pending / high-water-mark gauges for this domain's EBR substrate.
    fn stats(&self) -> GarbageStats {
        GarbageStats {
            pending: self.pending.load(Ordering::SeqCst),
            hwm: self.hwm.load(Ordering::SeqCst),
        }
    }

    /// Accounts one deferred closure (exact gauges + process-wide counters); the
    /// same discipline as the hazard substrate so the two report comparably.
    fn note_retired(&self) {
        metrics::record(Counter::GarbagePending);
        let pending = self.pending.fetch_add(1, Ordering::SeqCst) + 1;
        let prev = self.hwm.fetch_max(pending, Ordering::SeqCst);
        if pending > prev {
            metrics::add(Counter::GarbageHwm, pending - prev);
        }
    }

    /// Accounts `n` executed closures.
    fn note_freed(&self, n: usize) {
        if n > 0 {
            self.pending.fetch_sub(n as u64, Ordering::SeqCst);
            metrics::add(Counter::GarbageFreed, n as u64);
        }
    }

    /// Claims a retired participant record or registers a fresh one (lock-free).
    fn register(&self) -> &'static Participant {
        // First try to reuse a record abandoned by an exited thread.
        let mut curr = self.participants.load(Ordering::Acquire);
        while let Some(p) = unsafe { curr.as_ref() } {
            if p.in_use
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                debug_assert_eq!(p.epoch.load(Ordering::Relaxed), INACTIVE);
                return p;
            }
            curr = p.next.load(Ordering::Relaxed);
        }
        // None free: leak a new record and prepend it.
        let record: &'static Participant = Box::leak(Box::new(Participant {
            epoch: AtomicUsize::new(INACTIVE),
            in_use: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        let record_ptr = record as *const Participant as *mut Participant;
        loop {
            let head = self.participants.load(Ordering::Relaxed);
            record.next.store(head, Ordering::Relaxed);
            if self
                .participants
                .compare_exchange_weak(head, record_ptr, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return record;
            }
        }
    }

    /// Advances the global epoch if every pinned participant has observed it.
    /// Returns the (possibly unchanged) global epoch. Lock-free: a single scan of the
    /// immortal participant list. Fence discipline: see the crate docs, item 3.
    fn try_advance(&self) -> usize {
        let global = self.epoch.load(Ordering::Relaxed);
        atomic::fence(Ordering::SeqCst);
        let mut curr = self.participants.load(Ordering::Acquire);
        while let Some(p) = unsafe { curr.as_ref() } {
            // Records with `in_use == false` still parked at INACTIVE are skipped by
            // the epoch test itself; no separate liveness check is needed.
            let e = p.epoch.load(Ordering::Relaxed);
            if e != INACTIVE && e != global {
                return global;
            }
            curr = p.next.load(Ordering::Relaxed);
        }
        atomic::fence(Ordering::Acquire);
        // A concurrent advance may have won; either way the epoch only moves forward.
        let _ = self.epoch.compare_exchange(
            global,
            global.wrapping_add(1),
            Ordering::Release,
            Ordering::Relaxed,
        );
        self.epoch.load(Ordering::Relaxed)
    }

    /// Seals `deferreds` with the current epoch and pushes the bag onto the global
    /// stack with a single CAS. Fence discipline: see the crate docs, item 2.
    fn push_sealed(&self, deferreds: Vec<Deferred>) {
        if deferreds.is_empty() {
            return;
        }
        atomic::fence(Ordering::SeqCst);
        let epoch = self.epoch.load(Ordering::Relaxed);
        let bag = Box::into_raw(Box::new(SealedBag {
            epoch,
            deferreds,
            next: ptr::null_mut(),
        }));
        loop {
            let head = self.garbage.load(Ordering::Relaxed);
            // SAFETY: the bag is unpublished until the CAS below succeeds.
            unsafe { (*bag).next = head };
            if self
                .garbage
                .compare_exchange_weak(head, bag, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Attempts an epoch advance, then steals the whole sealed-bag stack, runs every
    /// bag two or more epochs old, and splices the younger ones back with one CAS.
    /// Concurrent callers partition the stack between them via the atomic `swap`; the
    /// `collected_at` claim lets all but the first at a given epoch return instantly.
    fn collect(&self) {
        let global = self.try_advance();
        // Bags are sealed at (at most) the epoch current when they were pushed, so
        // nothing pushed since the last collection at `global` can be ready yet; the
        // `swap` atomically claims this epoch's collection for us.
        if self.collected_at.swap(global, Ordering::Relaxed) == global {
            return;
        }
        let mut curr = self.garbage.swap(ptr::null_mut(), Ordering::Acquire);
        let mut ready = Vec::new();
        let mut unready_head: *mut SealedBag = ptr::null_mut();
        let mut unready_tail: *mut SealedBag = ptr::null_mut();
        while !curr.is_null() {
            // SAFETY: stolen bags are exclusively ours; they were fully initialized
            // before the publishing CAS.
            let next = unsafe { (*curr).next };
            if unsafe { (*curr).epoch }.wrapping_add(2) <= global {
                // SAFETY: as above; the box is freed after its closures run.
                ready.push(unsafe { Box::from_raw(curr) });
            } else {
                // Keep unready bags chained so they can be re-published in one CAS.
                unsafe { (*curr).next = unready_head };
                unready_head = curr;
                if unready_tail.is_null() {
                    unready_tail = curr;
                }
            }
            curr = next;
        }
        if !unready_head.is_null() {
            loop {
                let head = self.garbage.load(Ordering::Relaxed);
                // SAFETY: the chain is unpublished until the CAS succeeds.
                unsafe { (*unready_tail).next = head };
                if self
                    .garbage
                    .compare_exchange_weak(head, unready_head, Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    break;
                }
            }
        }
        // Run outside any structure: a closure may itself pin or defer more garbage.
        let freed: usize = ready.iter().map(|bag| bag.deferreds.len()).sum();
        self.note_freed(freed);
        for bag in ready {
            for d in bag.deferreds {
                (d.call)();
            }
        }
    }
}

struct LocalHandle {
    /// The domain this handle participates in.
    global: &'static Global,
    participant: &'static Participant,
    pin_depth: Cell<usize>,
    pins_since_collect: Cell<usize>,
    bag: RefCell<Vec<Deferred>>,
}

impl LocalHandle {
    fn register(global: &'static Global) -> LocalHandle {
        LocalHandle {
            global,
            participant: global.register(),
            pin_depth: Cell::new(0),
            pins_since_collect: Cell::new(0),
            bag: RefCell::new(Vec::new()),
        }
    }

    /// Publishes the current global epoch in this thread's slot (crate docs, item 1).
    fn publish_epoch(&self) {
        loop {
            let e = self.global.epoch.load(Ordering::Relaxed);
            self.participant.epoch.store(e, Ordering::Relaxed);
            atomic::fence(Ordering::SeqCst);
            if self.global.epoch.load(Ordering::Relaxed) == e {
                break;
            }
        }
    }

    /// Seals and publishes the thread-local bag (no-op when empty).
    fn seal_and_push(&self) {
        let deferreds = std::mem::take(&mut *self.bag.borrow_mut());
        self.global.push_sealed(deferreds);
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // The thread is exiting: publish whatever garbage it still holds, then
        // release the participant record for reuse (lazy removal — the record itself
        // is immortal). A leaked (mem::forget) guard would otherwise leave the slot
        // active and stall reclamation forever; clearing it here is safe because the
        // thread is gone.
        self.seal_and_push();
        self.participant.epoch.store(INACTIVE, Ordering::Release);
        self.participant.in_use.store(false, Ordering::Release);
    }
}

thread_local! {
    /// One lazily-registered local handle per domain. The whole array is dropped at
    /// thread exit, sealing each initialized domain's bag and releasing its
    /// participant record.
    static LOCALS: [OnceCell<LocalHandle>; NUM_DOMAINS] =
        const { [const { OnceCell::new() }; NUM_DOMAINS] };
}

/// Runs `f` with this thread's local handle for `domain`, registering it on first
/// use. Returns `None` during thread-local teardown (the caller falls back to
/// pushing garbage straight to the domain's global queue).
fn with_local<R>(domain: usize, f: impl FnOnce(&LocalHandle) -> R) -> Option<R> {
    LOCALS
        .try_with(
            |locals| f(locals[domain].get_or_init(|| LocalHandle::register(&GLOBALS[domain]))),
        )
        .ok()
}

/// Pins the current thread in the **default domain** (domain 0), preventing any
/// object retired in that domain from now on from being reclaimed until the returned
/// [`Guard`] is dropped. Pins nest. Lock-free; every `PIN_INTERVAL`-th outermost
/// pin also attempts an epoch advance and collects ready garbage.
pub fn pin() -> Guard {
    pin_domain(0)
}

/// Pins the current thread in domain `domain % NUM_DOMAINS` (see the crate docs on
/// epoch domains). Identical protocol to [`pin`], against that domain's own epoch
/// counter, participant registry, and garbage queue. Pins of different domains nest
/// freely and protect only retirements of their own domain.
pub fn pin_domain(domain: usize) -> Guard {
    pin_domain_with(domain, Reclaimer::Ebr)
}

/// Pins the current thread in domain `domain % NUM_DOMAINS` under the chosen
/// reclamation substrate (see the crate docs on reclamation substrates). The two
/// substrates of one domain index are fully independent: an EBR pin does not
/// protect hazard-retired garbage or vice versa, so a structure must route all of
/// its pins **and** retirements through the same `(domain, reclaimer)` pair.
pub fn pin_domain_with(domain: usize, reclaimer: Reclaimer) -> Guard {
    let domain = domain % NUM_DOMAINS;
    match reclaimer {
        Reclaimer::Ebr => {
            // `with` (not `try_with`): pinning during thread-local teardown cannot
            // protect anything and must fail loudly rather than hand out a vacuous
            // guard.
            LOCALS.with(|locals| {
                let local = locals[domain].get_or_init(|| LocalHandle::register(&GLOBALS[domain]));
                let depth = local.pin_depth.get();
                local.pin_depth.set(depth + 1);
                if depth == 0 {
                    local.publish_epoch();
                    let pins = local.pins_since_collect.get() + 1;
                    if pins >= PIN_INTERVAL {
                        local.pins_since_collect.set(0);
                        local.global.collect();
                    } else {
                        local.pins_since_collect.set(pins);
                    }
                }
            });
        }
        Reclaimer::Hazard => hazard::pin(domain),
    }
    Guard {
        domain,
        substrate: reclaimer,
        _not_send: PhantomData,
    }
}

/// A pinned-thread token; objects retired in the guard's domain while any guard of
/// that domain exists anywhere are only reclaimed once the epoch protocol proves no
/// thread pinned in that domain can still reach them.
pub struct Guard {
    /// The domain this guard pinned (index into [`GLOBALS`]).
    domain: usize,
    /// Which reclamation substrate this guard's pin and retirements route to.
    substrate: Reclaimer,
    /// Guards reference thread-local state and must not cross threads.
    _not_send: PhantomData<*mut ()>,
}

impl Guard {
    /// The substrate this guard routes to (what it was pinned with).
    pub fn substrate(&self) -> Reclaimer {
        self.substrate
    }

    /// The guard's domain's era clock under the hazard substrate, or 0 under EBR.
    ///
    /// Used to stamp newly allocated objects with their birth era (passed back to
    /// [`Guard::defer_unchecked_born`] at retirement). 0 means "unknown birth" and
    /// is always sound — the hazard scan then treats the object as old enough to
    /// be covered by any active interval that covers its retirement.
    pub fn current_era(&self) -> u64 {
        match self.substrate {
            Reclaimer::Ebr => 0,
            Reclaimer::Hazard => hazard::domain(self.domain).current_era(),
        }
    }

    /// Performs `f` — a load (or short load sequence) of shared memory — under the
    /// guard's substrate's read protection. Under EBR this is exactly `f()`: the
    /// pin already protects everything retired from now on. Under the hazard
    /// substrate the load runs inside the protect→re-validate loop (see
    /// [`HpHandle::protected`]) and may be retried, so `f` must be idempotent —
    /// true of any pure load.
    ///
    /// This is the single choke point traversal loads go through; a raw load of a
    /// shared pointer is only hazard-safe if it happens inside `protected`.
    pub fn protected<T>(&self, mut f: impl FnMut() -> T) -> T {
        match self.substrate {
            Reclaimer::Ebr => f(),
            Reclaimer::Hazard => {
                match hazard::with_hp_local(self.domain, |local| local.protected(&mut f)) {
                    Some(value) => value,
                    // Thread-local teardown: nothing can retire concurrently with
                    // this thread's exit path observing its own structures.
                    None => f(),
                }
            }
        }
    }

    /// Defers a closure until no thread pinned at (or before) the current epoch can
    /// still hold a reference to the data it frees.
    ///
    /// Lock-free: the closure lands in a thread-local bag; a full bag is sealed with
    /// the current epoch and pushed to the global queue with one CAS. Under the
    /// hazard substrate this is [`Guard::defer_unchecked_born`] with an unknown
    /// (conservative) birth era.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the closure is safe to run on another thread at any
    /// later time — in particular that the data it frees has already been unlinked
    /// from every shared structure, and is freed at most once.
    pub unsafe fn defer_unchecked<F, R>(&self, f: F)
    where
        F: FnOnce() -> R,
    {
        // SAFETY: identical contract, forwarded.
        unsafe { self.defer_unchecked_born(0, f) }
    }

    /// [`Guard::defer_unchecked`] with the freed object's birth era (from
    /// [`Guard::current_era`] at allocation time). EBR ignores `birth`; the hazard
    /// scan uses the `[birth, retire]` interval to free objects born after a
    /// stalled reader's frozen interval — the substrate's whole point. `birth = 0`
    /// is always sound, merely conservative.
    ///
    /// # Safety
    ///
    /// As [`Guard::defer_unchecked`]; additionally `birth` must not postdate the
    /// era at which the freed object first became reachable to other threads.
    pub unsafe fn defer_unchecked_born<F, R>(&self, birth: u64, f: F)
    where
        F: FnOnce() -> R,
    {
        let call: Box<dyn FnOnce() + '_> = Box::new(move || {
            let _ = f();
        });
        // SAFETY: erasing the closure's lifetime is exactly the contract the caller
        // accepted: everything it captures must stay valid until the reclamation
        // protocol runs it (crossbeam's `defer_unchecked` has the same obligation).
        let call: Box<dyn FnOnce() + 'static> =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + '_>, Box<dyn FnOnce()>>(call) };
        match self.substrate {
            Reclaimer::Ebr => {
                GLOBALS[self.domain].note_retired();
                let mut slot = Some(Deferred { call });
                with_local(self.domain, |local| {
                    let full = {
                        let mut bag = local.bag.borrow_mut();
                        bag.push(slot.take().expect("deferred moved twice"));
                        bag.len() >= BAG_CAPACITY
                    };
                    if full {
                        local.seal_and_push();
                    }
                });
                if let Some(deferred) = slot {
                    // Thread-local teardown: the handle is gone, so publish a
                    // single-item sealed bag directly to this guard's domain.
                    GLOBALS[self.domain].push_sealed(vec![deferred]);
                }
            }
            Reclaimer::Hazard => hazard::retire(self.domain, birth, call),
        }
    }

    /// Publishes this thread's pending garbage for the guard's domain, advances the
    /// substrate's clock, and runs any deferred closures that became safe. Unlike
    /// the pre-rewrite version, `flush` *does* advance the epoch/era, so a
    /// single-threaded program that defers and then flushes a few times always
    /// reclaims (regression-tested) — drain loops repeat flush until
    /// [`domain_stats`] reports zero pending.
    pub fn flush(&self) {
        match self.substrate {
            Reclaimer::Ebr => {
                with_local(self.domain, |local| local.seal_and_push());
                GLOBALS[self.domain].collect();
            }
            Reclaimer::Hazard => {
                if hazard::with_hp_local(self.domain, |local| local.flush()).is_none() {
                    // Thread-local teardown: scan the orphan stack directly.
                    hazard::domain(self.domain).flush_orphans();
                }
            }
        }
    }

    /// Unpins and immediately re-pins the thread in the guard's domain, allowing
    /// that domain's clock to advance past any value this guard was holding back
    /// (EBR: the pinned epoch; hazard: the published era interval).
    pub fn repin(&mut self) {
        match self.substrate {
            Reclaimer::Ebr => {
                with_local(self.domain, |local| {
                    if local.pin_depth.get() == 1 {
                        local.participant.epoch.store(INACTIVE, Ordering::Release);
                        local.publish_epoch();
                    }
                });
            }
            Reclaimer::Hazard => {
                hazard::with_hp_local(self.domain, |local| local.repin());
            }
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // The locals are `try_with`-based: the guard may be dropped during
        // thread-local teardown, after the handle arrays were destroyed (their Drops
        // already marked every initialized slot inactive).
        match self.substrate {
            Reclaimer::Ebr => {
                with_local(self.domain, |local| {
                    let depth = local.pin_depth.get();
                    debug_assert!(depth > 0, "guard dropped while not pinned");
                    local.pin_depth.set(depth - 1);
                    if depth == 1 {
                        // Unpin: a single release store; collection is amortized on
                        // pin.
                        local.participant.epoch.store(INACTIVE, Ordering::Release);
                    }
                });
            }
            Reclaimer::Hazard => {
                hazard::with_hp_local(self.domain, |local| local.unpin());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// The default domain (what bare [`pin`] uses) — the pre-domain tests all run
    /// against it.
    fn global() -> &'static Global {
        &GLOBALS[0]
    }

    /// The epoch this thread is currently pinned at in domain 0 (test helper;
    /// INACTIVE if not).
    fn my_pin_epoch() -> usize {
        with_local(0, |local| local.participant.epoch.load(Ordering::Relaxed))
            .expect("thread-local alive")
    }

    fn participant_count() -> usize {
        let mut n = 0;
        let mut curr = global().participants.load(Ordering::Acquire);
        while let Some(p) = unsafe { curr.as_ref() } {
            n += 1;
            curr = p.next.load(Ordering::Relaxed);
        }
        n
    }

    /// Pin+flush until `done` holds. A fixed flush count is not enough: these tests
    /// share `GLOBAL` with every other test in this binary, and a concurrently
    /// running test holding a pin caps the epoch at its pin value `+ 1` for as long
    /// as it runs — reclamation is *eventual*, so drains must retry.
    fn drain_until(mut done: impl FnMut() -> bool) -> bool {
        for _ in 0..10_000 {
            pin().flush();
            if done() {
                return true;
            }
            std::thread::yield_now();
        }
        done()
    }

    #[test]
    fn deferred_runs_after_epoch_advances() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        {
            let g = pin();
            unsafe { g.defer_unchecked(|| RAN.fetch_add(1, Ordering::SeqCst)) };
        }
        assert!(drain_until(|| RAN.load(Ordering::SeqCst) == 1));
        assert_eq!(RAN.load(Ordering::SeqCst), 1, "ran more than once");
    }

    /// Regression (pre-rewrite bug): a single-threaded program whose garbage never
    /// reaches the bag capacity must still reclaim — `flush` both publishes the
    /// partial bag and advances the epoch. (In isolation two flushes suffice — seal
    /// at `e`, collectable at `e + 2`; the retry loop only absorbs epoch
    /// interference from tests running concurrently in this binary.)
    #[test]
    fn flush_reclaims_a_single_deferred_closure() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let g = pin();
            let ran = Arc::clone(&ran);
            // One closure, far below BAG_CAPACITY.
            unsafe { g.defer_unchecked(move || ran.fetch_add(1, Ordering::SeqCst)) };
        }
        assert!(drain_until(|| ran.load(Ordering::SeqCst) == 1));
        assert_eq!(ran.load(Ordering::SeqCst), 1, "ran more than once");
    }

    /// While this thread is pinned at epoch `p`, the global epoch can never exceed
    /// `p + 1`, no matter how hard another thread tries to advance it.
    #[test]
    fn epoch_never_advances_past_a_pinned_participant() {
        let guard = pin();
        let p = my_pin_epoch();
        assert_ne!(p, INACTIVE);
        std::thread::spawn(|| {
            for _ in 0..256 {
                global().try_advance();
            }
        })
        .join()
        .unwrap();
        let global = global().epoch.load(Ordering::SeqCst);
        assert!(
            global <= p.wrapping_add(1),
            "global epoch {global} advanced past pinned epoch {p} + 1"
        );
        drop(guard);
    }

    /// Garbage deferred while pinned at epoch `p` is sealed at `s >= p` and must not
    /// run before the global epoch reaches `s + 2 >= p + 2`.
    #[test]
    fn garbage_never_runs_before_retirement_epoch_plus_two() {
        let observed = Arc::new(AtomicUsize::new(INACTIVE));
        let p = {
            let g = pin();
            let p = my_pin_epoch();
            let observed = Arc::clone(&observed);
            unsafe {
                g.defer_unchecked(move || {
                    observed.store(global().epoch.load(Ordering::SeqCst), Ordering::SeqCst)
                });
            }
            g.flush();
            p
        };
        assert!(drain_until(|| observed.load(Ordering::SeqCst) != INACTIVE));
        let ran_at = observed.load(Ordering::SeqCst);
        assert_ne!(ran_at, INACTIVE, "closure never ran");
        assert!(
            ran_at >= p.wrapping_add(2),
            "closure ran at epoch {ran_at}, before pin epoch {p} + 2"
        );
    }

    #[test]
    fn nested_pins() {
        let a = pin();
        let b = pin();
        drop(a);
        drop(b);
        let c = pin();
        c.flush();
    }

    #[test]
    fn repin_releases_the_old_epoch() {
        let mut g = pin();
        let before = my_pin_epoch();
        assert_ne!(before, INACTIVE);
        // Drive the epoch forward from another thread; our repin must re-announce.
        std::thread::spawn(|| {
            for _ in 0..8 {
                global().try_advance();
            }
        })
        .join()
        .unwrap();
        g.repin();
        let after = my_pin_epoch();
        assert_ne!(after, INACTIVE);
        assert!(after >= before, "epochs are monotone");
        drop(g);
    }

    /// Thread exit releases the participant record; a later thread reuses it instead
    /// of growing the registry (lazy removal).
    #[test]
    fn exited_threads_release_their_participant_record() {
        // Register this thread and a scratch thread, then let the scratch exit.
        drop(pin());
        std::thread::spawn(|| drop(pin())).join().unwrap();
        let baseline = participant_count();
        // Sequential short-lived threads must reuse the freed record(s): the registry
        // grows by at most the test harness's own concurrency, not by `rounds`.
        let rounds = 32;
        for _ in 0..rounds {
            std::thread::spawn(|| {
                let g = pin();
                unsafe { g.defer_unchecked(|| ()) };
            })
            .join()
            .unwrap();
        }
        let grown = participant_count().saturating_sub(baseline);
        assert!(
            grown < rounds / 2,
            "registry grew by {grown} records over {rounds} sequential threads — \
             exited participants are not being reused"
        );
    }

    /// Pin+flush a specific domain until `done` holds (the domain-aware twin of
    /// [`drain_until`]).
    fn drain_domain_until(domain: usize, mut done: impl FnMut() -> bool) -> bool {
        for _ in 0..10_000 {
            pin_domain(domain).flush();
            if done() {
                return true;
            }
            std::thread::yield_now();
        }
        done()
    }

    #[test]
    fn pin_domain_wraps_modulo() {
        let g = pin_domain(NUM_DOMAINS + 3);
        assert_eq!(g.domain, 3);
        let h = pin_domain(3);
        assert_eq!(h.domain, 3);
    }

    #[test]
    fn domains_reclaim_independently() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        // Use two domains nobody else in this test binary touches.
        let (d1, d2) = (21, 22);
        {
            let g = pin_domain(d1);
            unsafe { g.defer_unchecked(|| RAN.fetch_add(1, Ordering::SeqCst)) };
        }
        // Flushing a *different* domain must never run d1's garbage.
        for _ in 0..64 {
            pin_domain(d2).flush();
        }
        assert_eq!(
            RAN.load(Ordering::SeqCst),
            0,
            "domain {d2} collected domain {d1}'s garbage"
        );
        assert!(drain_domain_until(d1, || RAN.load(Ordering::SeqCst) == 1));
        assert_eq!(RAN.load(Ordering::SeqCst), 1, "ran more than once");
    }

    /// A guard held in one domain must not stall reclamation in another — the whole
    /// point of per-shard domains.
    #[test]
    fn pinned_domain_does_not_block_other_domains() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let (held, free) = (23, 24);
        let _blocker = pin_domain(held);
        {
            let g = pin_domain(free);
            unsafe { g.defer_unchecked(|| RAN.fetch_add(1, Ordering::SeqCst)) };
        }
        // Still holding `held`'s pin: `free` must reclaim regardless.
        assert!(drain_domain_until(free, || RAN.load(Ordering::SeqCst) == 1));
    }

    /// The per-domain protocol invariant, per domain: a thread pinned in domain `d`
    /// caps *that domain's* epoch at `p + 1` while other domains advance freely.
    #[test]
    fn pin_blocks_only_its_own_domains_epoch() {
        let (da, db) = (25, 26);
        let guard = pin_domain(da);
        let pa = with_local(da, |l| l.participant.epoch.load(Ordering::Relaxed)).unwrap();
        std::thread::spawn(move || {
            for _ in 0..256 {
                GLOBALS[da].try_advance();
                GLOBALS[db].try_advance();
            }
        })
        .join()
        .unwrap();
        let ea = GLOBALS[da].epoch.load(Ordering::SeqCst);
        let eb = GLOBALS[db].epoch.load(Ordering::SeqCst);
        assert!(
            ea <= pa.wrapping_add(1),
            "pinned domain advanced: {ea} > {pa}+1"
        );
        assert!(eb >= 64, "unpinned domain failed to advance: {eb}");
        drop(guard);
    }

    #[test]
    fn concurrent_churn() {
        let dropped = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        let per_thread = 500;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let dropped = Arc::clone(&dropped);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        let g = pin();
                        let d = Arc::clone(&dropped);
                        let boxed = Box::into_raw(Box::new(41u64));
                        unsafe {
                            g.defer_unchecked(move || {
                                drop(Box::from_raw(boxed));
                                d.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                        drop(g);
                    }
                    // Publish this worker's partial bag before the scope observes the
                    // closure as finished (TLS teardown may lag the join).
                    pin().flush();
                });
            }
        });
        assert!(drain_until(
            || dropped.load(Ordering::SeqCst) == threads * per_thread
        ));
        assert_eq!(dropped.load(Ordering::SeqCst), threads * per_thread);
    }

    #[test]
    fn reclaimer_knob_grammar_is_fail_loud() {
        assert_eq!("ebr".parse::<Reclaimer>().unwrap(), Reclaimer::Ebr);
        assert_eq!("epoch".parse::<Reclaimer>().unwrap(), Reclaimer::Ebr);
        assert_eq!("hp".parse::<Reclaimer>().unwrap(), Reclaimer::Hazard);
        assert_eq!(" Hazard ".parse::<Reclaimer>().unwrap(), Reclaimer::Hazard);
        assert!("qsbr".parse::<Reclaimer>().is_err());
        assert_eq!(Reclaimer::Ebr.to_string(), "ebr");
        assert_eq!(Reclaimer::Hazard.to_string(), "hp");
        assert_eq!(Reclaimer::default(), Reclaimer::Ebr);
    }

    /// The hazard-routed guard keeps the Guard shape: defer + flush reclaims, and
    /// the exact gauges drain to zero (domain 27 is untouched by other tests).
    #[test]
    fn hazard_guard_defers_flushes_and_drains() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let d = 27;
        let baseline = domain_stats(d, Reclaimer::Hazard).pending;
        {
            let g = pin_domain_with(d, Reclaimer::Hazard);
            assert_eq!(g.substrate(), Reclaimer::Hazard);
            assert!(g.current_era() >= 1);
            assert_eq!(g.protected(|| 7usize), 7);
            unsafe { g.defer_unchecked(|| RAN.fetch_add(1, Ordering::SeqCst)) };
        }
        for _ in 0..64 {
            if RAN.load(Ordering::SeqCst) == 1 {
                break;
            }
            pin_domain_with(d, Reclaimer::Hazard).flush();
        }
        assert_eq!(RAN.load(Ordering::SeqCst), 1, "must run exactly once");
        assert_eq!(domain_stats(d, Reclaimer::Hazard).pending, baseline);
    }

    /// Substrates of one domain index are independent: a *hazard* pin of domain d
    /// must not stall *EBR* reclamation of domain d, and vice versa.
    #[test]
    fn substrates_of_one_domain_are_independent() {
        static EBR_RAN: AtomicUsize = AtomicUsize::new(0);
        static HP_RAN: AtomicUsize = AtomicUsize::new(0);
        let d = 28;
        let _hp_blocker = pin_domain_with(d, Reclaimer::Hazard);
        {
            let g = pin_domain(d);
            unsafe { g.defer_unchecked(|| EBR_RAN.fetch_add(1, Ordering::SeqCst)) };
        }
        assert!(drain_domain_until(d, || EBR_RAN.load(Ordering::SeqCst) == 1));
        let _ebr_blocker = pin_domain(d);
        {
            let g = pin_domain_with(d, Reclaimer::Hazard);
            // Born long before the hazard blocker pinned (era 1 at the earliest
            // is what `_hp_blocker` covers), so it stays covered until released —
            // but the *EBR* blocker must be irrelevant. Use a fresh-born object:
            let birth = g.current_era();
            unsafe { g.defer_unchecked_born(birth, || HP_RAN.fetch_add(1, Ordering::SeqCst)) };
        }
        drop(_hp_blocker);
        for _ in 0..64 {
            if HP_RAN.load(Ordering::SeqCst) == 1 {
                break;
            }
            pin_domain_with(d, Reclaimer::Hazard).flush();
        }
        assert_eq!(
            HP_RAN.load(Ordering::SeqCst),
            1,
            "EBR pin of domain {d} stalled hazard reclamation"
        );
    }

    /// The EBR exact gauges: pending rises at defer, falls on reclamation, hwm is
    /// monotone (domain 29 untouched by other tests).
    #[test]
    fn ebr_domain_stats_track_pending_and_hwm() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let d = 29;
        assert_eq!(domain_stats(d, Reclaimer::Ebr), GarbageStats::default());
        let n = 5u64;
        {
            let g = pin_domain(d);
            for _ in 0..n {
                unsafe { g.defer_unchecked(|| RAN.fetch_add(1, Ordering::SeqCst)) };
            }
        }
        let stats = domain_stats(d, Reclaimer::Ebr);
        assert_eq!(stats.pending, n);
        assert_eq!(stats.hwm, n);
        assert!(drain_domain_until(d, || RAN.load(Ordering::SeqCst) == n as usize));
        let drained = domain_stats(d, Reclaimer::Ebr);
        assert_eq!(drained.pending, 0);
        assert_eq!(drained.hwm, n, "hwm must be monotone");
    }
}
