//! A minimal, self-contained epoch-based memory reclamation scheme exposing the
//! subset of the `crossbeam-epoch` API this workspace uses: [`pin`], [`Guard`],
//! [`Guard::defer_unchecked`], and [`Guard::flush`].
//!
//! This crate is vendored because the build environment has no access to a crates.io
//! registry. It is a from-scratch implementation of the classic three-epoch scheme
//! (Fraser 2004), not a copy of crossbeam's source:
//!
//! * A global epoch counter advances only when every *pinned* thread has observed the
//!   current epoch.
//! * [`pin`] publishes the calling thread's epoch in a per-thread slot registered in a
//!   global participant list; [`Guard`]s nest.
//! * [`Guard::defer_unchecked`] stamps a deferred closure with the global epoch `e` at
//!   retirement time; the closure runs once the global epoch reaches `e + 2`, at which
//!   point every thread that was pinned when the object was unlinked has since
//!   unpinned, so no live reference can remain.
//!
//! The implementation favours obvious correctness over throughput: the participant
//! list and garbage bag are guarded by plain mutexes, and all atomics use `SeqCst`.
//! The per-operation fast path (`pin`/unpin) is still mutex-free.

#![warn(missing_docs)]

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, LazyLock, Mutex};

/// Sentinel meaning "this participant is not currently pinned".
const INACTIVE: usize = usize::MAX;

/// How many deferred closures may accumulate before an unpin triggers collection.
const COLLECT_THRESHOLD: usize = 256;

/// A deferred destruction closure stamped with the epoch at retirement time.
struct Deferred {
    epoch: usize,
    call: Box<dyn FnOnce()>,
}

// SAFETY: deferred closures are only ever executed by the collector, exactly once,
// after the epoch protocol has proven no other thread can observe the data they free.
// `defer_unchecked` is `unsafe` precisely so the caller vouches for cross-thread use.
unsafe impl Send for Deferred {}

/// Per-thread participant record; lives in the global registry while the thread does.
struct Participant {
    /// The epoch this thread is pinned in, or [`INACTIVE`].
    epoch: AtomicUsize,
}

struct Global {
    epoch: AtomicUsize,
    participants: Mutex<Vec<Arc<Participant>>>,
    garbage: Mutex<Vec<Deferred>>,
}

static GLOBAL: LazyLock<Global> = LazyLock::new(|| Global {
    epoch: AtomicUsize::new(0),
    participants: Mutex::new(Vec::new()),
    garbage: Mutex::new(Vec::new()),
});

impl Global {
    /// Advances the global epoch if every pinned participant has observed it.
    /// Returns the (possibly unchanged) global epoch.
    fn try_advance(&self) -> usize {
        let global = self.epoch.load(Ordering::SeqCst);
        let participants = self.participants.lock().unwrap();
        for p in participants.iter() {
            let e = p.epoch.load(Ordering::SeqCst);
            if e != INACTIVE && e != global {
                return global;
            }
        }
        drop(participants);
        // A concurrent advance may have won; either way the epoch only moves forward.
        let _ = self
            .epoch
            .compare_exchange(global, global + 1, Ordering::SeqCst, Ordering::SeqCst);
        self.epoch.load(Ordering::SeqCst)
    }

    /// Runs every deferred closure whose epoch is at least two behind the global one.
    fn collect(&self) {
        let global = self.try_advance();
        let ready: Vec<Deferred> = {
            let mut garbage = self.garbage.lock().unwrap();
            let mut ready = Vec::new();
            let mut i = 0;
            while i < garbage.len() {
                if garbage[i].epoch + 2 <= global {
                    ready.push(garbage.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            ready
        };
        // Run outside the lock: a closure may itself defer more garbage.
        for d in ready {
            (d.call)();
        }
    }
}

struct LocalHandle {
    participant: Arc<Participant>,
    pin_depth: Cell<usize>,
    unpins_since_collect: Cell<usize>,
}

impl LocalHandle {
    fn register() -> LocalHandle {
        let participant = Arc::new(Participant {
            epoch: AtomicUsize::new(INACTIVE),
        });
        GLOBAL
            .participants
            .lock()
            .unwrap()
            .push(Arc::clone(&participant));
        LocalHandle {
            participant,
            pin_depth: Cell::new(0),
            unpins_since_collect: Cell::new(0),
        }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // A leaked (mem::forget) guard would leave the slot active and stall
        // reclamation forever; clearing it here is safe because the thread is gone.
        self.participant.epoch.store(INACTIVE, Ordering::SeqCst);
        let mut participants = GLOBAL.participants.lock().unwrap();
        participants.retain(|p| !Arc::ptr_eq(p, &self.participant));
    }
}

thread_local! {
    static LOCAL: LocalHandle = LocalHandle::register();
}

/// Pins the current thread, preventing any object retired from now on from being
/// reclaimed until the returned [`Guard`] is dropped. Pins nest.
pub fn pin() -> Guard {
    LOCAL.with(|local| {
        let depth = local.pin_depth.get();
        local.pin_depth.set(depth + 1);
        if depth == 0 {
            // Publish the epoch we are entering; loop until the published value
            // matches the global epoch so a stale announcement cannot linger.
            loop {
                let e = GLOBAL.epoch.load(Ordering::SeqCst);
                local.participant.epoch.store(e, Ordering::SeqCst);
                if GLOBAL.epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
    });
    Guard {
        _not_send: PhantomData,
    }
}

/// A pinned-thread token; objects retired while any guard exists anywhere are only
/// reclaimed once the epoch protocol proves no pinned thread can still reach them.
pub struct Guard {
    /// Guards reference thread-local state and must not cross threads.
    _not_send: PhantomData<*mut ()>,
}

impl Guard {
    /// Defers a closure until no thread pinned at (or before) the current epoch can
    /// still hold a reference to the data it frees.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the closure is safe to run on another thread at any
    /// later time — in particular that the data it frees has already been unlinked
    /// from every shared structure, and is freed at most once.
    pub unsafe fn defer_unchecked<F, R>(&self, f: F)
    where
        F: FnOnce() -> R,
    {
        let epoch = GLOBAL.epoch.load(Ordering::SeqCst);
        let call: Box<dyn FnOnce() + '_> = Box::new(move || {
            let _ = f();
        });
        // SAFETY: erasing the closure's lifetime is exactly the contract the caller
        // accepted: everything it captures must stay valid until the epoch protocol
        // runs it (crossbeam's `defer_unchecked` has the same obligation).
        let call: Box<dyn FnOnce() + 'static> =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + '_>, Box<dyn FnOnce()>>(call) };
        let mut garbage = GLOBAL.garbage.lock().unwrap();
        garbage.push(Deferred { epoch, call });
    }

    /// Attempts to advance the epoch and run any deferred closures that became safe.
    pub fn flush(&self) {
        GLOBAL.collect();
    }

    /// Unpins and immediately re-pins the thread, allowing the epoch to advance past
    /// any value this guard was holding back.
    pub fn repin(&mut self) {
        LOCAL.with(|local| {
            if local.pin_depth.get() == 1 {
                loop {
                    let e = GLOBAL.epoch.load(Ordering::SeqCst);
                    local.participant.epoch.store(e, Ordering::SeqCst);
                    if GLOBAL.epoch.load(Ordering::SeqCst) == e {
                        break;
                    }
                }
            }
        });
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // `try_with`: the guard may be dropped during thread-local teardown, after
        // LOCAL itself was destroyed (its Drop already marked the slot inactive).
        let _ = LOCAL.try_with(|local| {
            let depth = local.pin_depth.get();
            debug_assert!(depth > 0, "guard dropped while not pinned");
            local.pin_depth.set(depth - 1);
            if depth == 1 {
                local.participant.epoch.store(INACTIVE, Ordering::SeqCst);
                let unpins = local.unpins_since_collect.get() + 1;
                if unpins >= 64 || GLOBAL.garbage.lock().unwrap().len() >= COLLECT_THRESHOLD {
                    local.unpins_since_collect.set(0);
                    GLOBAL.collect();
                } else {
                    local.unpins_since_collect.set(unpins);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn deferred_runs_after_epoch_advances() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        {
            let g = pin();
            unsafe { g.defer_unchecked(|| RAN.fetch_add(1, Ordering::SeqCst)) };
        }
        for _ in 0..8 {
            let g = pin();
            g.flush();
        }
        assert_eq!(RAN.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pinned_thread_blocks_reclamation() {
        let freed = Arc::new(AtomicUsize::new(0));
        let outer = pin();
        {
            let f = Arc::clone(&freed);
            let g = pin();
            unsafe { g.defer_unchecked(move || f.fetch_add(1, Ordering::SeqCst)) };
        }
        // While `outer` is pinned in the retirement epoch the closure must not run,
        // no matter how hard another thread flushes.
        let f = Arc::clone(&freed);
        std::thread::spawn(move || {
            for _ in 0..32 {
                let g = pin();
                g.flush();
            }
            assert_eq!(f.load(Ordering::SeqCst), 0);
        })
        .join()
        .unwrap();
        drop(outer);
        for _ in 0..8 {
            let g = pin();
            g.flush();
        }
        assert_eq!(freed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_pins() {
        let a = pin();
        let b = pin();
        drop(a);
        drop(b);
        let c = pin();
        c.flush();
    }

    #[test]
    fn concurrent_churn() {
        let dropped = Arc::new(AtomicUsize::new(0));
        let threads = 8;
        let per_thread = 500;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let dropped = Arc::clone(&dropped);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        let g = pin();
                        let d = Arc::clone(&dropped);
                        let boxed = Box::into_raw(Box::new(41u64));
                        unsafe {
                            g.defer_unchecked(move || {
                                drop(Box::from_raw(boxed));
                                d.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                        drop(g);
                    }
                });
            }
        });
        for _ in 0..64 {
            let g = pin();
            g.flush();
        }
        assert_eq!(dropped.load(Ordering::SeqCst), threads * per_thread);
    }
}
