//! The hazard-pointer reclamation substrate: era-interval hazards in the style of
//! Michael's hazard pointers, selectable per epoch domain (see [`crate::Reclaimer`]).
//!
//! # Protocol
//!
//! Classic hazard pointers publish one protected *address* per slot and re-validate
//! the source after publishing. This workspace's traversals hold unboundedly many
//! node references under one guard (a full-structure integrity audit examines tens
//! of thousands of nodes), so per-address slots cannot work behind the epoch-shaped
//! [`Guard`](crate::Guard) API. Instead each slot publishes an **era interval**
//! `[lo, hi]` against a per-domain monotone era clock, and Michael's protect→
//! re-validate discipline is applied to *era values*:
//!
//! * **Pin** publishes `lo = hi = clock` (store, `SeqCst` fence, re-validate the
//!   clock; loop until the published value matches — the same announcement dance as
//!   the EBR pin).
//! * **Protected reads** ([`HpHandle::protected`]) run the actual load *inside* a
//!   validate loop: publish `hi = clock` if it moved, fence, perform the load,
//!   re-read the clock, and retry (recording `hp_protect_retry`) until the clock
//!   was stable across the load. Any pointer obtained this way was therefore read
//!   at an era `e` with `lo <= e <= hi` while its target was still reachable.
//! * **Retire** stamps each item with its creation era (`birth`, stamped by the
//!   allocating site via [`Guard::current_era`](crate::Guard::current_era)) and the
//!   clock at retirement (`retire`), pushes it onto the retiring thread's local
//!   list, advances the era clock every [`ERA_ADVANCE_INTERVAL`] retirements, and
//!   triggers a [scan](HpHandle::scan) every [`SCAN_THRESHOLD`].
//! * **Scan** (the collection step, `hp_scan`) reads every active slot's interval
//!   (a `SeqCst` fence first, `hi` before `lo`, clamping `hi = max(lo, hi)` against
//!   torn publications) and frees exactly the retired items whose lifetime interval
//!   `[birth, retire]` intersects **no** published interval: item freed iff for all
//!   slots `!(birth <= hi && lo <= retire)`.
//!
//! # Why the intersection test is safe
//!
//! Suppose a reader pinned at `lo` can still dereference item `X`. The reference
//! was obtained by a protected read validated at some era `e`, so `lo <= e <= hi`.
//! The read returned `X` while `X` was still linked at the loaded location, so the
//! read is coherence-ordered before the unlink CAS, which precedes `X`'s
//! retirement; the clock is monotone, hence `retire >= e >= lo`. `X` existed when
//! the read returned it, so `birth <= e <= hi`. Both conjuncts of the intersection
//! test hold and the scan keeps `X`. Conversely an item born *after* a stalled
//! reader's frozen `hi` can never be discovered by it — the validate loop would
//! have observed the newer clock and republished `hi` — which is exactly the
//! stall-robustness property EBR lacks: a parked reader freezes one interval, and
//! garbage born after that interval still drains (E15, `tests/reclamation_stall.rs`).
//!
//! # Threads, slots and orphans
//!
//! Slots live in a lock-free intrusive registry with lazy removal, exactly like the
//! EBR participant list: claim with a CAS on `in_use`, release on thread exit, never
//! unlink or free (so scans traverse without protection). A thread's not-yet-freed
//! retired items are pushed to the domain's orphan stack at exit and adopted by the
//! next scan, so exiting threads neither leak nor stall garbage.
//!
//! The domain state is an instantiable [`HazardDomain`] (the statics behind
//! [`Reclaimer::Hazard`](crate::Reclaimer) guards are just a fixed array of them),
//! so the protocol proptest can drive several simulated participants of a private
//! domain from one thread and model-check protect/retire/scan interleavings.

use std::cell::{Cell, OnceCell, RefCell};
use std::ptr;
use std::sync::atomic::{self, AtomicBool, AtomicPtr, AtomicU64, Ordering};

use skiptrie_metrics::{self as metrics, Counter};

use crate::{GarbageStats, NUM_DOMAINS};

/// The era clock advances after this many retirements by one thread. A smaller
/// value tightens the garbage bound a stalled reader can hold (only items born
/// while its frozen interval was current stay blocked); a larger one cheapens
/// retirement. 16 keeps the stalled-reader backlog within a small multiple of the
/// live working set.
pub const ERA_ADVANCE_INTERVAL: usize = 16;

/// A thread scans its retired list once it holds this many items, so per-thread
/// pending garbage is bounded by `SCAN_THRESHOLD` plus whatever published hazard
/// intervals still cover (the stall test's constant bound builds on this).
pub const SCAN_THRESHOLD: usize = 64;

/// Every this many outermost hazard pins, the pinning thread also scans if any
/// garbage (local or orphaned) is waiting — the hazard twin of the EBR
/// `PIN_INTERVAL` piggyback, so read-only threads still make collection progress.
const HP_PIN_INTERVAL: usize = 64;

/// A retired item: a deferred destruction closure stamped with the lifetime
/// interval the scan tests against published hazards.
struct Retired {
    /// Era clock value when the object was created (0 = unknown; conservatively
    /// ancient, i.e. covered by every active interval whose `lo <= retire`).
    birth: u64,
    /// Era clock value when the object was retired.
    retire: u64,
    call: Box<dyn FnOnce()>,
}

// SAFETY: retired closures are only executed by a scan, exactly once, after the
// hazard protocol has proven no thread can still observe the data they free. The
// `unsafe` retire entry points put the cross-thread obligation on the caller,
// exactly like `Guard::defer_unchecked`.
unsafe impl Send for Retired {}

/// A batch of retired items abandoned by an exiting thread (or pushed during
/// thread-local teardown); node of the per-domain orphan Treiber stack.
struct OrphanBatch {
    items: Vec<Retired>,
    /// Intrusive link; written only between allocation and the publishing CAS.
    next: *mut OrphanBatch,
}

/// One thread's published hazard interval. Registered in a domain's lock-free slot
/// list; claimed and released like an EBR participant record (lazy removal, so the
/// list is only ever scanned, never unlinked from).
pub struct HazardSlot {
    /// Lower bound of the published interval; 0 = slot not pinned.
    lo: AtomicU64,
    /// Upper bound of the published interval; 0 = slot not pinned. Writers publish
    /// `lo` before `hi` and clear `lo` before `hi`; scans read `hi` before `lo` and
    /// clamp `hi = max(lo, hi)`, so a torn read is always *over*-covering.
    hi: AtomicU64,
    /// Claimed by a live handle. Claim: CAS `false -> true`. Release: store `false`
    /// after clearing the interval.
    in_use: AtomicBool,
    /// Next slot in the registry; written once before the prepend CAS publishes it.
    next: AtomicPtr<HazardSlot>,
}

/// One hazard-pointer reclamation domain: an era clock, a slot registry, an orphan
/// stack, and exact pending/high-water-mark garbage gauges.
///
/// The [`Reclaimer::Hazard`](crate::Reclaimer) guards of domain `d` all route to
/// the `d`-th entry of a static array of these; the type is public and
/// instantiable so tests can model-check a private domain deterministically
/// (several [`HpHandle`]s driven from one thread).
pub struct HazardDomain {
    /// The era clock. Starts at 1 so era 0 can mean "inactive" in slots and
    /// "unknown birth" in retired items.
    clock: AtomicU64,
    /// Head of the intrusive slot registry.
    slots: AtomicPtr<HazardSlot>,
    /// Head of the Treiber stack of orphaned retired-item batches.
    orphans: AtomicPtr<OrphanBatch>,
    /// Retired-but-not-yet-freed items across all threads of this domain (exact).
    pending: AtomicU64,
    /// High-water mark of `pending` (exact, monotone per domain).
    hwm: AtomicU64,
}

/// The hazard twins of the EBR `GLOBALS`: one immortal domain per epoch domain
/// index, so `pin_domain_with(d, Reclaimer::Hazard)` and `pin_domain(d)` are fully
/// independent substrates over the same domain-index namespace.
static HAZARD_DOMAINS: [HazardDomain; NUM_DOMAINS] = [const { HazardDomain::new() }; NUM_DOMAINS];

/// The static hazard domain for `domain % NUM_DOMAINS`.
pub(crate) fn domain(domain: usize) -> &'static HazardDomain {
    &HAZARD_DOMAINS[domain % NUM_DOMAINS]
}

impl HazardDomain {
    /// Creates an empty, independent hazard domain (era clock at 1, no slots, no
    /// garbage). Domains used through [`crate::pin_domain_with`] are statics; build
    /// one directly only to drive the protocol deterministically in tests.
    pub const fn new() -> HazardDomain {
        HazardDomain {
            clock: AtomicU64::new(1),
            slots: AtomicPtr::new(ptr::null_mut()),
            orphans: AtomicPtr::new(ptr::null_mut()),
            pending: AtomicU64::new(0),
            hwm: AtomicU64::new(0),
        }
    }

    /// Current value of the era clock.
    pub fn current_era(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Advances the era clock by one and returns the new value. Retirement does
    /// this automatically every [`ERA_ADVANCE_INTERVAL`] items; tests use it to
    /// place births and retirements in chosen eras.
    pub fn advance_era(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Exact pending / high-water-mark garbage gauges for this domain.
    pub fn stats(&self) -> GarbageStats {
        GarbageStats {
            pending: self.pending.load(Ordering::SeqCst),
            hwm: self.hwm.load(Ordering::SeqCst),
        }
    }

    /// Registers a participant handle: claims a released slot or leaks a fresh one
    /// (lock-free, identical discipline to the EBR participant registry).
    pub fn register(&self) -> HpHandle<'_> {
        let mut curr = self.slots.load(Ordering::Acquire);
        let slot = loop {
            match unsafe { curr.as_ref() } {
                Some(s) => {
                    if s.in_use
                        .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                    {
                        debug_assert_eq!(s.lo.load(Ordering::Relaxed), 0);
                        debug_assert_eq!(s.hi.load(Ordering::Relaxed), 0);
                        break s;
                    }
                    curr = s.next.load(Ordering::Relaxed);
                }
                None => break self.prepend_slot(),
            }
        };
        HpHandle {
            domain: self,
            slot,
            pin_depth: Cell::new(0),
            hi_cache: Cell::new(0),
            pins_since_scan: Cell::new(0),
            retires_since_advance: Cell::new(0),
            retired: RefCell::new(Vec::new()),
        }
    }

    fn prepend_slot(&self) -> &HazardSlot {
        let slot: &HazardSlot = Box::leak(Box::new(HazardSlot {
            lo: AtomicU64::new(0),
            hi: AtomicU64::new(0),
            in_use: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        let slot_ptr = slot as *const HazardSlot as *mut HazardSlot;
        loop {
            let head = self.slots.load(Ordering::Relaxed);
            slot.next.store(head, Ordering::Relaxed);
            if self
                .slots
                .compare_exchange_weak(head, slot_ptr, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return slot;
            }
        }
    }

    /// Accounts one retirement (exact gauges + process-wide counters).
    fn note_retired(&self) {
        metrics::record(Counter::GarbagePending);
        let pending = self.pending.fetch_add(1, Ordering::SeqCst) + 1;
        let prev = self.hwm.fetch_max(pending, Ordering::SeqCst);
        if pending > prev {
            metrics::add(Counter::GarbageHwm, pending - prev);
        }
    }

    /// Accounts `n` freed items.
    fn note_freed(&self, n: usize) {
        if n > 0 {
            self.pending.fetch_sub(n as u64, Ordering::SeqCst);
            metrics::add(Counter::GarbageFreed, n as u64);
        }
    }

    /// Pushes `items` onto the orphan stack (no-op when empty). Called at thread
    /// exit and from the thread-local-teardown retire fallback; accounting for the
    /// items was already done at retirement.
    fn push_orphans(&self, items: Vec<Retired>) {
        if items.is_empty() {
            return;
        }
        let batch = Box::into_raw(Box::new(OrphanBatch {
            items,
            next: ptr::null_mut(),
        }));
        loop {
            let head = self.orphans.load(Ordering::Relaxed);
            // SAFETY: the batch is unpublished until the CAS below succeeds.
            unsafe { (*batch).next = head };
            if self
                .orphans
                .compare_exchange_weak(head, batch, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Steals every orphan batch into `into` (batches become exclusively ours via
    /// the atomic swap).
    fn steal_orphans(&self, into: &mut Vec<Retired>) {
        let mut curr = self.orphans.swap(ptr::null_mut(), Ordering::Acquire);
        while !curr.is_null() {
            // SAFETY: stolen batches are exclusively ours; fully initialized before
            // the publishing CAS.
            let batch = unsafe { Box::from_raw(curr) };
            into.extend(batch.items);
            curr = batch.next;
        }
    }

    /// Reads every active slot's published interval, post-fence, `hi` before `lo`,
    /// clamping `hi = max(lo, hi)` so torn publications over-cover.
    fn collect_intervals(&self) -> Vec<(u64, u64)> {
        atomic::fence(Ordering::SeqCst);
        let mut intervals = Vec::new();
        let mut curr = self.slots.load(Ordering::Acquire);
        while let Some(s) = unsafe { curr.as_ref() } {
            let hi = s.hi.load(Ordering::SeqCst);
            let lo = s.lo.load(Ordering::SeqCst);
            if hi != 0 || lo != 0 {
                intervals.push((lo, hi.max(lo)));
            }
            curr = s.next.load(Ordering::Relaxed);
        }
        intervals
    }

    /// Partitions `batch` into (still covered, safe to free): an item is freed iff
    /// no published interval intersects its `[birth, retire]` lifetime.
    ///
    /// This is the hazard-scan validation the soundness canary targets: weakening
    /// the intersection test (e.g. requiring `lo <= birth` instead of
    /// `birth <= hi`) is the documented collect-early mutation that must make the
    /// reclamation test battery fail under `SKIPTRIE_RECLAIM=hp`.
    fn partition_covered(&self, batch: Vec<Retired>) -> (Vec<Retired>, Vec<Retired>) {
        let intervals = self.collect_intervals();
        batch.into_iter().partition(|item| {
            intervals
                .iter()
                .any(|&(lo, hi)| item.birth <= hi && lo <= item.retire)
        })
    }

    /// Scans and frees orphaned garbage without a thread-local handle: the
    /// teardown fallback for [`Guard::flush`](crate::Guard::flush) in hazard mode,
    /// and the drain path for handle-less callers. Advances the era first so
    /// quiescent drains make progress.
    pub(crate) fn flush_orphans(&self) {
        self.advance_era();
        metrics::record(Counter::HpScan);
        let mut batch = Vec::new();
        self.steal_orphans(&mut batch);
        if batch.is_empty() {
            return;
        }
        let (keep, run) = self.partition_covered(batch);
        self.push_orphans(keep);
        self.note_freed(run.len());
        for item in run {
            (item.call)();
        }
    }

    /// True if the orphan stack is non-empty (cheap liveness probe for the pin
    /// piggyback).
    fn has_orphans(&self) -> bool {
        !self.orphans.load(Ordering::Relaxed).is_null()
    }
}

impl Default for HazardDomain {
    fn default() -> Self {
        HazardDomain::new()
    }
}

impl Drop for HazardDomain {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): no handle can be alive (they borrow the
        // domain), so every published interval is stale and every remaining orphan
        // is safe to run — this is the "domain drain" edge the protocol proptest
        // pins (every retired item freed exactly once). Statics never drop; this
        // path only runs for test-built domains.
        let mut leftovers = Vec::new();
        self.steal_orphans(&mut leftovers);
        self.note_freed(leftovers.len());
        for item in leftovers {
            (item.call)();
        }
        let mut curr = *self.slots.get_mut();
        while !curr.is_null() {
            // SAFETY: slots were leaked by `prepend_slot` and are exclusively ours.
            let slot = unsafe { Box::from_raw(curr) };
            curr = slot.next.load(Ordering::Relaxed);
        }
    }
}

/// One participant of a [`HazardDomain`]: a claimed slot plus the thread-local
/// protocol state (pin depth, published-`hi` cache, retired list). The hazard twin
/// of the EBR `LocalHandle`, public so tests can simulate several participants of
/// a private domain from one thread.
pub struct HpHandle<'d> {
    domain: &'d HazardDomain,
    slot: &'d HazardSlot,
    pin_depth: Cell<usize>,
    /// The era this handle last published as `hi` (avoids re-publishing on every
    /// protected read while the clock is quiet). Only meaningful while pinned.
    hi_cache: Cell<u64>,
    pins_since_scan: Cell<usize>,
    retires_since_advance: Cell<usize>,
    retired: RefCell<Vec<Retired>>,
}

impl HpHandle<'_> {
    /// Pins this participant: publishes `lo = hi = clock` with the announce/fence/
    /// re-validate loop. Pins nest; every `HP_PIN_INTERVAL`-th outermost pin also
    /// scans if garbage is waiting.
    pub fn pin(&self) {
        let depth = self.pin_depth.get();
        self.pin_depth.set(depth + 1);
        if depth != 0 {
            return;
        }
        self.publish();
        let pins = self.pins_since_scan.get() + 1;
        if pins >= HP_PIN_INTERVAL
            && (!self.retired.borrow().is_empty() || self.domain.has_orphans())
        {
            self.pins_since_scan.set(0);
            self.scan();
        } else {
            self.pins_since_scan.set(pins);
        }
    }

    /// Unpins (outermost: clears the published interval, `lo` before `hi`).
    pub fn unpin(&self) {
        let depth = self.pin_depth.get();
        debug_assert!(depth > 0, "hazard handle unpinned while not pinned");
        self.pin_depth.set(depth - 1);
        if depth == 1 {
            self.slot.lo.store(0, Ordering::SeqCst);
            self.slot.hi.store(0, Ordering::SeqCst);
        }
    }

    /// Re-announces the interval at the current era, releasing every era the old
    /// interval was protecting (the hazard back-end of [`Guard::repin`](crate::Guard::repin)).
    pub fn repin(&self) {
        if self.pin_depth.get() == 1 {
            self.slot.lo.store(0, Ordering::SeqCst);
            self.slot.hi.store(0, Ordering::SeqCst);
            self.publish();
        }
    }

    /// True while at least one pin is outstanding.
    pub fn is_pinned(&self) -> bool {
        self.pin_depth.get() > 0
    }

    fn publish(&self) {
        loop {
            let e = self.domain.clock.load(Ordering::SeqCst);
            self.slot.lo.store(e, Ordering::SeqCst);
            self.slot.hi.store(e, Ordering::SeqCst);
            atomic::fence(Ordering::SeqCst);
            if self.domain.clock.load(Ordering::SeqCst) == e {
                self.hi_cache.set(e);
                return;
            }
        }
    }

    /// Performs `f` (a load of shared memory) under era protection: publish
    /// `hi = clock` if the clock moved, fence, run the load, and re-validate that
    /// the clock was stable — retrying (and recording `hp_protect_retry`)
    /// otherwise. Any pointer `f` returned on the *accepted* iteration was read at
    /// an era inside this handle's published interval, which is what the scan's
    /// intersection test protects.
    ///
    /// The handle must be pinned.
    pub fn protected<T>(&self, f: &mut dyn FnMut() -> T) -> T {
        debug_assert!(self.is_pinned(), "protected read outside a pin");
        let mut e = self.domain.clock.load(Ordering::SeqCst);
        loop {
            if self.hi_cache.get() != e {
                // `hi` only ever grows while pinned (the clock is monotone), so
                // this widens the published interval before the load below.
                self.slot.hi.store(e, Ordering::SeqCst);
                atomic::fence(Ordering::SeqCst);
                self.hi_cache.set(e);
            }
            let value = f();
            let now = self.domain.clock.load(Ordering::SeqCst);
            if now == e {
                return value;
            }
            e = now;
            metrics::record(Counter::HpProtectRetry);
        }
    }

    /// Retires an item with an explicit birth era: stamps the retirement era,
    /// advances the clock every [`ERA_ADVANCE_INTERVAL`] retirements, and scans
    /// every [`SCAN_THRESHOLD`].
    ///
    /// # Safety
    ///
    /// As [`Guard::defer_unchecked`](crate::Guard::defer_unchecked): the item must
    /// already be unreachable for new protected reads (unlinked), the closure must
    /// be safe to run on any thread at any later time, and it must free the item
    /// at most once. `birth` must not postdate the era at which the item became
    /// reachable (0 is always sound).
    pub unsafe fn retire_unchecked(&self, birth: u64, f: impl FnOnce() + Send + 'static) {
        self.retire_raw(birth, Box::new(f));
    }

    /// Type-erased retire core (shared with the [`Guard`](crate::Guard) routing,
    /// whose closures had their lifetime erased already).
    pub(crate) fn retire_raw(&self, birth: u64, call: Box<dyn FnOnce()>) {
        let retire = self.domain.clock.load(Ordering::SeqCst);
        self.domain.note_retired();
        let len = {
            let mut retired = self.retired.borrow_mut();
            retired.push(Retired {
                birth,
                retire,
                call,
            });
            retired.len()
        };
        let advances = self.retires_since_advance.get() + 1;
        if advances >= ERA_ADVANCE_INTERVAL {
            self.retires_since_advance.set(0);
            self.domain.advance_era();
        } else {
            self.retires_since_advance.set(advances);
        }
        if len >= SCAN_THRESHOLD {
            self.scan();
        }
    }

    /// Scans this handle's retired list (plus any adopted orphans) against the
    /// published hazard intervals and frees every uncovered item. Records
    /// `hp_scan`; covered items return to the local list.
    pub fn scan(&self) {
        metrics::record(Counter::HpScan);
        let mut batch = std::mem::take(&mut *self.retired.borrow_mut());
        self.domain.steal_orphans(&mut batch);
        if batch.is_empty() {
            return;
        }
        let (keep, run) = self.domain.partition_covered(batch);
        // Reinstall survivors *before* running closures: a destructor may itself
        // retire (recursing into the RefCell) or pin.
        self.retired.borrow_mut().extend(keep);
        self.domain.note_freed(run.len());
        for item in run {
            (item.call)();
        }
    }

    /// Advances the era and scans — the hazard back-end of
    /// [`Guard::flush`](crate::Guard::flush), and the step drain loops repeat
    /// until pending garbage reaches zero.
    pub fn flush(&self) {
        self.domain.advance_era();
        self.scan();
    }

    /// The domain this handle participates in.
    pub fn domain(&self) -> &HazardDomain {
        self.domain
    }
}

impl Drop for HpHandle<'_> {
    fn drop(&mut self) {
        // Thread (or simulated participant) exit: orphan whatever the last scan
        // could not free, clear the interval, and release the slot for reuse. A
        // leaked guard would otherwise stall the domain forever; clearing here is
        // safe because the handle — hence every guard over it — is gone.
        let leftovers = std::mem::take(&mut *self.retired.borrow_mut());
        self.domain.push_orphans(leftovers);
        self.slot.lo.store(0, Ordering::SeqCst);
        self.slot.hi.store(0, Ordering::SeqCst);
        self.slot.in_use.store(false, Ordering::Release);
    }
}

thread_local! {
    /// One lazily-registered hazard handle per domain (the hazard twin of the EBR
    /// `LOCALS`). Dropped at thread exit: orphans leftovers, releases slots.
    static HP_LOCALS: [OnceCell<HpHandle<'static>>; NUM_DOMAINS] =
        const { [const { OnceCell::new() }; NUM_DOMAINS] };
}

/// Runs `f` with this thread's hazard handle for `domain`, registering on first
/// use. `None` during thread-local teardown (callers fall back to the domain's
/// orphan stack).
pub(crate) fn with_hp_local<R>(
    domain: usize,
    f: impl FnOnce(&HpHandle<'static>) -> R,
) -> Option<R> {
    HP_LOCALS
        .try_with(|locals| f(locals[domain].get_or_init(|| HAZARD_DOMAINS[domain].register())))
        .ok()
}

/// Outermost entry for `pin_domain_with(d, Reclaimer::Hazard)`. Uses `with` (not
/// `try_with`): pinning during thread-local teardown cannot protect anything and
/// must fail loudly, matching the EBR pin.
pub(crate) fn pin(domain: usize) {
    HP_LOCALS.with(|locals| {
        locals[domain]
            .get_or_init(|| HAZARD_DOMAINS[domain].register())
            .pin();
    });
}

/// Retires with the thread-local handle, or orphans a single-item batch during
/// thread-local teardown (stamping `retire` from the domain clock either way).
pub(crate) fn retire(domain: usize, birth: u64, call: Box<dyn FnOnce()>) {
    let mut slot = Some(call);
    let handled = with_hp_local(domain, |local| {
        local.retire_raw(birth, slot.take().expect("retired closure moved twice"));
    });
    if handled.is_none() {
        if let Some(call) = slot {
            let d = self::domain(domain);
            let retire = d.current_era();
            d.note_retired();
            d.push_orphans(vec![Retired {
                birth,
                retire,
                call,
            }]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    fn retire_flag(h: &HpHandle<'_>, birth: u64, flag: &Rc<Cell<u32>>) {
        // Rc is !Send; route through the raw internal entry point like the Guard
        // does, keeping the single-threaded test ergonomic.
        let flag = Rc::clone(flag);
        h.retire_raw(birth, Box::new(move || flag.set(flag.get() + 1)));
    }

    #[test]
    fn uncovered_item_is_freed_by_scan() {
        let d = HazardDomain::new();
        let h = d.register();
        let freed = Rc::new(Cell::new(0));
        retire_flag(&h, d.current_era(), &freed);
        assert_eq!(d.stats().pending, 1);
        h.scan();
        assert_eq!(freed.get(), 1, "no hazard published: item must be freed");
        assert_eq!(d.stats().pending, 0);
        assert_eq!(d.stats().hwm, 1);
    }

    #[test]
    fn covered_item_survives_until_unpin() {
        let d = HazardDomain::new();
        let writer = d.register();
        let reader = d.register();
        reader.pin();
        let freed = Rc::new(Cell::new(0));
        // Born before the reader pinned, retired after: intersects the interval.
        retire_flag(&writer, 1, &freed);
        writer.flush();
        writer.flush();
        assert_eq!(freed.get(), 0, "covered item freed under an active hazard");
        reader.unpin();
        writer.flush();
        assert_eq!(freed.get(), 1);
    }

    #[test]
    fn item_born_after_a_stalled_reader_pinned_is_freed() {
        let d = HazardDomain::new();
        let writer = d.register();
        let reader = d.register();
        reader.pin(); // interval frozen at the current era
        d.advance_era();
        let freed = Rc::new(Cell::new(0));
        // Born strictly after the stalled reader's hi: can never be discovered by
        // it (the protect loop would republish), so the scan frees it immediately.
        retire_flag(&writer, d.current_era(), &freed);
        writer.scan();
        assert_eq!(
            freed.get(),
            1,
            "post-stall garbage must drain (the E15 bound)"
        );
        reader.unpin();
    }

    #[test]
    fn protected_read_retries_when_the_clock_moves() {
        let d = HazardDomain::new();
        let h = d.register();
        h.pin();
        let mut calls = 0;
        let v = h.protected(&mut || {
            calls += 1;
            if calls == 1 {
                d.advance_era(); // invalidate the first iteration
            }
            42u64
        });
        assert_eq!(v, 42);
        assert!(
            calls >= 2,
            "clock moved mid-read: the loop must re-validate"
        );
        h.unpin();
    }

    #[test]
    fn exited_participants_orphan_their_garbage_and_release_their_slot() {
        let d = HazardDomain::new();
        let freed = Rc::new(Cell::new(0));
        {
            let h = d.register();
            retire_flag(&h, d.current_era(), &freed);
        } // handle dropped: item orphaned, slot released
        assert_eq!(d.stats().pending, 1);
        let successor = d.register();
        successor.flush();
        assert_eq!(freed.get(), 1, "orphans must be adopted by the next scan");
        assert_eq!(d.stats().pending, 0);
    }

    #[test]
    fn slot_reuse_does_not_inherit_the_previous_owners_protection() {
        let d = HazardDomain::new();
        let writer = d.register();
        let freed = Rc::new(Cell::new(0));
        let born = d.current_era();
        {
            let first = d.register();
            first.pin();
            first.unpin();
        } // slot released
          // Retired while no hazard is active...
        retire_flag(&writer, born, &freed);
        d.advance_era();
        // ...then the slot is reused by a new participant pinned at a later era.
        let second = d.register();
        second.pin();
        writer.scan();
        assert_eq!(
            freed.get(),
            1,
            "an item retired before the new owner pinned must not be covered"
        );
        second.unpin();
    }

    #[test]
    fn dropping_a_test_domain_drains_every_orphan_exactly_once() {
        let freed = Rc::new(Cell::new(0));
        {
            let d = HazardDomain::new();
            let h = d.register();
            let blocker = d.register();
            blocker.pin();
            retire_flag(&h, 1, &freed);
            h.scan();
            assert_eq!(freed.get(), 0, "blocked while covered");
            blocker.unpin();
            drop(h); // orphans the item
            drop(blocker);
        } // domain drop runs the leftovers
        assert_eq!(freed.get(), 1);
    }
}
