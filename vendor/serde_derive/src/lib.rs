//! Inert `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros: they accept the
//! input and emit no code, so the annotations compile without the real serde.

use proc_macro::TokenStream;

/// No-op derive for `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive for `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
