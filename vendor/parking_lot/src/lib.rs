//! Vendored subset of `parking_lot` backed by `std::sync` primitives, exposing the
//! panic-free `lock()`/`read()`/`write()` API the workspace uses. Poisoning is
//! deliberately ignored (parking_lot has no poisoning): a poisoned std lock yields
//! its inner guard.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, TryLockError};

/// A reader-writer lock with parking_lot's non-poisoning API, backed by
/// [`std::sync::RwLock`].
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// A mutex with parking_lot's non-poisoning API, backed by [`std::sync::Mutex`].
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let lock = RwLock::new(5);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(&*m.lock(), &[1, 2]);
    }
}
