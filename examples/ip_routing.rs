//! IP routing table lookups with predecessor queries.
//!
//! Run with:
//!
//! ```text
//! cargo run --example ip_routing --release
//! ```
//!
//! A classic use of predecessor structures over a bounded universe (and the textbook
//! motivation for x-fast/y-fast tries): longest-prefix routing can be reduced to
//! predecessor queries over the starts of address ranges. Each CIDR route
//! `a.b.c.d/len -> next hop` covers a contiguous range of 32-bit addresses; for
//! non-overlapping ranges (e.g. a flattened FIB), the route for an address is simply
//! the predecessor of that address among range starts, provided the address falls
//! inside the returned range.
//!
//! The SkipTrie gives lock-free, O(log log u)-depth lookups while routes are inserted
//! and withdrawn concurrently — exactly the concurrent predecessor workload the paper
//! targets.

use std::net::Ipv4Addr;

use skiptrie_suite::skiptrie::{SkipTrie, SkipTrieConfig};

/// A route entry: the covered range is `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Route {
    prefix_len: u8,
    next_hop: Ipv4Addr,
}

fn cidr_start(addr: Ipv4Addr, len: u8) -> u64 {
    let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
    (u32::from(addr) & mask) as u64
}

fn cidr_size(len: u8) -> u64 {
    1u64 << (32 - len)
}

fn main() {
    // The routing table: a SkipTrie over the 32-bit IPv4 address space mapping the
    // start of each (disjoint) prefix to its route.
    let table: SkipTrie<Route> = SkipTrie::new(SkipTrieConfig::for_universe_bits(32));

    let routes = [
        ("10.0.0.0", 8, "192.0.2.1"),
        ("10.1.0.0", 16, "192.0.2.2"),
        ("172.16.0.0", 12, "192.0.2.3"),
        ("192.168.0.0", 16, "192.0.2.4"),
        ("192.168.42.0", 24, "192.0.2.5"),
        ("203.0.113.0", 24, "192.0.2.6"),
    ];
    // Insert more-specific routes as separate disjoint entries by splitting around
    // them (kept simple here: we insert all starts and, on lookup, prefer the longest
    // prefix whose range contains the address by probing predecessors repeatedly).
    for (net, len, hop) in routes {
        let addr: Ipv4Addr = net.parse().expect("valid literal");
        let start = cidr_start(addr, len);
        table.insert(
            start,
            Route {
                prefix_len: len,
                next_hop: hop.parse().expect("valid literal"),
            },
        );
        println!("announce {net}/{len} via {hop}");
    }

    let lookup = |addr: &str| -> Option<(String, Ipv4Addr)> {
        let ip: Ipv4Addr = addr.parse().expect("valid literal");
        let key = u32::from(ip) as u64;
        // Walk predecessors until one's range covers the address (at most a handful of
        // steps for realistic tables; a flattened FIB needs exactly one).
        let mut probe = key;
        loop {
            let (start, route) = table.predecessor(probe)?;
            if key < start + cidr_size(route.prefix_len) {
                let net = Ipv4Addr::from(start as u32);
                return Some((format!("{net}/{}", route.prefix_len), route.next_hop));
            }
            if start == 0 {
                return None;
            }
            probe = start - 1;
        }
    };

    println!("\n== lookups ==");
    for addr in [
        "10.1.2.3",
        "10.200.0.1",
        "192.168.42.99",
        "192.168.7.7",
        "8.8.8.8",
        "203.0.113.77",
    ] {
        match lookup(addr) {
            Some((prefix, hop)) => println!("{addr:<16} -> {prefix:<18} via {hop}"),
            None => println!("{addr:<16} -> no route"),
        }
    }

    println!("\n== withdrawing 192.168.42.0/24 ==");
    let start = cidr_start("192.168.42.0".parse().unwrap(), 24);
    table.remove(start);
    match lookup("192.168.42.99") {
        Some((prefix, hop)) => {
            println!("192.168.42.99    -> {prefix:<18} via {hop} (falls back to the covering /16)")
        }
        None => println!("192.168.42.99    -> no route"),
    }
}
