//! Sharded forest quickstart: partitioned SkipTries with batched operations.
//!
//! Run with:
//!
//! ```text
//! cargo run --example sharded_batch --release
//! ```
//!
//! A telemetry-ingestion sketch: timestamped readings arrive in bursts (batches),
//! land in a [`ShardedSkipTrie`] keyed by timestamp — the top key bits route each
//! burst to per-epoch/per-pool shards — and are consumed by cross-shard window
//! scans and an ordered drain. Demonstrates `insert_batch` / `get_batch` /
//! `remove_batch`, cross-shard `predecessor` / `range` / `pop_first`, and the
//! shard-load diagnostics.

use skiptrie_suite::skiptrie::{ShardedSkipTrie, ShardedSkipTrieConfig};
use skiptrie_suite::workloads::SplitMix64;

fn main() {
    // 8 independent SkipTries over a 32-bit timestamp universe: each shard owns a
    // 2^29-tick slice, with its own node pool and epoch domain.
    let store: ShardedSkipTrie<u64> =
        ShardedSkipTrie::new(ShardedSkipTrieConfig::for_universe_bits(32).with_shards(8));
    println!(
        "== a forest of {} shards over a {}-bit universe ==",
        store.shard_count(),
        store.universe_bits()
    );

    // Bursts of readings: sorted-by-shard batches execute under one epoch pin per
    // shard with predecessor hints threaded between consecutive inserts.
    let mut rng = SplitMix64::new(0xDA7A);
    let mut total = 0usize;
    for burst in 0..32 {
        let batch: Vec<(u64, u64)> = (0..256)
            .map(|_| {
                let ts = rng.next() & 0xffff_ffff;
                (ts, ts ^ burst)
            })
            .collect();
        total += store.insert_batch(&batch);
    }
    println!("ingested {total} readings in 32 batched bursts of 256");
    println!("shard load (keys per shard): {:?}", store.shard_lens());

    // Batched lookups return values in input order.
    let probe: Vec<u64> = store.keys().into_iter().step_by(997).take(5).collect();
    let found = store.get_batch(&probe);
    println!("probe {probe:?} -> {} hits", found.iter().flatten().count());
    assert!(found.iter().all(|v| v.is_some()));

    // Cross-shard ordered queries: the window and the predecessor both straddle
    // shard boundaries transparently.
    let boundary = 1u64 << 29; // first shard boundary
    let near = store.count_range(boundary - (1 << 20)..boundary + (1 << 20));
    println!("readings within ±2^20 ticks of the first shard boundary: {near}");
    let (ts, _) = store
        .predecessor(boundary)
        .expect("something precedes the boundary");
    println!("latest reading at or before the boundary: ts={ts}");

    // Ordered drain of the earliest readings (extract-min across shards).
    print!("draining the 5 earliest readings:");
    for _ in 0..5 {
        let (ts, _) = store.pop_first().expect("store is not empty");
        print!(" {ts}");
    }
    println!();

    // Bulk eviction of an old window: collect keys below a cutoff, remove as one
    // batch (grouped per shard, one pin per shard).
    let cutoff = 1u64 << 30;
    let old: Vec<u64> = store.range(..cutoff).map(|(k, _)| k).collect();
    let evicted = store.remove_batch(&old);
    println!("evicted {evicted} readings below ts={cutoff}");
    assert_eq!(store.count_range(..cutoff), 0);
    println!("{} readings remain", store.len());
}
