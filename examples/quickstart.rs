//! Quickstart: the SkipTrie as an ordered concurrent map.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! Demonstrates the basic API (insert / get / predecessor / successor / remove), the
//! configuration of the key universe, and a peek at the internal structure the paper
//! describes (truncated skiplist levels + x-fast trie population).

use skiptrie_suite::skiptrie::{SkipTrie, SkipTrieConfig};

fn main() {
    // A SkipTrie over 32-bit keys: u = 2^32, so the skiplist has log log u = 5 levels
    // and roughly one key in log u = 32 is indexed by the x-fast trie.
    let trie: SkipTrie<&'static str> = SkipTrie::new(SkipTrieConfig::for_universe_bits(32));

    println!("== inserting a few keys ==");
    for (key, name) in [
        (10_u64, "ten"),
        (1_000, "one thousand"),
        (1_000_000, "one million"),
    ] {
        let fresh = trie.insert(key, name);
        println!("insert {key:>9} -> {name:<14} (new: {fresh})");
    }
    assert!(
        !trie.insert(10, "duplicate"),
        "duplicate inserts are rejected"
    );

    println!("\n== point and predecessor queries ==");
    println!("get(1000)            = {:?}", trie.get(1_000));
    println!("predecessor(999_999) = {:?}", trie.predecessor(999_999));
    println!("predecessor(10)      = {:?}", trie.predecessor(10));
    println!("strict_pred(10)      = {:?}", trie.strict_predecessor(10));
    println!("successor(11)        = {:?}", trie.successor(11));
    println!("successor(2_000_000) = {:?}", trie.successor(2_000_000));

    println!("\n== removal ==");
    println!("remove(1000)         = {:?}", trie.remove(1_000));
    println!("predecessor(999_999) = {:?}", trie.predecessor(999_999));

    // Populate a larger set to see the probabilistic structure of the paper's Fig. 1.
    println!("\n== structure after 100_000 inserts ==");
    for k in 0..100_000u64 {
        trie.insert(k * 41_913 % (1 << 32), "bulk");
    }
    let levels = trie.level_lengths();
    for (level, count) in levels.iter().enumerate() {
        println!("skiplist level {level}: {count} nodes");
    }
    println!(
        "top-level keys (indexed in the x-fast trie): {}",
        trie.top_level_keys().len()
    );
    println!("x-fast trie prefixes: {}", trie.prefix_count());
    println!("total keys: {}", trie.len());
}
