//! Checkpoint/restore: snapshot a serving forest, then cold-start a fresh one from
//! the checkpoint with the parallel bulk loader.
//!
//! Run with:
//!
//! ```text
//! cargo run --example checkpoint_restore --release
//! ```
//!
//! Production systems do not start empty — they restore a checkpoint and serve.
//! This example walks the whole loop: build a sharded forest under simulated
//! traffic, export a `snapshot()` (sorted, duplicate-free, taken under one epoch
//! pin per shard), restore it into a *differently sharded* forest via
//! `from_sorted` (single-owner `O(n)` construction, one worker thread per shard),
//! and verify the restored forest serves identically.

use std::time::Instant;

use skiptrie_suite::skiptrie::{ShardedSkipTrie, ShardedSkipTrieConfig};

fn main() {
    let n: u64 = 200_000;

    println!("== phase 1: a serving forest accumulates state ==");
    let serving: ShardedSkipTrie<u64> =
        ShardedSkipTrie::new(ShardedSkipTrieConfig::for_universe_bits(32).with_shards(8));
    let start = Instant::now();
    for i in 0..n {
        // Scattered keys (Fibonacci spread) — the worst case for one-at-a-time
        // ingest, which is exactly why checkpoints should restore via bulk_load.
        let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & 0xffff_ffff;
        serving.insert(key, i);
    }
    println!(
        "   {} keys inserted one at a time in {:?}",
        serving.len(),
        start.elapsed()
    );

    println!("== phase 2: checkpoint ==");
    let start = Instant::now();
    let checkpoint = serving.snapshot();
    println!(
        "   snapshot of {} entries in {:?} (sorted: {})",
        checkpoint.len(),
        start.elapsed(),
        checkpoint.windows(2).all(|w| w[0].0 < w[1].0),
    );

    println!("== phase 3: restore into a wider forest ==");
    let start = Instant::now();
    let restored: ShardedSkipTrie<u64> = ShardedSkipTrie::from_sorted(
        ShardedSkipTrieConfig::for_universe_bits(32).with_shards(16),
        &checkpoint,
    );
    println!(
        "   bulk-loaded {} keys into 16 shards in {:?} (parallel per-shard build)",
        restored.len(),
        start.elapsed()
    );

    println!("== phase 4: the restored forest serves identically ==");
    assert_eq!(restored.len(), serving.len());
    for probe in [0u64, 1 << 16, 1 << 24, (1 << 32) - 1] {
        assert_eq!(restored.predecessor(probe), serving.predecessor(probe));
        assert_eq!(restored.successor(probe), serving.successor(probe));
    }
    assert_eq!(restored.snapshot(), checkpoint, "round trip is lossless");
    let window: Vec<(u64, u64)> = restored.range(1 << 20..1 << 21).collect();
    println!(
        "   predecessor/successor/range agree; e.g. {} keys in [2^20, 2^21)",
        window.len()
    );
    println!("done.");
}
