//! A concurrent event scheduler (timer wheel replacement) built on the SkipTrie.
//!
//! Run with:
//!
//! ```text
//! cargo run --example event_scheduler --release
//! ```
//!
//! Priority queues over bounded integer priorities (deadlines in microseconds, say)
//! are a classic application of van Emde Boas-style structures — the paper's
//! introduction cites calendar queues as the fan-out workaround. Here, producer
//! threads schedule events at future timestamps while a consumer thread repeatedly
//! extracts the earliest event with `pop_first`, all lock-free. (`pop_first`
//! replaces the hand-rolled `successor`-then-`remove` retry loop this example used
//! to carry: one combined locate+CAS-remove per event instead of a full x-fast
//! search per attempt plus a second search for the remove — experiment E9b
//! quantifies the difference.)

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use skiptrie_suite::skiptrie::{SkipTrie, SkipTrieConfig};

/// Timestamps are 40-bit microsecond deadlines: enough for ~13 days of schedule.
const TIME_BITS: u32 = 40;

fn main() {
    let scheduler: Arc<SkipTrie<String>> =
        Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(TIME_BITS)));
    let produced = Arc::new(AtomicUsize::new(0));
    let consumed = Arc::new(AtomicUsize::new(0));
    let done_producing = Arc::new(AtomicBool::new(false));

    let producers = 4;
    let events_per_producer = 25_000u64;

    std::thread::scope(|scope| {
        // Producers schedule events at pseudo-random future deadlines. Collisions on a
        // deadline are resolved by probing the next microsecond.
        for p in 0..producers {
            let scheduler = Arc::clone(&scheduler);
            let produced = Arc::clone(&produced);
            scope.spawn(move || {
                let mut state = 0x9E37_79B9u64.wrapping_mul(p as u64 + 1);
                for i in 0..events_per_producer {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let mut deadline = state % (1 << TIME_BITS);
                    let label = format!("producer-{p} event-{i}");
                    while !scheduler.insert(deadline, label.clone()) {
                        deadline = (deadline + 1) % (1 << TIME_BITS);
                    }
                    produced.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The consumer drains events in deadline order.
        let scheduler_c = Arc::clone(&scheduler);
        let consumed_c = Arc::clone(&consumed);
        let done = Arc::clone(&done_producing);
        let consumer = scope.spawn(move || {
            let mut last_deadline = 0u64;
            let mut out_of_order = 0usize;
            loop {
                match scheduler_c.pop_first() {
                    Some((deadline, _label)) => {
                        // Deadlines may appear "out of order" only relative to
                        // concurrently *inserted* earlier deadlines, which is
                        // expected for a running scheduler; track it for interest.
                        if deadline < last_deadline {
                            out_of_order += 1;
                        }
                        last_deadline = deadline;
                        consumed_c.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        if done.load(Ordering::Relaxed) && scheduler_c.is_empty() {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
            out_of_order
        });

        // Wait for producers (all spawned threads other than the consumer).
        // The scope joins everything; we just flag completion for the consumer.
        scope.spawn(move || {
            // This watchdog thread flips the flag once production reaches the target.
            let target = producers as usize * events_per_producer as usize;
            while produced.load(Ordering::Relaxed) < target {
                std::thread::yield_now();
            }
            done_producing.store(true, Ordering::Relaxed);
        });

        let out_of_order = consumer.join().expect("consumer finished");
        println!(
            "scheduled {} events from {producers} producers, dispatched {} in deadline order",
            producers as u64 * events_per_producer,
            consumed.load(Ordering::Relaxed),
        );
        println!("dispatches that preceded a late-arriving earlier deadline: {out_of_order}");
    });

    assert!(scheduler.is_empty(), "every scheduled event was dispatched");
    println!(
        "scheduler drained; structure is empty: {}",
        scheduler.is_empty()
    );
}
