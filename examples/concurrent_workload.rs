//! A multi-threaded mixed workload with live step accounting.
//!
//! Run with:
//!
//! ```text
//! cargo run --example concurrent_workload --release -- [threads]
//! ```
//!
//! Spawns worker threads that hammer one shared SkipTrie with a 90/9/1
//! read/insert/remove mix (the read-heavy mix of experiment E7) and prints
//! throughput plus the per-operation step counts that the paper's Theorem 4.3 bounds
//! by `O(log log u + c)`.

use skiptrie_suite::metrics::{self as metrics, Counter};
use skiptrie_suite::skiptrie::{SkipTrie, SkipTrieConfig};
use skiptrie_suite::workloads::{KeyDist, OpMix, WorkloadSpec};

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    let spec = WorkloadSpec {
        universe_bits: 32,
        prefill: 200_000,
        ops_per_thread: 200_000,
        threads,
        dist: KeyDist::Uniform,
        mix: OpMix::READ_HEAVY,
        seed: 0xC0FFEE,
    };

    let trie: SkipTrie<u64> = SkipTrie::new(SkipTrieConfig::for_universe_bits(spec.universe_bits));
    println!("prefilling {} keys ...", spec.prefill);
    for k in spec.prefill_keys() {
        trie.insert(k, k);
    }

    println!(
        "running {} threads x {} ops (90% predecessor / 9% insert / 1% remove) ...",
        spec.threads, spec.ops_per_thread
    );
    metrics::set_enabled(true);
    let before = metrics::snapshot();
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for t in 0..spec.threads {
            let trie = &trie;
            let ops = spec.thread_ops(t);
            scope.spawn(move || {
                for op in ops {
                    match op {
                        skiptrie_suite::workloads::Op::Insert(k) => {
                            trie.insert(k, k);
                        }
                        skiptrie_suite::workloads::Op::Remove(k) => {
                            trie.remove(k);
                        }
                        skiptrie_suite::workloads::Op::Predecessor(k) => {
                            trie.predecessor(k);
                        }
                        skiptrie_suite::workloads::Op::Scan { from, limit } => {
                            // READ_HEAVY generates no scans; exhaustive for mix swaps.
                            trie.range(from..).count_up_to(limit);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let delta = metrics::snapshot().since(&before);
    metrics::set_enabled(false);

    let total_ops = spec.total_ops() as f64;
    println!("\n== results ==");
    println!("elapsed:                {elapsed:?}");
    println!(
        "throughput:             {:.2} Mops/s",
        total_ops / elapsed.as_secs_f64() / 1e6
    );
    println!("keys now stored:        {}", trie.len());
    println!(
        "traversal steps/op:     {:.2}  (log log u = {} levels + trie probes)",
        delta.traversal_steps() as f64 / total_ops,
        trie.level_lengths().len()
    );
    println!(
        "hash probes/op:         {:.2}",
        delta.get(Counter::HashOp) as f64 / total_ops
    );
    println!(
        "CAS+DCSS attempts/op:   {:.3}",
        delta.update_steps() as f64 / total_ops
    );
    println!(
        "contention steps/op:    {:.3}  (failed CAS/DCSS, helping, restarts — the paper's +c)",
        delta.contention_steps() as f64 / total_ops
    );
}
