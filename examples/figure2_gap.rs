//! Reenactment of the paper's Figure 2: transient gaps in the doubly-linked top level.
//!
//! Run with:
//!
//! ```text
//! cargo run --example figure2_gap --release
//! ```
//!
//! In the paper's example, an insert of key 5 has linked itself forward after node 1
//! but has not yet updated node 7's `prev`; inserts of 2 and 3 complete meanwhile, so
//! a query that starts from node 7 and steps back lands on node 1 and must walk
//! forward across 2, 3 and 5. The inconsistency is transient: it disappears as soon as
//! the insert of 5 finishes.
//!
//! Threads cannot be paused between two specific CAS instructions from safe code, so
//! this example reproduces the phenomenon the way it arises in practice (and the way
//! the paper says it arises): bursts of inserts with successive keys racing against
//! predecessor queries. It prints how many `prev`/`back` guide hops and marked-node
//! skips queries needed while the burst was in flight versus after quiescence, and
//! checks that every answer returned during the burst is consistent with the keys
//! inserted so far.

use std::sync::atomic::{AtomicBool, Ordering};

use skiptrie_suite::metrics::{self as metrics, Counter};
use skiptrie_suite::skiptrie::{SkipTrie, SkipTrieConfig};

fn main() {
    let trie: SkipTrie<u64> = SkipTrie::new(SkipTrieConfig::for_universe_bits(32));
    // Sparse anchors so queries always have a well-known lower bound.
    for k in (0u64..1 << 20).step_by(1 << 10) {
        trie.insert(k << 10, k);
    }

    let burst_running = AtomicBool::new(true);
    let writers = 3usize;
    let burst_len = 200_000u64;

    metrics::set_enabled(true);
    let during = std::thread::scope(|scope| {
        for w in 0..writers {
            let trie = &trie;
            scope.spawn(move || {
                // Successive keys in a dedicated region — the adversarial pattern for
                // prev-pointer gaps from Section 1.
                let base = ((w as u64 + 1) << 24) % ((1u64 << 32) - 1);
                for i in 0..burst_len {
                    trie.insert((base + i) % ((1 << 32) - 1), i);
                }
            });
        }

        let query = |n: u64, seed: u64| -> (f64, f64, f64) {
            let before = metrics::snapshot();
            let mut state = seed;
            let mut checked = 0u64;
            for _ in 0..n {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let key = state % ((1 << 32) - 1);
                if let Some((pred, _)) = trie.predecessor(key) {
                    assert!(pred <= key, "predecessor may never exceed the query key");
                    checked += 1;
                }
            }
            assert!(checked > 0);
            let d = metrics::snapshot().since(&before);
            (
                d.get(Counter::PrevPointerFollowed) as f64 / n as f64,
                d.get(Counter::BackPointerFollowed) as f64 / n as f64,
                d.get(Counter::MarkedNodeSkipped) as f64 / n as f64,
            )
        };

        let during = query(100_000, 0xF16);
        burst_running.store(false, Ordering::Relaxed);
        // The scope joins the writers here; afterwards every fixPrev has completed.
        during
    });
    let after_stats = {
        let mut state = 0xAF7E2u64;
        let before = metrics::snapshot();
        for _ in 0..100_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            trie.predecessor(state % ((1 << 32) - 1));
        }
        let d = metrics::snapshot().since(&before);
        (
            d.get(Counter::PrevPointerFollowed) as f64 / 100_000.0,
            d.get(Counter::BackPointerFollowed) as f64 / 100_000.0,
            d.get(Counter::MarkedNodeSkipped) as f64 / 100_000.0,
        )
    };
    metrics::set_enabled(false);

    println!("== Figure 2: transient top-level gaps ==");
    println!("phase             prev_hops/query  back_hops/query  marked_skips/query");
    println!(
        "during burst      {:>15.3}  {:>15.3}  {:>17.3}",
        during.0, during.1, during.2
    );
    println!(
        "after quiescence  {:>15.3}  {:>15.3}  {:>17.3}",
        after_stats.0, after_stats.1, after_stats.2
    );
    println!();
    println!(
        "While inserts of successive keys are in flight, queries pay a few extra guide hops \
         (the Figure 2 gap, charged to overlapping-interval contention in the paper's analysis); \
         once the inserts complete, fixPrev has repaired every prev pointer and the extra cost \
         disappears — the damage is transient, and every answer stayed correct throughout."
    );
}
