//! Concurrent correctness of the sharded SkipTrie forest: point-op agreement with
//! deterministic per-worker models, cross-shard range scans and ordered pops under
//! concurrency, and batched writers racing cross-shard scanning readers.
//!
//! The forest's contract (see `skiptrie::ShardedSkipTrie`): point operations are
//! linearizable (they touch exactly one shard); cross-shard compositions — stitched
//! scans, `pop_first`/`pop_last` — are weakly consistent, with the cursor guarantee
//! that every key present in range for the whole scan is yielded exactly once, in
//! order, and the drain guarantee that concurrent pops never duplicate or lose a
//! key. These tests pin those properties from many threads, always with key
//! populations and scan windows that *straddle shard boundaries*, since the
//! boundaries are exactly what sharding could get wrong.
//!
//! All orchestration goes through `skiptrie_workloads::harness` (barrier start,
//! deterministic per-worker RNGs, `SKIPTRIE_SCALE` sizing).

use std::collections::{BTreeSet, HashSet};
use std::sync::{Arc, Mutex};

use skiptrie_suite::skiptrie::{ShardedSkipTrie, ShardedSkipTrieConfig};
use skiptrie_suite::workloads::harness::{scaled, worker_rng, Workload};

const UNIVERSE_BITS: u32 = 32;
const MAX: u64 = 1 << UNIVERSE_BITS;
/// 8 shards over 2^32 keys: shard slices of 2^29.
const SHARDS: usize = 8;
const SHARD_SPAN: u64 = MAX / SHARDS as u64;

fn forest() -> ShardedSkipTrie<u64> {
    ShardedSkipTrie::new(
        ShardedSkipTrieConfig::for_universe_bits(UNIVERSE_BITS).with_shards(SHARDS),
    )
}

/// Every worker churns its own congruence class of keys (disjoint across workers,
/// spanning every shard); replaying each worker's deterministic stream sequentially
/// must produce exactly the forest's final contents. Catches routing errors (a key
/// in the wrong shard shows up as both a spurious miss and a spurious survivor) and
/// lost updates across the whole surface.
#[test]
fn concurrent_point_ops_match_replayed_models() {
    let f = Arc::new(forest());
    let writers = 4usize;
    let iters = scaled(8_000);
    let seed = 0x5a4d;
    Workload::new(seed)
        .workers(writers, |mut ctx| {
            for _ in 0..iters {
                // Key ≡ ctx.index (mod writers): disjoint per worker, all shards.
                let key =
                    (ctx.rng.next() % MAX) / writers as u64 * writers as u64 + ctx.index as u64;
                let key = key % MAX;
                if ctx.rng.next().is_multiple_of(2) {
                    f.insert(key, key ^ 0xffff);
                } else {
                    f.remove(key);
                }
            }
        })
        .run();
    // Sequential replay of each worker's stream gives the expected final set.
    let mut expected = BTreeSet::new();
    for index in 0..writers {
        let mut rng = worker_rng(seed, index);
        let mut mine = BTreeSet::new();
        for _ in 0..iters {
            let key = (rng.next() % MAX) / writers as u64 * writers as u64 + index as u64;
            let key = key % MAX;
            if rng.next().is_multiple_of(2) {
                mine.insert(key);
            } else {
                mine.remove(&key);
            }
        }
        expected.extend(mine);
    }
    let got: Vec<u64> = f.keys();
    let want: Vec<u64> = expected.into_iter().collect();
    assert_eq!(got.len(), want.len());
    assert_eq!(got, want, "forest contents diverge from replayed models");
    assert_eq!(f.len(), got.len());
    for &k in got.iter().take(64) {
        assert_eq!(f.get(k), Some(k ^ 0xffff));
    }
    assert!(f.check_traversal_integrity() >= got.len());
}

/// Cross-shard scans under churn: stable keys (never written after prefill, placed
/// so that every scan window straddles a shard boundary) are seen exactly once, in
/// strictly increasing order; churned keys may appear but only in-window and only
/// from the churn population.
#[test]
fn stitched_scans_see_stable_keys_exactly_once_across_boundaries() {
    const STRIDE: u64 = 1 << 20;
    let f = Arc::new(forest());
    // Stable keys: multiples of STRIDE (even); churn keys: odd.
    for k in (0..MAX).step_by(STRIDE as usize) {
        f.insert(k, k);
    }
    let iters = scaled(20_000);
    let scans = scaled(200);
    let violations = Arc::new(Mutex::new(Vec::<String>::new()));
    Workload::new(0x5ca2)
        .workers(3, |mut ctx| {
            for _ in 0..iters {
                let key = (ctx.rng.next() % MAX) | 1;
                if ctx.rng.next().is_multiple_of(2) {
                    f.insert(key, key);
                } else {
                    f.remove(key);
                }
            }
        })
        .workers(3, |mut ctx| {
            let violations = Arc::clone(&violations);
            for _ in 0..scans {
                // Center each window on a shard boundary so the stitch itself is
                // what gets exercised.
                let boundary = (1 + ctx.rng.next() % (SHARDS as u64 - 1)) * SHARD_SPAN;
                let half = ctx.rng.next() % (4 * STRIDE);
                let lo = boundary.saturating_sub(half);
                let hi = (boundary + half).min(MAX - 1);
                let got: Vec<u64> = f.range(lo..=hi).map(|(k, _)| k).collect();
                if !got.windows(2).all(|w| w[0] < w[1]) {
                    violations
                        .lock()
                        .unwrap()
                        .push(format!("scan {lo}..={hi} not strictly increasing"));
                    continue;
                }
                let mut stable_seen = Vec::new();
                for &k in &got {
                    if !(lo..=hi).contains(&k) {
                        violations
                            .lock()
                            .unwrap()
                            .push(format!("{k} outside window {lo}..={hi}"));
                    }
                    if k.is_multiple_of(STRIDE) {
                        stable_seen.push(k);
                    } else if !k.is_multiple_of(2) {
                        // Churned key: plausible.
                    } else {
                        violations
                            .lock()
                            .unwrap()
                            .push(format!("{k} is neither stable nor churn population"));
                    }
                }
                let expected: Vec<u64> = (lo..=hi)
                    .step_by(STRIDE as usize)
                    .map(|k| k.next_multiple_of(STRIDE))
                    .filter(|k| (lo..=hi).contains(k))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                if stable_seen != expected {
                    violations.lock().unwrap().push(format!(
                        "stable keys in {lo}..={hi}: saw {stable_seen:?}, want {expected:?}"
                    ));
                }
            }
        })
        .run();
    let violations = violations.lock().unwrap();
    assert!(violations.is_empty(), "{violations:?}");
    assert!(f.check_traversal_integrity() > 0);
}

/// Concurrent `pop_first` drain with no concurrent inserts: every prefilled key is
/// popped exactly once (no loss, no duplication), and — because shard-local pops
/// linearize and shards drain in key order — every thread's own pop sequence is
/// strictly increasing. The mirrored `pop_last` drain runs in the same test.
#[test]
fn concurrent_cross_shard_pops_are_exactly_once() {
    for from_front in [true, false] {
        let f = Arc::new(forest());
        let m = scaled(30_000);
        // Fibonacci-hash spread: keys land in every shard.
        let keys: BTreeSet<u64> = (0..m as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % MAX)
            .collect();
        for &k in &keys {
            f.insert(k, k);
        }
        let total = keys.len();
        let popped = Arc::new(Mutex::new(Vec::<Vec<u64>>::new()));
        Workload::new(0x90b5)
            .workers(4, |_ctx| {
                let mut mine = Vec::new();
                loop {
                    let next = if from_front {
                        f.pop_first()
                    } else {
                        f.pop_last()
                    };
                    match next {
                        Some((k, v)) => {
                            assert_eq!(v, k, "popped value corrupted");
                            mine.push(k);
                        }
                        None => break,
                    }
                }
                popped.lock().unwrap().push(mine);
            })
            .run();
        let per_thread = popped.lock().unwrap().clone();
        let mut all: Vec<u64> = Vec::new();
        for seq in &per_thread {
            assert!(
                seq.windows(2)
                    .all(|w| if from_front { w[0] < w[1] } else { w[0] > w[1] }),
                "a thread's quiescent-drain pops must be monotone"
            );
            all.extend_from_slice(seq);
        }
        assert_eq!(all.len(), total, "pops lost or duplicated (count)");
        let unique: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(unique.len(), total, "duplicate pops");
        assert_eq!(
            unique,
            keys.iter().copied().collect::<HashSet<u64>>(),
            "popped key set diverges from prefill"
        );
        assert!(f.is_empty());
        assert_eq!(f.pop_first(), None);
        assert_eq!(f.pop_last(), None);
    }
}

/// The satellite stress mix: batched writers (insert_batch / remove_batch of churn
/// keys) race cross-shard scanning readers and a batched-get prober of the stable
/// population. Checks the scan contract for stable keys, that batch return counts
/// stay coherent with a per-worker model, and full traversal integrity at the end.
#[test]
fn batched_writers_with_cross_shard_scanning_readers() {
    const STRIDE: u64 = 1 << 21;
    let f = Arc::new(forest());
    for k in (0..MAX).step_by(STRIDE as usize) {
        f.insert(k, k); // stable population (multiples of STRIDE)
    }
    let rounds = scaled(150);
    let scans = scaled(150);
    Workload::new(0xba7c)
        // Batched writers: each owns a disjoint odd congruence class (mod 8) so
        // batch outcomes are deterministic per worker; batches span all shards.
        .workers(2, |mut ctx| {
            let class = 1 + 2 * ctx.index as u64; // 1 or 3 (odd, disjoint)
            let mut alive: BTreeSet<u64> = BTreeSet::new();
            for _ in 0..rounds {
                let batch: Vec<(u64, u64)> = (0..64)
                    .map(|_| {
                        let k = (ctx.rng.next() % MAX) & !7 | class;
                        (k, k)
                    })
                    .collect();
                let expect_new = {
                    let mut fresh = 0usize;
                    for &(k, _) in &batch {
                        if alive.insert(k) {
                            fresh += 1;
                        }
                    }
                    fresh
                };
                assert_eq!(
                    f.insert_batch(&batch),
                    expect_new,
                    "insert_batch count diverges from this worker's model"
                );
                let victims: Vec<u64> = batch.iter().map(|&(k, _)| k).step_by(2).collect();
                let expect_gone = victims.iter().filter(|k| alive.remove(*k)).count();
                assert_eq!(
                    f.remove_batch(&victims),
                    expect_gone,
                    "remove_batch count diverges from this worker's model"
                );
            }
            // Drain this worker's survivors so the final stable-only check is exact.
            let survivors: Vec<u64> = alive.into_iter().collect();
            assert_eq!(f.remove_batch(&survivors), survivors.len());
        })
        // Cross-shard scanning readers (windows straddle boundaries).
        .workers(2, |mut ctx| {
            for _ in 0..scans {
                let boundary = (1 + ctx.rng.next() % (SHARDS as u64 - 1)) * SHARD_SPAN;
                let half = ctx.rng.next() % (4 * STRIDE);
                let lo = boundary.saturating_sub(half);
                let hi = (boundary + half).min(MAX - 1);
                let got: Vec<u64> = f.range(lo..=hi).map(|(k, _)| k).collect();
                assert!(got.windows(2).all(|w| w[0] < w[1]), "scan out of order");
                let stable: Vec<u64> = got
                    .iter()
                    .copied()
                    .filter(|k| k.is_multiple_of(STRIDE))
                    .collect();
                let want: Vec<u64> = (lo..=hi)
                    .step_by(STRIDE as usize)
                    .map(|k| k.next_multiple_of(STRIDE))
                    .filter(|k| (lo..=hi).contains(k))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                assert_eq!(
                    stable, want,
                    "stable keys missed or duplicated in {lo}..={hi}"
                );
            }
        })
        // Batched readers probing the stable population.
        .worker(|mut ctx| {
            for _ in 0..scans {
                let keys: Vec<u64> = (0..32)
                    .map(|_| (ctx.rng.next() % MAX) / STRIDE * STRIDE)
                    .collect();
                let got = f.get_batch(&keys);
                for (k, v) in keys.iter().zip(got) {
                    assert_eq!(v, Some(*k), "stable key {k} lost");
                }
            }
        })
        .run();
    // Writers drained their own keys: only the stable population survives.
    assert_eq!(f.len(), (MAX / STRIDE) as usize);
    assert!(f.keys().iter().all(|k| k.is_multiple_of(STRIDE)));
    assert!(f.check_traversal_integrity() >= f.len());
}
