//! Smoke test for the umbrella crate: every re-export under `skiptrie_suite` is
//! touched end-to-end — the DCSS primitive, the split-ordered map, the truncated
//! skiplist, the SkipTrie itself (driven by a small concurrent insert/predecessor
//! workload), a baseline cross-check, the metrics recorder, and the workload RNG.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use skiptrie_suite::atomics::dcss::{dcss, DcssError, DcssMode};
use skiptrie_suite::baselines::LockedBTreeMap;
use skiptrie_suite::metrics::{self, Counter};
use skiptrie_suite::skiplist::{SkipList, SkipListConfig};
use skiptrie_suite::skiptrie::{SkipTrie, SkipTrieConfig};
use skiptrie_suite::splitorder::SplitOrderedMap;
use skiptrie_suite::workloads::harness::{scaled, Workload};

#[test]
fn atomics_reexport_dcss_roundtrip() {
    let target = AtomicU64::new(8);
    let guard_word = AtomicU64::new(0);
    let epoch_guard = skiptrie_suite::atomics::pin();
    // SAFETY: `guard_word` lives on this frame and outlives every descriptor use.
    unsafe {
        dcss(
            &target,
            8,
            16,
            &guard_word,
            0,
            DcssMode::Descriptor,
            &epoch_guard,
        )
        .unwrap();
    }
    assert_eq!(target.load(Ordering::SeqCst), 16);
    guard_word.store(1, Ordering::SeqCst);
    let err = unsafe {
        dcss(
            &target,
            16,
            24,
            &guard_word,
            0,
            DcssMode::Descriptor,
            &epoch_guard,
        )
    };
    assert_eq!(err, Err(DcssError::GuardMismatch));
}

#[test]
fn splitorder_reexport_basic_map() {
    let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
    for k in 0..500u64 {
        assert!(map.insert(k, k * 2));
    }
    assert_eq!(map.get(&123), Some(246));
    assert!(map.remove_if(&123, |v| *v == 246));
    assert_eq!(map.get(&123), None);
    assert_eq!(map.len(), 499);
}

#[test]
fn skiplist_reexport_ordered_ops() {
    let list: SkipList<u64> = SkipList::new(SkipListConfig::for_universe_bits(16));
    for k in (0..1_000u64).step_by(3) {
        assert!(list.insert(k, k));
    }
    assert_eq!(list.predecessor(500), Some((498, 498)));
    assert_eq!(list.successor(500), Some((501, 501)));
}

/// The headline path: a small concurrent insert/predecessor workload through the
/// umbrella `skiptrie` re-export, with metrics recording on, cross-checked against
/// the locked-BTreeMap baseline at quiescence.
#[test]
fn concurrent_insert_predecessor_workload() {
    metrics::set_enabled(true);
    let before = metrics::snapshot();

    let universe_bits = 20;
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(
        universe_bits,
    )));
    let oracle: Arc<LockedBTreeMap<u64>> = Arc::new(LockedBTreeMap::new());
    let ops_per_thread = scaled(8_000) as u64;
    let mask = (1u64 << universe_bits) - 1;

    Workload::new(0xace0_ba5e)
        .workers(4, |mut ctx| {
            // Disjoint key slices so the oracle needs no cross-thread ordering.
            let t = ctx.index as u64;
            for i in 0..ops_per_thread {
                let key = ((ctx.rng.next() & mask) & !0x3) | t;
                match i % 4 {
                    0 | 1 => {
                        let a = trie.insert(key, key + 1);
                        let b = oracle.insert(key, key + 1);
                        assert_eq!(a, b, "insert winners agree for disjoint slices");
                    }
                    2 => {
                        assert_eq!(trie.remove(key), oracle.remove(key));
                    }
                    _ => {
                        // Concurrent predecessor: can't compare against the racing
                        // oracle, but the answer must respect the query bound.
                        if let Some((k, v)) = trie.predecessor(key) {
                            assert!(k <= key);
                            assert_eq!(v, k + 1);
                        }
                    }
                }
            }
        })
        .run();

    // Quiescent agreement with the baseline, via the umbrella re-exports only.
    let snapshot = trie.to_vec();
    assert_eq!(snapshot.len(), trie.len());
    assert_eq!(trie.len(), oracle.len());
    for &(k, v) in &snapshot {
        assert_eq!(oracle.predecessor(k), Some((k, v)));
        assert_eq!(trie.predecessor(k), Some((k, v)));
    }

    // The workload must have actually exercised the lock-free machinery.
    let delta = metrics::snapshot().since(&before);
    assert!(delta.get(Counter::PtrRead) > 0, "step counting is live");
}
