//! Concurrent correctness of the range-scan/cursor subsystem and the combined
//! extract-min/max operations, validated against a model under churn.
//!
//! The cursor contract (see `skiptrie-skiplist`'s iterator docs) is *weak
//! consistency*: every key present for the whole scan is yielded exactly once, in
//! increasing order; concurrently churned keys may or may not appear. These tests
//! pin that contract from many threads: scanners sweep windows while writers churn a
//! disjoint key population, so every *stable* key inside a window must be seen
//! exactly once and in order, while every yielded key must at least be plausible
//! (inside the window, and from the known key population).
//!
//! All orchestration goes through `skiptrie_workloads::harness` (barrier start,
//! deterministic per-worker RNGs, `SKIPTRIE_SCALE` sizing).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use skiptrie_suite::skiptrie::{SkipTrie, SkipTrieConfig};
use skiptrie_suite::workloads::harness::{scaled, Workload};

/// Scanners walking windows under churn: stable keys (multiples of `STRIDE`, never
/// written after prefill) are seen exactly once each and in strictly increasing
/// order; churned keys may appear but only inside the window and only from the churn
/// key population (odd keys).
#[test]
fn range_scans_see_stable_keys_exactly_once_in_order_under_churn() {
    const STRIDE: u64 = 1_024;
    const MAX: u64 = 1 << 22;
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(32)));
    for k in (0..MAX).step_by(STRIDE as usize) {
        trie.insert(k, k);
    }
    let iters = scaled(30_000);
    let scans = scaled(300);
    Workload::new(0x5ca9)
        // Writers churn odd keys only (stable multiples of 1024 are even).
        .workers(4, |mut ctx| {
            for _ in 0..iters {
                let key = (ctx.rng.next() % MAX) | 1;
                if ctx.rng.next().is_multiple_of(2) {
                    trie.insert(key, key);
                } else {
                    trie.remove(key);
                }
            }
        })
        // Scanners sweep random windows and check the weak-consistency contract.
        .workers(3, |mut ctx| {
            for _ in 0..scans {
                let lo = ctx.rng.next() % MAX;
                let hi = (lo + ctx.rng.next() % (64 * STRIDE)).min(MAX - 1);
                let got: Vec<u64> = trie.range(lo..=hi).map(|(k, _)| k).collect();
                assert!(
                    got.windows(2).all(|w| w[0] < w[1]),
                    "scan of {lo}..={hi} not strictly increasing: {got:?}"
                );
                let mut stable_seen = 0usize;
                for &k in &got {
                    assert!((lo..=hi).contains(&k), "{k} outside window {lo}..={hi}");
                    if k.is_multiple_of(STRIDE) {
                        stable_seen += 1;
                    } else {
                        assert!(!k.is_multiple_of(2), "yielded key {k} was never inserted");
                    }
                }
                let first_stable = lo.div_ceil(STRIDE) * STRIDE;
                let stable_expected = if first_stable > hi {
                    0
                } else {
                    ((hi - first_stable) / STRIDE + 1) as usize
                };
                assert_eq!(
                    stable_seen, stable_expected,
                    "scan of {lo}..={hi} missed or duplicated stable keys: {got:?}"
                );
            }
        })
        .run();
    // Quiescent cross-check: a full scan equals the snapshot, and counting agrees.
    let scan: Vec<(u64, u64)> = trie.range(..).collect();
    assert_eq!(scan, trie.to_vec());
    assert_eq!(trie.count_range(..), trie.len());
}

/// `pop_first`/`pop_last` under concurrent production: every produced key is
/// extracted exactly once (no loss, no double delivery), even with several
/// extractors racing at both ends.
#[test]
fn pops_extract_each_key_exactly_once_under_concurrent_inserts() {
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(32)));
    let producers = 4usize;
    let per_producer = scaled(10_000) as u64;
    let produced = Arc::new(AtomicU64::new(0));
    let producers_done = Arc::new(AtomicUsize::new(0));
    let extracted: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    Workload::new(0x90b)
        .workers(producers, |mut ctx| {
            // Disjoint keys per producer via the low bits: key % producers == index.
            for i in 0..per_producer {
                let raw = ctx.rng.next() % (1 << 30);
                let key = (raw << 2) | ctx.index as u64;
                if trie.insert(key, i) {
                    produced.fetch_add(1, Ordering::Relaxed);
                }
            }
            producers_done.fetch_add(1, Ordering::Release);
        })
        .workers(2, |ctx| {
            let mut local = Vec::new();
            loop {
                let popped = if ctx.index.is_multiple_of(2) {
                    trie.pop_first()
                } else {
                    trie.pop_last()
                };
                match popped {
                    Some((k, _)) => local.push(k),
                    None => {
                        if producers_done.load(Ordering::Acquire) == producers && trie.is_empty() {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
            extracted.lock().unwrap().extend(local);
        })
        .run();
    let all = extracted.lock().unwrap();
    let unique: HashSet<u64> = all.iter().copied().collect();
    assert_eq!(unique.len(), all.len(), "a key was extracted twice");
    assert_eq!(
        all.len() as u64,
        produced.load(Ordering::Relaxed),
        "extracted exactly what was produced"
    );
    assert!(trie.is_empty(), "nothing left behind");
}

/// Quiescent pops agree key-for-key with a sorted model, from both ends at once.
#[test]
fn quiescent_pops_match_sorted_model() {
    let trie: SkipTrie<u64> = SkipTrie::new(SkipTrieConfig::for_universe_bits(24));
    let n = scaled(5_000) as u64;
    let mut model: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % (1 << 24)).collect();
    model.sort_unstable();
    model.dedup();
    for &k in &model {
        trie.insert(k, k);
    }
    let mut lo = 0usize;
    let mut hi = model.len();
    while lo < hi {
        if (hi - lo).is_multiple_of(2) {
            assert_eq!(trie.pop_first(), Some((model[lo], model[lo])));
            lo += 1;
        } else {
            assert_eq!(trie.pop_last(), Some((model[hi - 1], model[hi - 1])));
            hi -= 1;
        }
    }
    assert_eq!(trie.pop_first(), None);
    assert_eq!(trie.pop_last(), None);
    assert!(trie.is_empty());
}
