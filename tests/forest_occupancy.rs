//! Regression test for the ROADMAP-recorded drained-forest pop bug: `pop_first` /
//! `pop_last` over a mostly-empty forest used to re-probe **every** empty shard on
//! **every** pop — `O(S)` real searches (each `pop_last` probe running a full x-fast
//! `LowestAncestor` descent) to extract one key. The fix skips shards whose relaxed
//! occupancy counter reads 0 and verifies the skip is real by counting actual probes
//! through the `shard_pop_probe` / `shard_pop_skip` metrics counters.
//!
//! This file deliberately holds **only this test**: the counters are process-wide,
//! so it runs alone in its own integration-test binary — any concurrently running
//! test that popped a forest would pollute the probe counts.

use skiptrie_suite::metrics::{self, Counter};
use skiptrie_suite::skiptrie::{ShardedSkipTrie, ShardedSkipTrieConfig};
use skiptrie_suite::workloads::harness::scaled;

#[test]
fn drained_forest_pops_probe_only_occupied_shards() {
    const SHARDS: usize = 16;
    const UNIVERSE_BITS: u32 = 32;
    const SHARD_SPAN: u64 = (1 << UNIVERSE_BITS) / SHARDS as u64;

    // One-hot occupancy: every key lives in shard 9 of 16, so 9 empty shards sit in
    // front of the hot one on the pop_first path (6 on the pop_last path).
    let f: ShardedSkipTrie<u64> = ShardedSkipTrie::new(
        ShardedSkipTrieConfig::for_universe_bits(UNIVERSE_BITS).with_shards(SHARDS),
    );
    let n = scaled(1_000) as u64;
    let base = 9 * SHARD_SPAN;
    for k in 0..n {
        assert!(f.insert(base + k, k));
    }

    let ((), delta) = metrics::measure(|| {
        // Drain from the front, then re-fill and drain from the back, then ask the
        // empty forest once more from each end (the authoritative fallback pass).
        for k in 0..n {
            assert_eq!(f.pop_first(), Some((base + k, k)), "ordered front drain");
        }
        assert_eq!(f.pop_first(), None);
        for k in 0..n {
            assert!(f.insert(base + k, k));
        }
        for k in (0..n).rev() {
            assert_eq!(f.pop_last(), Some((base + k, k)), "ordered back drain");
        }
        assert_eq!(f.pop_last(), None);
    });

    let probes = delta.get(Counter::ShardPopProbe);
    let skips = delta.get(Counter::ShardPopSkip);
    let pops = 2 * n;
    // One real probe per successful pop, plus 2 * SHARDS fallback probes for the
    // two authoritative None answers (and a little slack for the final pop of each
    // drain, which may fall through to the fallback pass after the hot shard's
    // counter hits 0). Before the fix this was ~10 probes per pop_first and ~7 per
    // pop_last — `pops * 8`-ish in total.
    let ceiling = pops + 4 * SHARDS as u64;
    // An upper bound on a process-wide counter is inflation-UNsafe; it is sound
    // only because this test is alone in its binary (see the module docs), so no
    // concurrent test can add probes inside the measurement window.
    assert!(
        probes <= ceiling,
        "empty shards must not be probed per pop: {probes} probes for {pops} pops \
         (ceiling {ceiling})"
    );
    // The empty shards in front of the hot one are skipped on every pop: at least
    // 9 skips per pop_first and 6 per pop_last.
    assert!(
        skips >= n * 9 + n * 6,
        "occupancy skips must happen: {skips} skips for {pops} pops"
    );
    assert!(f.is_empty());
}
