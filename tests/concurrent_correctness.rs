//! Cross-crate integration tests: concurrent correctness of the SkipTrie under
//! adversarial interleavings.
//!
//! These tests exercise the full composition (truncated skiplist + doubly-linked top
//! level + split-ordered hash table + x-fast trie) from many threads and check
//! linearizability-observable invariants: per-key insert/remove winners are unique,
//! predecessor answers are never wrong with respect to keys that are stably present,
//! and the structure converges to exactly the expected contents at quiescence.
//!
//! All thread orchestration goes through [`skiptrie_suite::workloads::harness`]:
//! workers start behind a shared barrier (so they contend from the first operation),
//! draw from deterministic per-worker RNGs, and size their iteration counts from
//! `SKIPTRIE_SCALE`.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use skiptrie_suite::skiptrie::{DcssMode, SkipTrie, SkipTrieConfig};
use skiptrie_suite::workloads::harness::{scaled, worker_rng, Workload};

/// Each key is inserted by exactly one thread even when every thread races to insert
/// the same key set (the linearization point of insert is unique).
#[test]
fn racing_inserts_have_unique_winners() {
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(24)));
    let threads = 8usize;
    let keys = scaled(4_000) as u64;
    let wins = Arc::new(AtomicU64::new(0));
    Workload::new(0)
        .workers(threads, |ctx| {
            for k in 0..keys {
                if trie.insert(k, ctx.index as u64) {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
        .run();
    assert_eq!(wins.load(Ordering::Relaxed), keys);
    assert_eq!(trie.len(), keys as usize);
    for k in 0..keys {
        assert!(trie.contains(k), "key {k} must be present");
    }
}

/// Each present key is removed by exactly one thread when every thread races to
/// remove the same key set.
#[test]
fn racing_removes_have_unique_winners() {
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(24)));
    let keys = scaled(4_000) as u64;
    for k in 0..keys {
        trie.insert(k, k);
    }
    let removed = Arc::new(AtomicU64::new(0));
    Workload::new(0)
        .workers(8, |_ctx| {
            for k in 0..keys {
                if trie.remove(k).is_some() {
                    removed.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
        .run();
    assert_eq!(removed.load(Ordering::Relaxed), keys);
    assert!(trie.is_empty());
    assert_eq!(trie.keys(), Vec::<u64>::new());
}

/// Disjoint per-thread key ranges: after the run the contents are exactly the union of
/// what each thread decided to leave in place (deterministic per-thread streams —
/// [`worker_rng`] lets the sequential model replay exactly what each worker will do).
#[test]
fn disjoint_churn_converges_to_expected_contents() {
    // 64-bit universe: per-thread key ranges are disjoint via the top 32 bits.
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(64)));
    let threads = 8usize;
    let per_thread_ops = scaled(20_000);
    let seed = 0;
    // Precompute each thread's final state with the same deterministic stream the
    // worker will draw from its harness RNG.
    let mut expected = BTreeSet::new();
    for t in 0..threads {
        let mut rng = worker_rng(seed, t);
        let mut local = BTreeSet::new();
        for _ in 0..per_thread_ops {
            let key = ((t as u64) << 32) | (rng.next() % 5_000);
            if rng.next().is_multiple_of(2) {
                local.insert(key);
            } else {
                local.remove(&key);
            }
        }
        expected.extend(local);
    }
    Workload::new(seed)
        .workers(threads, |mut ctx| {
            for _ in 0..per_thread_ops {
                let key = ((ctx.index as u64) << 32) | (ctx.rng.next() % 5_000);
                if ctx.rng.next().is_multiple_of(2) {
                    trie.insert(key, key);
                } else {
                    trie.remove(key);
                }
            }
        })
        .run();
    let final_keys: Vec<u64> = trie.keys();
    let expected_keys: Vec<u64> = expected.into_iter().collect();
    assert_eq!(final_keys, expected_keys);
    assert_eq!(trie.len(), final_keys.len());
}

/// Readers running against writers never observe an impossible answer: a predecessor
/// result must be `<= query`, must be a key that was inserted at some point, and must
/// never skip over a *stable* key (one inserted before the readers started and never
/// removed).
#[test]
fn predecessor_queries_respect_stable_keys_under_churn() {
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(32)));
    // Stable keys at multiples of 1000 (never touched by writers).
    let stable_stride = 1_000u64;
    let stable_max = 2_000_000u64;
    for k in (0..stable_max).step_by(stable_stride as usize) {
        trie.insert(k, k);
    }
    let iters = scaled(100_000);
    Workload::new(0xbad)
        // Writers churn keys that are NOT multiples of 1000.
        .workers(4, |mut ctx| {
            for _ in 0..iters {
                let mut key = ctx.rng.next() % stable_max;
                if key.is_multiple_of(stable_stride) {
                    key += 1;
                }
                if ctx.rng.next().is_multiple_of(2) {
                    trie.insert(key, key);
                } else {
                    trie.remove(key);
                }
            }
        })
        // Readers check the stable-key floor property.
        .workers(3, |mut ctx| {
            for _ in 0..iters {
                let q = ctx.rng.next() % stable_max;
                let floor_stable = (q / stable_stride) * stable_stride;
                match trie.predecessor(q) {
                    Some((k, _)) => {
                        assert!(k <= q, "predecessor {k} exceeds query {q}");
                        assert!(
                            k >= floor_stable,
                            "predecessor {k} skipped stable key {floor_stable} (query {q})"
                        );
                    }
                    None => panic!("a stable key <= {q} always exists"),
                }
            }
        })
        .run();
}

/// The CAS-fallback mode (the paper's "it is permissible to fall back to CAS") stays
/// correct under the same concurrent churn.
#[test]
fn cas_fallback_mode_is_correct_under_churn() {
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(
        SkipTrieConfig::for_universe_bits(24).with_mode(DcssMode::CasOnly),
    ));
    let iters = scaled(30_000);
    Workload::new(100)
        .workers(6, |mut ctx| {
            for _ in 0..iters {
                let key = ((ctx.index as u64) << 20) | (ctx.rng.next() % 3_000);
                match ctx.rng.next() % 3 {
                    0 => {
                        trie.insert(key, key);
                    }
                    1 => {
                        trie.remove(key);
                    }
                    _ => {
                        if let Some((k, _)) = trie.predecessor(key) {
                            assert!(k <= key);
                        }
                    }
                }
            }
        })
        .run();
    // Quiescent sanity: snapshot is sorted and duplicate-free.
    let keys = trie.keys();
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(trie.len(), keys.len());
}
