//! Cross-crate integration tests: concurrent correctness of the SkipTrie under
//! adversarial interleavings.
//!
//! These tests exercise the full composition (truncated skiplist + doubly-linked top
//! level + split-ordered hash table + x-fast trie) from many threads and check
//! linearizability-observable invariants: per-key insert/remove winners are unique,
//! predecessor answers are never wrong with respect to keys that are stably present,
//! and the structure converges to exactly the expected contents at quiescence.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use skiptrie_suite::skiptrie::{DcssMode, SkipTrie, SkipTrieConfig};
use skiptrie_suite::workloads::SplitMix64;

/// Each key is inserted by exactly one thread even when every thread races to insert
/// the same key set (the linearization point of insert is unique).
#[test]
fn racing_inserts_have_unique_winners() {
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(24)));
    let threads = 8u64;
    let keys = 4_000u64;
    let wins = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let trie = Arc::clone(&trie);
            let wins = Arc::clone(&wins);
            scope.spawn(move || {
                for k in 0..keys {
                    if trie.insert(k, t) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(wins.load(Ordering::Relaxed), keys);
    assert_eq!(trie.len(), keys as usize);
    for k in 0..keys {
        assert!(trie.contains(k), "key {k} must be present");
    }
}

/// Each present key is removed by exactly one thread when every thread races to
/// remove the same key set.
#[test]
fn racing_removes_have_unique_winners() {
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(24)));
    let keys = 4_000u64;
    for k in 0..keys {
        trie.insert(k, k);
    }
    let removed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let trie = Arc::clone(&trie);
            let removed = Arc::clone(&removed);
            scope.spawn(move || {
                for k in 0..keys {
                    if trie.remove(k).is_some() {
                        removed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(removed.load(Ordering::Relaxed), keys);
    assert!(trie.is_empty());
    assert_eq!(trie.keys(), Vec::<u64>::new());
}

/// Disjoint per-thread key ranges: after the run the contents are exactly the union of
/// what each thread decided to leave in place (deterministic per-thread streams).
#[test]
fn disjoint_churn_converges_to_expected_contents() {
    // 64-bit universe: per-thread key ranges are disjoint via the top 32 bits.
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(64)));
    let threads = 8u64;
    let per_thread_ops = 20_000u64;
    let mut expected = BTreeSet::new();
    // Precompute each thread's final state with the same deterministic stream the
    // thread will execute.
    for t in 0..threads {
        let mut rng = SplitMix64::new(t + 1);
        let mut local = BTreeSet::new();
        for _ in 0..per_thread_ops {
            let key = (t << 32) | (rng.next() % 5_000);
            if rng.next().is_multiple_of(2) {
                local.insert(key);
            } else {
                local.remove(&key);
            }
        }
        expected.extend(local);
    }
    std::thread::scope(|scope| {
        for t in 0..threads {
            let trie = Arc::clone(&trie);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(t + 1);
                for _ in 0..per_thread_ops {
                    let key = (t << 32) | (rng.next() % 5_000);
                    if rng.next().is_multiple_of(2) {
                        trie.insert(key, key);
                    } else {
                        trie.remove(key);
                    }
                }
            });
        }
    });
    let final_keys: Vec<u64> = trie.keys();
    let expected_keys: Vec<u64> = expected.into_iter().collect();
    assert_eq!(final_keys, expected_keys);
    assert_eq!(trie.len(), final_keys.len());
}

/// Readers running against writers never observe an impossible answer: a predecessor
/// result must be `<= query`, must be a key that was inserted at some point, and must
/// never skip over a *stable* key (one inserted before the readers started and never
/// removed).
#[test]
fn predecessor_queries_respect_stable_keys_under_churn() {
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(32)));
    // Stable keys at multiples of 1000 (never touched by writers).
    let stable_stride = 1_000u64;
    let stable_max = 2_000_000u64;
    for k in (0..stable_max).step_by(stable_stride as usize) {
        trie.insert(k, k);
    }
    std::thread::scope(|scope| {
        // Writers churn keys that are NOT multiples of 1000.
        for t in 0..4u64 {
            let trie = Arc::clone(&trie);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(0xbad + t);
                for _ in 0..100_000 {
                    let mut key = rng.next() % stable_max;
                    if key.is_multiple_of(stable_stride) {
                        key += 1;
                    }
                    if rng.next().is_multiple_of(2) {
                        trie.insert(key, key);
                    } else {
                        trie.remove(key);
                    }
                }
            });
        }
        // Readers check the stable-key floor property.
        for r in 0..3u64 {
            let trie = Arc::clone(&trie);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(0x5ead + r);
                for _ in 0..100_000 {
                    let q = rng.next() % stable_max;
                    let floor_stable = (q / stable_stride) * stable_stride;
                    match trie.predecessor(q) {
                        Some((k, _)) => {
                            assert!(k <= q, "predecessor {k} exceeds query {q}");
                            assert!(
                                k >= floor_stable,
                                "predecessor {k} skipped stable key {floor_stable} (query {q})"
                            );
                        }
                        None => panic!("a stable key <= {q} always exists"),
                    }
                }
            });
        }
    });
}

/// The CAS-fallback mode (the paper's "it is permissible to fall back to CAS") stays
/// correct under the same concurrent churn.
#[test]
fn cas_fallback_mode_is_correct_under_churn() {
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(
        SkipTrieConfig::for_universe_bits(24).with_mode(DcssMode::CasOnly),
    ));
    let threads = 6u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let trie = Arc::clone(&trie);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(t + 100);
                for _ in 0..30_000 {
                    let key = (t << 20) | (rng.next() % 3_000);
                    match rng.next() % 3 {
                        0 => {
                            trie.insert(key, key);
                        }
                        1 => {
                            trie.remove(key);
                        }
                        _ => {
                            if let Some((k, _)) = trie.predecessor(key) {
                                assert!(k <= key);
                            }
                        }
                    }
                }
            });
        }
    });
    // Quiescent sanity: snapshot is sorted and duplicate-free.
    let keys = trie.keys();
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(trie.len(), keys.len());
}
