//! Cross-crate integration tests: every ordered structure in the workspace (the
//! SkipTrie, the truncated and full-height skiplists, the locked BTreeMap, and the
//! sequential x-fast / y-fast tries) must agree with a `BTreeMap` model — and hence
//! with each other — over long randomized operation histories.

use std::collections::BTreeMap;

use skiptrie_suite::baselines::{FullSkipList, LockedBTreeMap, SeqXFastTrie, SeqYFastTrie};
use skiptrie_suite::skiplist::{SkipList, SkipListConfig};
use skiptrie_suite::skiptrie::{SkipTrie, SkipTrieConfig};
use skiptrie_suite::workloads::SplitMix64;

const UNIVERSE_BITS: u32 = 16;
const OPS: usize = 20_000;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    Remove(u64),
    Pred(u64),
    Succ(u64),
}

fn history(seed: u64) -> Vec<Op> {
    let mut rng = SplitMix64::new(seed);
    (0..OPS)
        .map(|_| {
            let key = rng.next() % (1 << UNIVERSE_BITS);
            match rng.next() % 5 {
                0 | 1 => Op::Insert(key),
                2 => Op::Remove(key),
                3 => Op::Pred(key),
                _ => Op::Succ(key),
            }
        })
        .collect()
}

#[test]
fn skiptrie_agrees_with_model() {
    let trie = SkipTrie::new(SkipTrieConfig::for_universe_bits(UNIVERSE_BITS));
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, op) in history(1).into_iter().enumerate() {
        match op {
            Op::Insert(k) => {
                let expected = model.insert(k, k).is_none();
                if !expected {
                    // keep the original value in the model (insert-if-absent)
                }
                assert_eq!(trie.insert(k, k), expected, "op {i}: insert {k}");
            }
            Op::Remove(k) => assert_eq!(trie.remove(k), model.remove(&k), "op {i}: remove {k}"),
            Op::Pred(k) => assert_eq!(
                trie.predecessor(k),
                model.range(..=k).next_back().map(|(a, b)| (*a, *b)),
                "op {i}: pred {k}"
            ),
            Op::Succ(k) => assert_eq!(
                trie.successor(k),
                model.range(k..).next().map(|(a, b)| (*a, *b)),
                "op {i}: succ {k}"
            ),
        }
    }
    let expected: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(trie.to_vec(), expected);
}

#[test]
fn truncated_and_full_skiplists_agree_with_model() {
    let truncated: SkipList<u64> = SkipList::new(SkipListConfig::for_universe_bits(UNIVERSE_BITS));
    let full: FullSkipList<u64> = FullSkipList::new();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in history(2) {
        match op {
            Op::Insert(k) => {
                let expected = model.insert(k, k).is_none();
                assert_eq!(truncated.insert(k, k), expected);
                assert_eq!(full.insert(k, k), expected);
            }
            Op::Remove(k) => {
                let expected = model.remove(&k);
                assert_eq!(truncated.remove(k), expected);
                assert_eq!(full.remove(k), expected);
            }
            Op::Pred(k) => {
                let expected = model.range(..=k).next_back().map(|(a, b)| (*a, *b));
                assert_eq!(truncated.predecessor(k), expected);
                assert_eq!(full.predecessor(k), expected);
            }
            Op::Succ(k) => {
                let expected = model.range(k..).next().map(|(a, b)| (*a, *b));
                assert_eq!(truncated.successor(k), expected);
                assert_eq!(full.successor(k), expected);
            }
        }
    }
}

#[test]
fn sequential_tries_and_locked_btree_agree_with_model() {
    let mut xfast: SeqXFastTrie<u64> = SeqXFastTrie::new(UNIVERSE_BITS);
    let mut yfast: SeqYFastTrie<u64> = SeqYFastTrie::new(UNIVERSE_BITS);
    let locked: LockedBTreeMap<u64> = LockedBTreeMap::new();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in history(3) {
        match op {
            Op::Insert(k) => {
                let expected = model.insert(k, k).is_none();
                assert_eq!(xfast.insert(k, k), expected);
                assert_eq!(yfast.insert(k, k), expected);
                assert_eq!(locked.insert(k, k), expected);
            }
            Op::Remove(k) => {
                let expected = model.remove(&k);
                assert_eq!(xfast.remove(k), expected);
                assert_eq!(yfast.remove(k), expected);
                assert_eq!(locked.remove(k), expected);
            }
            Op::Pred(k) => {
                let expected = model.range(..=k).next_back().map(|(a, b)| (*a, *b));
                assert_eq!(xfast.predecessor(k), expected);
                assert_eq!(yfast.predecessor(k), expected);
                assert_eq!(locked.predecessor(k), expected);
            }
            Op::Succ(k) => {
                let expected = model.range(k..).next().map(|(a, b)| (*a, *b));
                assert_eq!(xfast.successor(k), expected);
                assert_eq!(yfast.successor(k), expected);
                assert_eq!(locked.successor(k), expected);
            }
        }
    }
}

/// The SkipTrie must behave identically across universe widths for keys that fit.
#[test]
fn universe_width_does_not_change_semantics() {
    let small = SkipTrie::new(SkipTrieConfig::for_universe_bits(16));
    let large = SkipTrie::new(SkipTrieConfig::for_universe_bits(64));
    let mut rng = SplitMix64::new(4);
    for _ in 0..10_000 {
        let key = rng.next() % (1 << 16);
        match rng.next() % 3 {
            0 => assert_eq!(small.insert(key, key), large.insert(key, key)),
            1 => assert_eq!(small.remove(key), large.remove(key)),
            _ => assert_eq!(small.predecessor(key), large.predecessor(key)),
        }
    }
    assert_eq!(small.to_vec(), large.to_vec());
}
