//! Reclamation soundness under concurrent churn.
//!
//! Epoch-based reclamation bugs are use-after-free bugs: a node freed (recycled)
//! while a pinned traversal can still reach it. This suite makes such a bug fail an
//! assertion instead of invoking undefined behaviour:
//!
//! * Pooled nodes are *poisoned* (`u64::MAX` key, marked-null `next`) and carry an
//!   incarnation sequence number bumped on every recycle, so
//!   `check_traversal_integrity` — run by reader threads while writers churn —
//!   detects a premature free as a poisoned key, a truncated level, or an
//!   incarnation bump observed mid-examination.
//! * Anchor keys that writers never touch must appear in every snapshot: a traversal
//!   silently cut short by recycled memory loses anchors and fails.
//! * A final drain plus per-closure counters prove every deferred closure ran
//!   exactly once (a `0` is a leak, a `2` a double free).
//!
//! The whole battery is parameterized over the reclamation substrate through the
//! `SKIPTRIE_RECLAIM` knob (CI runs it under both `ebr` and `hp`): every trie is
//! built with the selected `Reclaimer`, and every raw pin and drain goes
//! through the same substrate, so a premature free in either collector trips the
//! same poison/incarnation/exactly-once assertions.
//!
//! Both substrates were canary-tested during development:
//!
//! * **EBR**: weakening the vendored collector's readiness gate from
//!   `seal_epoch + 2 <= global` to `seal_epoch <= global` (a collect-early
//!   mutation) makes these tests fail.
//! * **Hazard**: weakening the hazard scan's interval-intersection test in
//!   `hazard::partition_covered` from `item.birth <= hi && lo <= item.retire` to
//!   `item.birth <= hi && lo <= item.birth` (treating protection as covering
//!   only an object's birth era, a collect-early mutation that frees objects a
//!   pinned reader can still reach) makes this suite fail under
//!   `SKIPTRIE_RECLAIM=hp` and fails the vendored `proptest_hazard` model.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use skiptrie_suite::skiptrie::{SkipTrie, SkipTrieConfig};
use skiptrie_suite::workloads::harness::{reclaimer, scaled, Workload};

const UNIVERSE_BITS: u32 = 32;

/// Fibonacci spread matching `KeyDist::ScatteredSet`: maps dense indices to keys
/// scattered across the universe, injectively for power-of-two universes.
fn spread(index: u64) -> u64 {
    index.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << UNIVERSE_BITS) - 1)
}

/// Pins and flushes until `done` reports success or the retry budget is spent.
/// Reclamation is *eventual* (garbage becomes collectable two epochs after sealing,
/// and exiting threads publish their bags from TLS teardown, which can lag a join),
/// so drains retry rather than assert a deadline.
fn drain_until(mut done: impl FnMut() -> bool) -> bool {
    for _ in 0..10_000 {
        // Pin and flush through the substrate under test: an EBR flush cannot
        // drain hazard garbage (and vice versa).
        skiptrie_suite::atomics::pin_domain_with(0, reclaimer()).flush();
        if done() {
            return true;
        }
        std::thread::yield_now();
    }
    done()
}

/// Writers churn a scattered working set while readers audit full traversals,
/// predecessor sanity, and the presence of untouched anchor keys. A premature free
/// or stale recycle fails an assertion in `check_traversal_integrity` (poison /
/// incarnation checks) or loses an anchor from a snapshot.
#[test]
fn churn_preserves_traversal_integrity_and_anchors() {
    let working_set = scaled(20_000) as u64;
    let anchors: Vec<u64> = (0..128).map(|j| spread(working_set + j)).collect();
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(
        SkipTrieConfig::for_universe_bits(UNIVERSE_BITS).with_reclaimer(reclaimer()),
    ));
    for &a in &anchors {
        assert!(trie.insert(a, a + 1));
    }
    // Warm the structure so readers see a populated trie from the start.
    for i in 0..working_set / 2 {
        trie.insert(spread(i), spread(i) + 1);
    }

    let writers = 4usize;
    let readers = 2usize;
    let writer_iters = scaled(40_000);
    let writers_running = AtomicUsize::new(writers);

    Workload::new(0x5EED)
        .workers(writers, |mut ctx| {
            for _ in 0..writer_iters {
                let key = spread(ctx.rng.next() % working_set);
                if ctx.rng.next() % 2 == 0 {
                    trie.insert(key, key + 1);
                } else {
                    trie.remove(key);
                }
            }
            writers_running.fetch_sub(1, Ordering::Release);
            // Publish this worker's partial garbage bag before the scope's join
            // observes the closure as finished (TLS teardown can lag).
            trie.pin().flush();
        })
        .workers(readers, |mut ctx| {
            while writers_running.load(Ordering::Acquire) > 0 {
                // Full audit: poisoning, incarnation, ordering, level coherence.
                let examined = trie.check_traversal_integrity();
                assert!(examined >= anchors.len(), "snapshot lost nodes: {examined}");
                // Predecessor answers stay sane under churn, and anchors are stable.
                for _ in 0..64 {
                    let q = ctx.rng.next() & ((1u64 << UNIVERSE_BITS) - 1);
                    if let Some((k, v)) = trie.predecessor(q) {
                        assert!(k <= q, "predecessor {k} exceeds query {q}");
                        assert_eq!(v, k + 1, "value corrupted for key {k}");
                    }
                    let a = anchors[(ctx.rng.next() % anchors.len() as u64) as usize];
                    assert_eq!(trie.get(a), Some(a + 1), "anchor {a} lost");
                }
                let snapshot = trie.keys();
                assert!(
                    snapshot.windows(2).all(|w| w[0] < w[1]),
                    "snapshot not strictly sorted"
                );
            }
        })
        .run();

    // Quiescent audit, then drain everything and prove the pool balances: every
    // allocation is either a sentinel or back in the pool, with nothing leaked to
    // pending epoch callbacks and nothing freed twice (a double recycle would leave
    // pooled > allocated - sentinels).
    trie.check_traversal_integrity();
    for key in trie.keys() {
        assert_eq!(trie.remove(key), Some(key + 1));
    }
    assert!(trie.is_empty());
    let (allocated, _, _) = trie.allocation_stats();
    let sentinels = 2 * trie.level_lengths().len();
    let drained = drain_until(|| {
        let (_, _, pooled) = trie.allocation_stats();
        pooled == allocated - sentinels
    });
    let (_, recycled, pooled) = trie.allocation_stats();
    assert!(
        drained,
        "pool never balanced: allocated={allocated} pooled={pooled} \
         recycled={recycled} sentinels={sentinels} (leaked deferred closures?)"
    );
}

/// Every closure deferred through the epoch layer runs exactly once: a slot left at
/// `0` is a leak (lost bag or never-collected garbage), a slot above `1` is a double
/// free.
#[test]
fn deferred_closures_run_exactly_once() {
    let threads = 8usize;
    let per_thread = scaled(2_000);
    let slots: Arc<Vec<AtomicU8>> = Arc::new(
        (0..threads * per_thread)
            .map(|_| AtomicU8::new(0))
            .collect(),
    );

    Workload::new(0xD05E)
        .workers(threads, |ctx| {
            let base = ctx.index * per_thread;
            for i in 0..per_thread {
                let guard = skiptrie_suite::atomics::pin_domain_with(0, reclaimer());
                let slot_owner = Arc::clone(&slots);
                // SAFETY: the closure only touches an Arc-kept atomic and runs once.
                unsafe {
                    guard.defer_unchecked(move || {
                        slot_owner[base + i].fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
            skiptrie_suite::atomics::pin_domain_with(0, reclaimer()).flush();
        })
        .run();

    let total = || -> usize {
        slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed) as usize)
            .sum()
    };
    assert!(
        drain_until(|| total() == threads * per_thread),
        "deferred closures leaked: {} of {} ran",
        total(),
        threads * per_thread
    );
    for (i, slot) in slots.iter().enumerate() {
        assert_eq!(
            slot.load(Ordering::Relaxed),
            1,
            "deferred closure {i} ran a wrong number of times"
        );
    }
}

#[test]
fn trie_drop_frees_every_prefix_directory_level() {
    use skiptrie_suite::metrics::{self, Counter};
    use skiptrie_suite::skiptrie::DirectoryConfig;

    // Directory nodes bypass the epoch machinery entirely (they are never unlinked
    // while the map is alive), so their leak-freedom is pinned by alloc/free
    // counters instead of the poison canary: after dropping a trie whose prefix
    // directory grew several levels, at least as many nodes must have been freed as
    // the tree held. `>=` keeps the assertion sound against concurrent tests.
    let ((), _) = metrics::measure(|| {
        let config = SkipTrieConfig::for_universe_bits(UNIVERSE_BITS)
            .with_seed(0xD06)
            .with_reclaimer(reclaimer())
            .with_hash_directory(DirectoryConfig::default().with_segment_bits(4));
        let trie: SkipTrie<u64> = SkipTrie::new(config);
        // Fixed count (not `scaled`): the point is reaching height >= 3, not stress.
        for i in 0..6_000 {
            trie.insert(spread(i), i);
        }
        let height = trie.prefix_directory_height();
        assert!(
            height >= 3,
            "the prefix set must outgrow at least two tree capacities, height {height}"
        );
        let before = metrics::snapshot();
        drop(trie);
        let freed = metrics::snapshot()
            .since(&before)
            .get(Counter::DirNodeFreed);
        assert!(
            freed >= u64::from(height),
            "dropping the trie must free a node on every tree level, freed {freed}"
        );
    });
}
