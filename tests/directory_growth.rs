//! Concurrent growth stress for the unbounded hash directory (the segment tree of
//! `skiptrie_splitorder`): writers force repeated root growth while readers probe
//! keys that are present for the whole run, at the map level and through the
//! SkipTrie's `LowestAncestor` path.
//!
//! Every map and trie in this binary uses the *unbounded* directory, so the
//! process-wide `hash_saturated` counter must never move — each test asserts a zero
//! delta over its whole run, which is only sound because no bounded-mode structure
//! exists anywhere in this test binary (unit tests of the bounded mode live in the
//! splitorder crate).

use std::sync::atomic::{AtomicUsize, Ordering};

use skiptrie_suite::metrics::{self, Counter};
use skiptrie_suite::skiptrie::{DirectoryConfig, SkipTrie, SkipTrieConfig};
use skiptrie_suite::splitorder::SplitOrderedMap;
use skiptrie_suite::workloads::harness::{scaled, Workload};

/// A small fanout (16 slots per node) puts root growth within stress-test reach:
/// the tree must climb 16 -> 256 -> 4096 -> 65536 bucket capacities during the run.
fn growable() -> DirectoryConfig {
    DirectoryConfig::default().with_segment_bits(4)
}

#[test]
fn concurrent_map_growth_never_loses_a_key() {
    let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::with_directory(growable());
    let stable = 512u64;
    for k in 0..stable {
        assert!(map.insert(k, k * 3));
    }
    assert_eq!(
        map.directory_height(),
        2,
        "512 stable keys want 256 buckets: one growth already, the rest mid-run"
    );

    let writers = 4usize;
    let per_writer = scaled(20_000) as u64;
    let writers_done = AtomicUsize::new(0);
    let start_height = map.directory_height();
    let ((), delta) = metrics::measure(|| {
        Workload::new(0xd1)
            .workers(writers, |ctx| {
                let t = ctx.index as u64;
                // Monotonically spreading keys: each writer walks its own stride
                // upward so the live key range keeps widening past every capacity
                // the directory had when the run started.
                for i in 0..per_writer {
                    let key = stable + (i * writers as u64 + t);
                    assert!(map.insert(key, key + 1), "key {key} inserted once");
                }
                writers_done.fetch_add(1, Ordering::SeqCst);
            })
            .workers(3, |_| {
                // Readers: every stable key must be found on every pass, no matter
                // how many root growths happen mid-probe.
                loop {
                    for k in 0..stable {
                        assert_eq!(map.get(&k), Some(k * 3), "stable key {k} lost");
                    }
                    if writers_done.load(Ordering::SeqCst) == writers {
                        break;
                    }
                }
            })
            .run();
    });

    // Quiesce: nothing written during the run may be missing.
    for key in stable..stable + writers as u64 * per_writer {
        assert_eq!(map.get(&key), Some(key + 1), "writer key {key} lost");
    }
    assert_eq!(map.len() as u64, stable + writers as u64 * per_writer);
    assert!(
        map.directory_height() >= 4,
        "the run must have forced repeated root growth, height {}",
        map.directory_height()
    );
    assert!(map.bucket_count() > 4096);
    assert!(!map.is_saturated());
    assert!(
        delta.get(Counter::DirGrow) >= u64::from(map.directory_height() - start_height),
        "every level gained during the run came from a successful grow CAS"
    );
    // Exact zero is sound only under the binary-isolation rule in the module docs:
    // the counter is process-wide, but every structure in this test binary uses the
    // unbounded directory, so nothing else can bump it concurrently.
    assert_eq!(
        delta.get(Counter::HashSaturated),
        0,
        "the unbounded directory never saturates"
    );
}

#[test]
fn trie_probes_stay_correct_while_the_prefix_directory_grows() {
    let config = SkipTrieConfig::for_universe_bits(32)
        .with_seed(0xd1)
        .with_hash_directory(growable());
    let trie: SkipTrie<u64> = SkipTrie::new(config);

    // Stable keys, spread across the universe, present for the whole run. Inserts
    // are insert-if-absent, so their values survive any racing writer collision.
    let stable: Vec<u64> = (1..=256u64).map(|k| k * 16_711_935).collect();
    for &k in &stable {
        assert!(trie.insert(k, k ^ 0xabcd));
    }

    let writers = 3usize;
    let per_writer = scaled(6_000) as u64;
    let writers_done = AtomicUsize::new(0);
    let ((), delta) = metrics::measure(|| {
        Workload::new(0xd2)
            .workers(writers, |ctx| {
                let t = ctx.index as u64;
                // Bijective odd-multiplier spreading over the 32-bit universe: the
                // published prefix set keeps widening, forcing the prefix table
                // through several doublings and the directory through root growth.
                for i in 0..per_writer {
                    let key = ((i * writers as u64 + t).wrapping_mul(0x9E37_79B9)) & 0xFFFF_FFFF;
                    trie.insert(key, key);
                }
                writers_done.fetch_add(1, Ordering::SeqCst);
            })
            .workers(2, |_| loop {
                for (idx, &k) in stable.iter().enumerate() {
                    assert_eq!(trie.get(k), Some(k ^ 0xabcd), "stable key {k} lost");
                    // Keys are only ever inserted, so predecessor(k + 1) is k
                    // itself or something between k and the next stable key.
                    let (pk, _) = trie
                        .predecessor(k + 1)
                        .expect("a stable key bounds the query from below");
                    assert!(pk <= k + 1);
                    assert!(
                        pk >= stable[idx],
                        "predecessor went below a key present all run"
                    );
                }
                if writers_done.load(Ordering::SeqCst) == writers {
                    break;
                }
            })
            .run();
    });

    for &k in &stable {
        assert_eq!(trie.get(k), Some(k ^ 0xabcd));
    }
    for t in 0..writers as u64 {
        for i in 0..per_writer {
            let key = (i * writers as u64 + t).wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF;
            assert!(trie.get(key).is_some(), "writer key {key} lost");
        }
    }
    assert!(
        trie.prefix_directory_height() >= 3,
        "published prefixes must outgrow two tree capacities, height {}",
        trie.prefix_directory_height()
    );
    assert!(!trie.prefix_table_saturated());
    assert!(trie.check_trie_integrity() > 0, "quiescent audit");
    // Exact zero is sound only under the binary-isolation rule in the module docs:
    // no bounded-mode structure exists anywhere in this binary, so the process-wide
    // counter cannot be inflated by a concurrent test.
    assert_eq!(
        delta.get(Counter::HashSaturated),
        0,
        "the unbounded prefix directory never saturates"
    );
}

#[test]
fn dropping_a_grown_map_frees_every_tree_level() {
    let ((), _) = metrics::measure(|| {
        let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::with_directory(growable());
        for i in 0..scaled(30_000) as u64 {
            map.insert(i, i);
        }
        assert!(map.directory_height() >= 4);
        let nodes = map.directory_node_count() as u64;
        assert!(
            nodes > 1 + 16,
            "a grown tree has interior nodes on every level"
        );
        let before = metrics::snapshot();
        drop(map);
        let freed = metrics::snapshot().since(&before);
        assert!(
            freed.get(Counter::DirNodeFreed) >= nodes,
            "drop must free all {nodes} directory nodes, freed {}",
            freed.get(Counter::DirNodeFreed)
        );
    });
}
