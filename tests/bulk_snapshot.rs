//! Concurrent correctness of the checkpoint/restore pair: `snapshot()` taken while
//! writers churn must honour the PR 3 cursor contract — sorted, duplicate-free,
//! every *stable* key (present for the whole snapshot) included exactly once, every
//! yielded key one that was actually present at some point — and a quiesced
//! snapshot must restore losslessly through `bulk_load` on a fresh structure.
//!
//! Key classes by residue mod 3: class 0 is stable (inserted before the workload,
//! never written again), classes 1 and 2 are churned throughout. All orchestration
//! goes through `skiptrie_workloads::harness` (barrier start, deterministic
//! per-worker RNGs, `SKIPTRIE_SCALE` sizing).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use skiptrie_suite::skiptrie::{ShardedSkipTrie, ShardedSkipTrieConfig, SkipTrie, SkipTrieConfig};
use skiptrie_suite::workloads::harness::{scaled, Workload};

const UNIVERSE_BITS: u32 = 32;
const MAX: u64 = 1 << UNIVERSE_BITS;
const SHARDS: usize = 8;

/// Stable keys: multiples of 3 spread across the whole universe (every shard).
fn stable_keys(n: u64) -> HashSet<u64> {
    let stride = MAX / (n + 1);
    (0..n).map(|i| i * stride / 3 * 3).collect()
}

/// A churn key: class 1 or 2 mod 3, never colliding with the stable class. The
/// draw is clamped below `MAX - 3` so the `+1`/`+2` cannot leave the universe.
fn churn_key(raw: u64, parity: u64) -> u64 {
    let k = raw % (MAX - 3);
    k - k % 3 + 1 + (parity % 2)
}

fn check_snapshot(snap: &[(u64, u64)], stable: &HashSet<u64>, context: &str) {
    assert!(
        snap.windows(2).all(|w| w[0].0 < w[1].0),
        "{context}: snapshot must be sorted and duplicate-free"
    );
    let snap_keys: HashSet<u64> = snap.iter().map(|&(k, _)| k).collect();
    for &k in stable {
        assert!(
            snap_keys.contains(&k),
            "{context}: stable key {k} missing from a snapshot taken under churn"
        );
    }
    for &(k, v) in snap {
        // Values encode their key, so a torn or misattributed read shows up here.
        assert_eq!(v, k ^ 0xabcd, "{context}: value of {k} corrupted");
        // Only keys somebody actually inserted may appear.
        assert!(
            stable.contains(&k) || k % 3 != 0,
            "{context}: key {k} was never inserted by anyone"
        );
    }
}

#[test]
fn forest_snapshot_under_churn_keeps_the_cursor_contract() {
    let f: ShardedSkipTrie<u64> = ShardedSkipTrie::new(
        ShardedSkipTrieConfig::for_universe_bits(UNIVERSE_BITS).with_shards(SHARDS),
    );
    let stable = stable_keys(scaled(3_000) as u64);
    for &k in &stable {
        f.insert(k, k ^ 0xabcd);
    }
    let done = AtomicBool::new(false);
    let snapshots: Mutex<Vec<Vec<(u64, u64)>>> = Mutex::new(Vec::new());
    let writers = 4usize;
    let iters = scaled(20_000);
    Workload::new(0xb51c)
        .workers(writers, |mut ctx| {
            for _ in 0..iters {
                let k = churn_key(ctx.rng.next(), ctx.rng.next());
                if ctx.rng.next().is_multiple_of(2) {
                    f.insert(k, k ^ 0xabcd);
                } else {
                    f.remove(k);
                }
            }
            done.store(true, Ordering::SeqCst);
        })
        .worker(|_| {
            // Snapshot continuously while the writers churn (at least once even if
            // the writers finish first — the contract must hold then too).
            loop {
                let snap = f.snapshot();
                snapshots.lock().unwrap().push(snap);
                if done.load(Ordering::SeqCst) {
                    break;
                }
            }
        })
        .run();
    let snaps = snapshots.into_inner().unwrap();
    assert!(!snaps.is_empty());
    for (i, snap) in snaps.iter().enumerate() {
        check_snapshot(snap, &stable, &format!("forest snapshot {i}"));
    }
    // Quiesced: snapshot equals to_vec equals a full restore — into a different
    // forest geometry, since the checkpoint format is just sorted pairs.
    let final_snap = f.snapshot();
    assert_eq!(final_snap, f.to_vec());
    let restored: ShardedSkipTrie<u64> = ShardedSkipTrie::from_sorted(
        ShardedSkipTrieConfig::for_universe_bits(UNIVERSE_BITS).with_shards(4),
        &final_snap,
    );
    assert_eq!(restored.len(), f.len());
    assert_eq!(restored.snapshot(), final_snap, "restore is lossless");
    assert!(restored.check_traversal_integrity() >= restored.len());
}

#[test]
fn trie_snapshot_under_churn_keeps_the_cursor_contract() {
    let t: SkipTrie<u64> = SkipTrie::new(SkipTrieConfig::for_universe_bits(UNIVERSE_BITS));
    let stable = stable_keys(scaled(2_000) as u64);
    for &k in &stable {
        t.insert(k, k ^ 0xabcd);
    }
    let done = AtomicBool::new(false);
    let checked = Mutex::new(0usize);
    let writers = 3usize;
    let iters = scaled(15_000);
    Workload::new(0x5a4e)
        .workers(writers, |mut ctx| {
            for _ in 0..iters {
                let k = churn_key(ctx.rng.next(), ctx.rng.next());
                if ctx.rng.next().is_multiple_of(2) {
                    t.insert(k, k ^ 0xabcd);
                } else {
                    t.remove(k);
                }
            }
            done.store(true, Ordering::SeqCst);
        })
        .worker(|_| loop {
            let snap = t.snapshot();
            check_snapshot(&snap, &stable, "trie snapshot");
            *checked.lock().unwrap() += 1;
            if done.load(Ordering::SeqCst) {
                break;
            }
        })
        .run();
    assert!(*checked.lock().unwrap() > 0);
    // Round trip after quiescence.
    let checkpoint = t.snapshot();
    let restored: SkipTrie<u64> = SkipTrie::from_sorted(
        SkipTrieConfig::for_universe_bits(UNIVERSE_BITS),
        checkpoint.iter().copied(),
    );
    assert_eq!(restored.to_vec(), checkpoint);
    assert_eq!(restored.len(), t.len());
}
