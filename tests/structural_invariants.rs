//! Cross-crate integration tests for the *structural* claims of the paper: level
//! densities, top-level spacing, trie population, and space accounting (the measured
//! counterparts of Figure 1 and the `O(m)` space claim), plus quiescent-state
//! invariants after heavy concurrent use.

use std::sync::{Arc, Mutex};

/// The step-count instrumentation is process-wide, so tests in this file that measure
/// or generate steps are serialized to keep measurements uncontaminated.
static SERIAL: Mutex<()> = Mutex::new(());

use skiptrie_suite::metrics;
use skiptrie_suite::skiptrie::{SkipTrie, SkipTrieConfig};
use skiptrie_suite::workloads::SplitMix64;

/// With m keys and L levels, level ℓ should hold ≈ m/2^ℓ nodes and the top level
/// ≈ m/2^(L-1); the x-fast trie holds at most (log u - 1) prefixes per top key.
#[test]
fn level_densities_and_trie_population_match_expectation() {
    let _serial = SERIAL.lock().unwrap();
    let bits = 32u32;
    let m = 60_000u64;
    let trie = SkipTrie::new(SkipTrieConfig::for_universe_bits(bits).with_seed(0xF00));
    let mut rng = SplitMix64::new(5);
    let mut inserted = 0u64;
    while inserted < m {
        if trie.insert(rng.next() & 0xffff_ffff, 0) {
            inserted += 1;
        }
    }

    let lengths = trie.level_lengths();
    assert_eq!(lengths[0] as u64, m);
    for (level, &length) in lengths.iter().enumerate().skip(1) {
        let expected = m as f64 / 2f64.powi(level as i32);
        let actual = length as f64;
        assert!(
            actual > expected * 0.7 && actual < expected * 1.4,
            "level {level}: {actual} nodes, expected ≈ {expected}"
        );
    }
    let top = *lengths.last().unwrap();
    let prefixes = trie.prefix_count();
    assert!(
        prefixes >= top,
        "every top key contributes at least one prefix"
    );
    assert!(
        prefixes <= top * (bits as usize - 1) + 1,
        "prefixes ({prefixes}) bounded by top keys ({top}) × (log u − 1)"
    );

    // O(m) space: node allocations are within a small constant of m (expected 2m).
    let (allocated, _, _) = trie.allocation_stats();
    assert!(
        (allocated as u64) < 4 * m,
        "allocated {allocated} nodes for {m} keys — not O(m)"
    );
}

/// The expected gap between consecutive top-level keys is 2^(L-1) ≈ log u — the
/// probabilistic replacement for y-fast bucket sizes.
#[test]
fn top_level_spacing_matches_log_u() {
    let _serial = SERIAL.lock().unwrap();
    let trie = SkipTrie::new(SkipTrieConfig::for_universe_bits(32).with_seed(0xF01));
    let m = 40_000u64;
    for k in 0..m {
        trie.insert(k, k);
    }
    let all = trie.keys();
    let top = trie.top_level_keys();
    assert!(top.len() > 100, "enough top keys for statistics");
    let mean_gap = all.len() as f64 / top.len() as f64;
    let expected = 2f64.powi(trie.level_lengths().len() as i32 - 1);
    assert!(
        mean_gap > expected * 0.6 && mean_gap < expected * 1.6,
        "mean top-level gap {mean_gap}, expected ≈ {expected}"
    );
}

/// After concurrent churn quiesces, the structure is internally consistent: the key
/// snapshot is sorted and duplicate-free, every top-level key is also present at level
/// 0, and draining the structure empties every level and the trie.
#[test]
fn quiescent_state_is_consistent_after_concurrent_churn() {
    let _serial = SERIAL.lock().unwrap();
    let trie: Arc<SkipTrie<u64>> = Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(24)));
    std::thread::scope(|scope| {
        for t in 0..6u64 {
            let trie = Arc::clone(&trie);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(t * 7 + 1);
                for _ in 0..40_000 {
                    let key = rng.next() % (1 << 20);
                    if rng.next().is_multiple_of(2) {
                        trie.insert(key, key);
                    } else {
                        trie.remove(key);
                    }
                }
            });
        }
    });

    let keys = trie.keys();
    assert!(
        keys.windows(2).all(|w| w[0] < w[1]),
        "snapshot sorted, no duplicates"
    );
    assert_eq!(keys.len(), trie.len());
    let key_set: std::collections::HashSet<u64> = keys.iter().copied().collect();
    for top_key in trie.top_level_keys() {
        assert!(
            key_set.contains(&top_key),
            "top-level key {top_key} missing from level 0"
        );
    }

    // Drain and verify everything collapses.
    for k in keys {
        assert_eq!(trie.remove(k), Some(k));
    }
    assert!(trie.is_empty());
    assert_eq!(trie.level_lengths().iter().sum::<usize>(), 0);
    assert_eq!(trie.top_level_keys(), Vec::<u64>::new());
    assert_eq!(
        trie.prefix_count(),
        1,
        "only the permanent ε prefix survives a drain"
    );
}

/// The step-count instrumentation shows the headline separation even at modest sizes:
/// predecessor queries on the SkipTrie take far fewer traversal steps than on the
/// log(m)-depth baseline once m is large.
#[test]
fn instrumented_step_counts_show_low_depth() {
    let _serial = SERIAL.lock().unwrap();
    use skiptrie_suite::baselines::FullSkipList;
    let m = 50_000u64;
    let queries = 2_000u64;

    let trie = SkipTrie::new(SkipTrieConfig::for_universe_bits(32));
    let skiplist: FullSkipList<u64> = FullSkipList::new();
    let mut rng = SplitMix64::new(6);
    for _ in 0..m {
        let k = rng.next() & 0xffff_ffff;
        trie.insert(k, k);
        skiplist.insert(k, k);
    }

    let run = |f: &dyn Fn(u64)| {
        metrics::set_enabled(true);
        let before = metrics::snapshot();
        let mut rng = SplitMix64::new(7);
        for _ in 0..queries {
            f(rng.next() & 0xffff_ffff);
        }
        let delta = metrics::snapshot().since(&before);
        metrics::set_enabled(false);
        delta.traversal_steps() as f64 / queries as f64
    };
    let trie_steps = run(&|k| {
        trie.predecessor(k);
    });
    let skiplist_steps = run(&|k| {
        skiplist.predecessor(k);
    });
    assert!(
        trie_steps < skiplist_steps,
        "SkipTrie ({trie_steps:.1} steps/query) must beat the log(m) skiplist \
         ({skiplist_steps:.1} steps/query) at m = {m}"
    );
}
