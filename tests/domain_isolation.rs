//! Epoch-domain isolation regressions.
//!
//! The workspace rule (DESIGN.md §Memory reclamation) is that **every** pin and
//! retirement goes through the owning structure's epoch domain — the only direct
//! `epoch::pin()` call site outside `vendor/` is `SkipList::pin`'s documented
//! fallback for the un-configured (`domain: None`) case. These tests pin the rule
//! for the split-ordered prefix table, which used to pin the *global* domain on
//! every operation: under that bug one stalled global-domain reader stalls every
//! shard's prefix-table garbage, defeating the whole point of per-shard domains.
//!
//! Both tests share one binary and serialize on a lock: each stages a canary in
//! the default domain (0) and draws conclusions from whether default-domain
//! garbage moves, so running them concurrently would let one test's domain-0
//! activity contaminate the other's verdict.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use skiptrie_suite::skiptrie::{DirectoryConfig, SkipTrie, SkipTrieConfig};
use skiptrie_suite::splitorder::SplitOrderedMap;

/// Serializes the tests in this binary (see the module docs).
static DOMAIN_ZERO_LOCK: Mutex<()> = Mutex::new(());

/// Retries `done` after flushing via `flush` — reclamation is eventual (garbage
/// becomes collectable two epochs after sealing), so drains retry, never assert a
/// deadline.
fn drain_until(flush: impl Fn(), mut done: impl FnMut() -> bool) -> bool {
    for _ in 0..10_000 {
        flush();
        if done() {
            return true;
        }
        std::thread::yield_now();
    }
    done()
}

/// A map built in its own domain must retire its nodes *in that domain*: with a
/// reader parked in the default domain for the whole test (stalling domain 0's
/// epoch), removed values must still become reclaimable by flushing only the
/// map's domain. Under the old bug — operations pinning `epoch::pin()` directly —
/// the removed nodes sit in domain-0 bags behind the parked guard and the drain
/// below never balances.
#[test]
fn map_in_domain_reclaims_despite_stalled_global_reader() {
    let _serial = DOMAIN_ZERO_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());

    const MAP_DOMAIN: usize = 7;
    const KEYS: u64 = 512;

    let map: SplitOrderedMap<u64, Arc<()>> = SplitOrderedMap::with_directory_in_domain(
        DirectoryConfig::default(),
        Some(MAP_DOMAIN),
        skiptrie_suite::atomics::Reclaimer::Ebr,
    );
    // Park a guard in the *default* domain before any map traffic and hold it
    // across the whole churn + drain: domain 0 cannot advance past it.
    let parked = skiptrie_suite::atomics::pin();

    // Every stored value clones one tracker; a value only drops its clone when the
    // node that carried it is actually reclaimed.
    let tracker = Arc::new(());
    for key in 0..KEYS {
        assert!(map.insert(key, Arc::clone(&tracker)));
    }
    for key in 0..KEYS {
        assert!(map.remove(&key).is_some());
    }

    // Drain through the map's own domain only. If retirement rode the global
    // domain, these flushes touch the wrong bags and the parked guard keeps the
    // right ones frozen, so the count never returns to 1.
    let drained = drain_until(|| map.pin().flush(), || Arc::strong_count(&tracker) == 1);
    assert!(
        drained,
        "removed values never reclaimed through the map's domain \
         (still {} live clones): operations must pin the map's domain, \
         not the global one",
        Arc::strong_count(&tracker) - 1
    );
    drop(parked);
}

/// The inverse direction: churning a domain-isolated trie must not *advance* the
/// default domain. A canary closure is deferred into domain 0, then a
/// `with_domain` trie absorbs thousands of operations (each touching the prefix
/// table). Under the old bug every prefix-table operation pinned domain 0, whose
/// periodic collect would run the canary mid-churn; with domain routing the
/// canary only runs once we drain domain 0 explicitly at the end.
#[test]
fn churning_isolated_trie_leaves_default_domain_untouched() {
    let _serial = DOMAIN_ZERO_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());

    const TRIE_DOMAIN: usize = 7;

    let canary = Arc::new(AtomicU8::new(0));
    {
        let guard = skiptrie_suite::atomics::pin();
        let flag = Arc::clone(&canary);
        // SAFETY: the closure only touches an Arc-kept atomic and runs once.
        unsafe {
            guard.defer_unchecked(move || {
                flag.store(1, Ordering::SeqCst);
            });
        }
        guard.flush();
    }

    let trie: SkipTrie<u64> = SkipTrie::new(
        SkipTrieConfig::for_universe_bits(32)
            .with_seed(0xD0_0D)
            .with_domain(TRIE_DOMAIN),
    );
    // Scattered keys so inserts and removes keep creating and deleting prefix
    // branches (= heavy split-ordered map traffic), not just skiplist nodes.
    for i in 0..2_000u64 {
        let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & 0xFFFF_FFFF;
        trie.insert(key, i);
        trie.predecessor(key);
        trie.remove(key);
    }

    assert_eq!(
        canary.load(Ordering::SeqCst),
        0,
        "churning a domain-isolated trie collected default-domain garbage: \
         the prefix table must pin the trie's domain, not the global one"
    );

    // Prove the canary was live (not lost): an explicit default-domain drain must
    // run it.
    let ran = drain_until(
        || skiptrie_suite::atomics::pin().flush(),
        || canary.load(Ordering::SeqCst) == 1,
    );
    assert!(ran, "canary closure was leaked, not merely deferred");
}
