//! Cross-crate smoke tests for the serving pipeline: multiple connections
//! drive a `TieredForest` through `skiptrie-service` while watermark merges
//! fold shards underneath, and admission turns overload into counted sheds
//! instead of unbounded queues.
//!
//! Counter notes: `SvcEnqueued` / `SvcShed` / `SvcBatchSize` are process-wide,
//! so the exact-delta asserts here are only sound because (a) this file is its
//! own test binary and (b) every test that drives a service serializes on
//! [`SERVICE_LOCK`] and measures with `Snapshot::since`.

use std::collections::BTreeMap;
use std::sync::Mutex;

use skiptrie_suite::metrics::{self, Counter};
use skiptrie_suite::service::{Reply, Request, Service, ServiceConfig, Verb};
use skiptrie_suite::skiptrie::{ShardedSkipTrie, ShardedSkipTrieConfig, TieredForest};
use skiptrie_suite::workloads::harness::{scaled, worker_rng};

/// Serializes the tests in this binary so `since`-deltas on the service
/// counters are exact.
static SERVICE_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn concurrent_connections_agree_with_thread_local_models() {
    let _guard = SERVICE_LOCK.lock().unwrap();
    const THREADS: u64 = 4;
    let ops = scaled(4_000) as u64;
    // Small watermark: the background coordinator folds shards throughout.
    let forest: TieredForest<u64> = TieredForest::new(
        ShardedSkipTrieConfig::for_universe_bits(24)
            .with_shards(4)
            .with_merge_watermark(512),
    );
    let service = Service::new(
        forest.router(),
        ServiceConfig {
            queue_cap: 64,
            coalesce: 8,
        },
    );
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let service = &service;
            scope.spawn(move || {
                // Keys `k * THREADS + thread` are disjoint per thread, so even
                // with all four connections in flight every point reply must
                // match a thread-local model exactly.
                let mut conn = service.connect();
                let mut model: BTreeMap<u64, u64> = BTreeMap::new();
                let mut expected: Vec<(u64, Reply)> = Vec::new();
                let mut rng = worker_rng(0xE16, thread as usize);
                let check = |conn: &mut skiptrie_suite::service::Connection<_>,
                             expected: &mut Vec<(u64, Reply)>| {
                    for response in conn.wait_idle() {
                        let slot = expected
                            .iter()
                            .position(|(seq, _)| *seq == response.seq)
                            .expect("response matches a submitted request");
                        let (_, want) = expected.swap_remove(slot);
                        assert_eq!(response.reply, want, "pipeline reply diverged from model");
                    }
                };
                for op in 0..ops {
                    let key = rng.next_below(1 << 18) * THREADS + thread;
                    let roll = rng.next_below(10);
                    let (verb, want) = if roll < 5 {
                        (
                            Verb::Insert(key, op),
                            Reply::Inserted(model.insert(key, op).is_none()),
                        )
                    } else if roll < 7 {
                        (Verb::Remove(key), Reply::Removed(model.remove(&key)))
                    } else {
                        (Verb::Get(key), Reply::Value(model.get(&key).copied()))
                    };
                    let submit_ns = conn.now_ns();
                    match conn.submit(Request { verb, submit_ns }) {
                        Ok(seq) => expected.push((seq, want)),
                        Err(_) => {
                            // Lane full: a real client would back off; the test
                            // drains and replays nothing (the model was already
                            // updated), so just fail loudly — cap 64 with
                            // drain-every-32 below cannot legally shed.
                            panic!("unexpected shed below the in-flight cap");
                        }
                    }
                    if op % 32 == 31 {
                        check(&mut conn, &mut expected);
                    }
                }
                check(&mut conn, &mut expected);
                assert!(expected.is_empty(), "every request got its reply");
            });
        }
    });
    drop(service);
    // The union of the thread-local models is exactly the forest contents:
    // keyspaces are disjoint, so no cross-thread op can perturb another's keys.
    forest.quiesce();
    assert_eq!(forest.check_traversal_integrity(), forest.len());
}

#[test]
fn admission_sheds_exactly_past_the_lane_cap() {
    let _guard = SERVICE_LOCK.lock().unwrap();
    metrics::set_enabled(true);
    let router = std::sync::Arc::new(ShardedSkipTrie::<u64>::new(
        ShardedSkipTrieConfig::for_universe_bits(16).with_shards(2),
    ));
    let service = Service::new(
        std::sync::Arc::clone(&router),
        ServiceConfig {
            queue_cap: 4,
            coalesce: 8,
        },
    );
    let before = metrics::snapshot();
    let mut conn = service.connect();
    let mut accepted = 0u64;
    let mut shed = 0u64;
    // 7 gets aimed at one shard without ever draining responses: the first 4
    // are admitted (whether or not the worker has already executed them — the
    // in-flight bound counts *undrained* requests), the last 3 must shed.
    for i in 0..7u64 {
        let submit_ns = conn.now_ns();
        match conn.submit(Request {
            verb: Verb::Get(i),
            submit_ns,
        }) {
            Ok(_) => accepted += 1,
            Err(verb) => {
                assert_eq!(verb, Verb::Get(i), "shed hands the verb back");
                shed += 1;
            }
        }
    }
    assert_eq!((accepted, shed), (4, 3));
    let responses = conn.wait_idle();
    assert_eq!(responses.len(), 4, "admitted requests all complete");
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.get(Counter::SvcEnqueued), 4);
    assert_eq!(delta.get(Counter::SvcShed), 3);
    // After draining, the lane has room again.
    let submit_ns = conn.now_ns();
    assert!(conn
        .submit(Request {
            verb: Verb::Get(0),
            submit_ns,
        })
        .is_ok());
    assert_eq!(conn.wait_idle().len(), 1);
    metrics::set_enabled(false);
}

#[test]
fn coalescing_batches_queued_neighbours() {
    let _guard = SERVICE_LOCK.lock().unwrap();
    metrics::set_enabled(true);
    let router = std::sync::Arc::new(ShardedSkipTrie::<u64>::new(
        ShardedSkipTrieConfig::for_universe_bits(16).with_shards(1),
    ));
    let service = Service::new(
        std::sync::Arc::clone(&router),
        ServiceConfig {
            queue_cap: 256,
            coalesce: 16,
        },
    );
    let before = metrics::snapshot();
    let mut conn = service.connect();
    // A burst of 64 inserts into one lane: the worker must drain them in runs
    // of up to 16 and execute each run through `insert_batch_flags`. Exact run
    // boundaries depend on scheduling, but every coalesced request is counted,
    // so SvcBatchSize lands between "everything coalesced" and zero; with a
    // burst this dense, singleton-only service would be a coalescing bug for
    // all but the first and last run.
    for i in 0..64u64 {
        let submit_ns = conn.now_ns();
        conn.submit(Request {
            verb: Verb::Insert(i, i),
            submit_ns,
        })
        .expect("cap 256 admits the whole burst");
    }
    let responses = conn.wait_idle();
    assert_eq!(responses.len(), 64);
    for response in &responses {
        assert_eq!(
            response.reply,
            Reply::Inserted(true),
            "fresh keys all insert"
        );
    }
    assert_eq!(router.len(), 64);
    let delta = metrics::snapshot().since(&before);
    assert_eq!(delta.get(Counter::SvcEnqueued), 64);
    assert_eq!(delta.get(Counter::SvcShed), 0);
    assert!(
        delta.get(Counter::SvcBatchSize) <= 64,
        "coalesced ops are a subset of the burst"
    );
    // Latency recording covered every request, in both timebases.
    let virtual_count: u64 = service
        .virtual_latency()
        .snapshot()
        .iter()
        .map(|(_, h)| h.count())
        .sum();
    assert!(virtual_count >= 64);
    metrics::set_enabled(false);
}

#[test]
fn fenced_verbs_observe_all_prior_requests() {
    let _guard = SERVICE_LOCK.lock().unwrap();
    let forest: TieredForest<u64> = TieredForest::new(
        ShardedSkipTrieConfig::for_universe_bits(16)
            .with_shards(4)
            .with_merge_watermark(64),
    );
    let service = Service::new(forest.router(), ServiceConfig::default());
    let mut conn = service.connect();
    for i in 0..256u64 {
        let submit_ns = conn.now_ns();
        conn.submit(Request {
            verb: Verb::Insert(i * 11 % (1 << 16), i),
            submit_ns,
        })
        .expect("default cap admits the burst");
    }
    // PopFirst fences: every one of the 256 pipelined inserts must be visible,
    // so the pop returns the smallest inserted key even if workers are mid-run.
    let submit_ns = conn.now_ns();
    conn.submit(Request {
        verb: Verb::PopFirst,
        submit_ns,
    })
    .expect("fenced verbs execute inline");
    let responses = conn.wait_idle();
    assert_eq!(responses.len(), 257);
    let pop = responses
        .iter()
        .find(|r| matches!(r.reply, Reply::Entry(_)))
        .expect("the pop's response is delivered");
    let smallest = (0..256u64).map(|i| i * 11 % (1 << 16)).min().unwrap();
    assert_eq!(pop.reply, Reply::Entry(Some((smallest, smallest / 11))));
}
