//! The event-scheduler drain pattern (see `examples/event_scheduler.rs`) as a
//! harness-based integration test: producers schedule events at pseudo-random
//! deadlines while a consumer extracts them with `pop_first`.
//!
//! Asserted properties, scaled by `SKIPTRIE_SCALE`:
//!
//! * **produced == consumed** — no event is lost and none is invented;
//! * **no double delivery** — every extracted deadline is distinct (each `pop_first`
//!   linearizes exactly one removal);
//! * **delivery in timestamp order** — a quiescent drain (production finished) is
//!   strictly increasing; during concurrent production a delivered deadline may only
//!   precede deadlines inserted *after* it was popped, which the quiescent phase
//!   separates out.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use skiptrie_suite::skiptrie::{SkipTrie, SkipTrieConfig};
use skiptrie_suite::workloads::harness::{scaled, Workload};

/// Deadlines are 40-bit "microsecond" timestamps, as in the example.
const TIME_BITS: u32 = 40;

/// Concurrent produce + consume: the consumer drains with `pop_first` while
/// producers are still scheduling; everything produced is delivered exactly once.
#[test]
fn concurrent_drain_delivers_every_event_exactly_once() {
    let scheduler: Arc<SkipTrie<(usize, u64)>> =
        Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(TIME_BITS)));
    let producers = 4usize;
    let events_per_producer = scaled(8_000) as u64;
    let producers_done = Arc::new(AtomicUsize::new(0));
    let delivered: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    Workload::new(0xeede)
        .workers(producers, |mut ctx| {
            for i in 0..events_per_producer {
                let mut deadline = ctx.rng.next() % (1 << TIME_BITS);
                // Deadline collisions probe forward, as in the example.
                while !scheduler.insert(deadline, (ctx.index, i)) {
                    deadline = (deadline + 1) % (1 << TIME_BITS);
                }
            }
            producers_done.fetch_add(1, Ordering::Release);
        })
        .worker(|_ctx| {
            let mut local = Vec::new();
            loop {
                match scheduler.pop_first() {
                    Some((deadline, _payload)) => local.push(deadline),
                    None => {
                        if producers_done.load(Ordering::Acquire) == producers
                            && scheduler.is_empty()
                        {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
            delivered.lock().unwrap().extend(local);
        })
        .run();
    let delivered = delivered.lock().unwrap();
    let produced = producers as u64 * events_per_producer;
    assert_eq!(
        delivered.len() as u64,
        produced,
        "produced == consumed (no event lost or invented)"
    );
    let unique: HashSet<u64> = delivered.iter().copied().collect();
    assert_eq!(
        unique.len(),
        delivered.len(),
        "no event was delivered twice"
    );
    assert!(scheduler.is_empty(), "the schedule drained completely");
}

/// Quiescent drain: once production is finished, `pop_first` delivers strictly in
/// timestamp order and hands back exactly the scheduled payloads.
#[test]
fn quiescent_drain_is_in_timestamp_order() {
    let scheduler: Arc<SkipTrie<(usize, u64)>> =
        Arc::new(SkipTrie::new(SkipTrieConfig::for_universe_bits(TIME_BITS)));
    let producers = 4usize;
    let events_per_producer = scaled(8_000) as u64;
    let scheduled: Arc<Mutex<Vec<(u64, (usize, u64))>>> = Arc::new(Mutex::new(Vec::new()));
    Workload::new(0xd0d0)
        .workers(producers, |mut ctx| {
            let mut local = Vec::new();
            for i in 0..events_per_producer {
                let mut deadline = ctx.rng.next() % (1 << TIME_BITS);
                while !scheduler.insert(deadline, (ctx.index, i)) {
                    deadline = (deadline + 1) % (1 << TIME_BITS);
                }
                local.push((deadline, (ctx.index, i)));
            }
            scheduled.lock().unwrap().extend(local);
        })
        .run();
    // Production has quiesced (Workload::run joins); drain and compare to the model.
    let mut model: Vec<(u64, (usize, u64))> = scheduled.lock().unwrap().clone();
    model.sort_unstable_by_key(|(deadline, _)| *deadline);
    let mut last = None;
    for (deadline, payload) in &model {
        let (got_deadline, got_payload) = scheduler.pop_first().expect("event still scheduled");
        assert_eq!(got_deadline, *deadline, "delivery in timestamp order");
        assert_eq!(got_payload, *payload, "payload travels with its deadline");
        assert!(
            last.is_none_or(|l| l < got_deadline),
            "strictly increasing deadlines"
        );
        last = Some(got_deadline);
    }
    assert_eq!(scheduler.pop_first(), None);
    assert!(scheduler.is_empty());
}
