//! Race tests for the tiered read path: readers run flat out while churn writers
//! dirty the delta and a merger keeps sealing, folding and atomically swapping
//! frozen tiers underneath them.
//!
//! The invariants under test are the tiered structure's consistency contract for
//! keys that are stable across the whole run:
//!
//! * a key inserted (and merged into the frozen tier) before the race and never
//!   touched again is visible to every `get`, `predecessor` and `range` — no
//!   reader may catch a half-built tier or a swap window where the key is absent;
//! * a key removed before the race and never re-inserted stays dead: its delta
//!   tombstone must shadow the frozen entry, ride every fold, and never let the
//!   frozen copy "resurrect".

use std::sync::atomic::{AtomicUsize, Ordering};

use skiptrie_suite::skiptrie::{TieredSkipTrie, TieredSkipTrieConfig};
use skiptrie_suite::workloads::harness::{scaled, worker_rng, Workload};

const UNIVERSE_BITS: u32 = 32;
/// Stable/dead keys live well below this; churn writers stay at or above it, so
/// churn can never perturb a predecessor query aimed at the stable range.
const CHURN_BASE: u64 = 0x8000_0000;

/// Stable keys `stable_key(i)` and their shadows `stable_key(i) + 1` (the keys we
/// kill before the race): spread out, strictly below `CHURN_BASE`.
fn stable_key(i: u64) -> u64 {
    (i + 1) * 2_000_003
}

fn build(merge_every: Option<std::time::Duration>) -> (TieredSkipTrie<u64>, u64) {
    let mut config = TieredSkipTrieConfig::for_universe_bits(UNIVERSE_BITS);
    if let Some(every) = merge_every {
        config = config.with_merge_every(every);
    }
    let t: TieredSkipTrie<u64> = TieredSkipTrie::new(config);
    let stable = 512u64;
    for i in 0..stable {
        assert!(t.insert(stable_key(i), i));
        assert!(t.insert(stable_key(i) + 1, i));
    }
    // Fold everything into the frozen tier, then kill the shadows: their
    // tombstones now sit in the delta, shadowing live frozen entries, and every
    // merge of the race must carry them until the frozen copies are gone. A
    // configured background merger may win (or be mid-fold, making our explicit
    // call a no-op), so loop until the fold has landed either way.
    for _ in 0..10_000 {
        t.merge();
        if t.delta_len() == 0 && t.frozen_len() == 2 * stable as usize {
            break;
        }
        std::thread::yield_now();
    }
    assert_eq!(
        t.frozen_len(),
        2 * stable as usize,
        "prefill fold never landed"
    );
    assert_eq!(t.delta_len(), 0);
    for i in 0..stable {
        assert_eq!(t.remove(stable_key(i) + 1), Some(i));
    }
    (t, stable)
}

fn run_race(t: &TieredSkipTrie<u64>, stable: u64, explicit_merger: bool) {
    let writers = 3usize;
    let per_writer = scaled(8_000) as u64;
    let writers_done = AtomicUsize::new(0);
    let merges = AtomicUsize::new(0);

    let mut workload = Workload::new(0xE13)
        .workers(writers, |ctx| {
            // Churn confined to a per-writer slice above CHURN_BASE: inserts and
            // removes keep the delta dirty so folds always have work to do.
            let mut rng = worker_rng(0xE13, ctx.index);
            let base = CHURN_BASE + ctx.index as u64 * 0x0100_0000;
            for _ in 0..per_writer {
                let key = base + (rng.next() & 0x00FF_FFFF);
                if rng.next().is_multiple_of(3) {
                    t.remove(key);
                } else {
                    t.insert(key, key);
                }
            }
            writers_done.fetch_add(1, Ordering::SeqCst);
        })
        .workers(2, |ctx| {
            let mut rng = worker_rng(0xE14, ctx.index);
            loop {
                // Point reads against stable and dead keys.
                for _ in 0..64 {
                    let i = rng.next() % stable;
                    let k = stable_key(i);
                    assert_eq!(t.get(k), Some(i), "stable key {k} lost");
                    assert_eq!(t.get(k + 1), None, "dead key {} resurrected", k + 1);
                    // The dead key's predecessor is exactly the stable key: the
                    // tombstone must hide the frozen entry from ordered queries
                    // too, in every tier generation.
                    assert_eq!(
                        t.predecessor(k + 1),
                        Some((k, i)),
                        "pred through a tombstone"
                    );
                }
                // An ordered window over a few stable keys: all present, no dead
                // keys, strictly increasing.
                let i = rng.next() % (stable - 8);
                let lo = stable_key(i);
                let hi = stable_key(i + 7) + 1;
                let window: Vec<(u64, u64)> = t.range(lo..=hi).collect();
                let expect: Vec<(u64, u64)> = (i..i + 8).map(|j| (stable_key(j), j)).collect();
                assert_eq!(window, expect, "stable window must survive tier swaps");
                if writers_done.load(Ordering::SeqCst) == writers {
                    break;
                }
            }
        });
    if explicit_merger {
        workload = workload.worker(|_| {
            // Merge as fast as the fold allows, so readers cross as many seal and
            // publish swaps as possible.
            while writers_done.load(Ordering::SeqCst) < writers {
                if t.merge() {
                    merges.fetch_add(1, Ordering::SeqCst);
                }
                std::thread::yield_now();
            }
        });
    }
    workload.run();

    if explicit_merger {
        assert!(
            merges.load(Ordering::SeqCst) >= 2,
            "the race must actually cross tier folds"
        );
    }
    // Quiesce: fold until the delta drains (an explicit merge can no-op against a
    // background fold in flight), then the frozen tier alone must show every
    // stable key and no dead key.
    for _ in 0..10_000 {
        t.merge();
        if t.delta_len() == 0 && t.generation().is_multiple_of(2) {
            break;
        }
        std::thread::yield_now();
    }
    assert_eq!(t.delta_len(), 0, "quiesced delta drains");
    for i in 0..stable {
        let k = stable_key(i);
        assert_eq!(t.get(k), Some(i));
        assert_eq!(t.get(k + 1), None, "tombstone must survive the final fold");
    }
}

#[test]
fn readers_race_explicit_merge_swaps() {
    let (t, stable) = build(None);
    run_race(&t, stable, true);
    assert!(
        t.generation() >= 5,
        "prefill fold + >=2 race folds, two swaps each: generation {}",
        t.generation()
    );
}

#[test]
fn readers_race_the_background_merger() {
    let (t, stable) = build(Some(std::time::Duration::from_millis(1)));
    run_race(&t, stable, false);
}
