//! Stall-robustness of the reclamation substrates (experiment E15's test twin).
//!
//! The scenario both substrates are measured against: one reader pins, parks on a
//! barrier, and holds its guard across the whole churn window while writers keep
//! deleting. Under EBR the parked guard freezes the global epoch, so *every*
//! deferral made during the window stays pending — garbage grows with churn,
//! without bound. Under the hazard substrate the parked guard protects only the
//! era interval it pinned at: objects born *after* the reader pinned are freed as
//! soon as they are retired and scanned, so pending garbage stays bounded by the
//! working set the reader could actually have seen, no matter how long the churn
//! runs.
//!
//! The assertions use [`epoch::domain_stats`] — exact per-domain gauges, not the
//! process-wide metrics counters — on domains private to this file, so parallel
//! tests cannot inflate them (the PR 7 exact-assert isolation rule). The EBR
//! growth assertions are `>=` (inflation-safe); the hazard assertion is the one
//! *upper* bound, on a domain nothing else touches.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use skiptrie_suite::atomics as epoch;
use skiptrie_suite::skiptrie::{Reclaimer, SkipTrie, SkipTrieConfig};
use skiptrie_suite::workloads::harness::{scaled, Workload};

const UNIVERSE_BITS: u32 = 32;

// Domains private to this file: 16/17 for the EBR A/B pair, 19 for the hazard
// stall, 20 for the tiered regression, 15 for the splitorder regression. Other
// suites use 7 (domain_isolation) and 11 (splitorder's own tests).
const EBR_BASELINE_DOMAIN: usize = 16;
const EBR_STALL_DOMAIN: usize = 17;
const HP_STALL_DOMAIN: usize = 19;

/// Fibonacci spread matching `KeyDist::ScatteredSet`.
fn spread(index: u64) -> u64 {
    index.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << UNIVERSE_BITS) - 1)
}

/// Pins and flushes `domain` through `reclaimer` until its pending-garbage gauge
/// reads zero (reclamation is eventual: exiting threads publish garbage from TLS
/// teardown, which can lag a join).
fn drain_domain(domain: usize, reclaimer: Reclaimer) -> bool {
    for _ in 0..10_000 {
        epoch::pin_domain_with(domain, reclaimer).flush();
        if epoch::domain_stats(domain, reclaimer).pending == 0 {
            return true;
        }
        std::thread::yield_now();
    }
    epoch::domain_stats(domain, reclaimer).pending == 0
}

struct ChurnOutcome {
    /// High-water mark of the domain's pending-garbage gauge after the churn.
    hwm: u64,
    /// Successful removals performed while the reader (if any) was parked — each
    /// one deferred at least one closure into the domain, so it floors the EBR
    /// pending count.
    stall_removes: u64,
}

/// Inserts a working set, optionally parks a reader holding a guard, then churns
/// with 4 writers and reports the domain's garbage high-water mark.
fn churn(domain: usize, reclaimer: Reclaimer, stall_reader: bool) -> ChurnOutcome {
    let working_set = scaled(2_000) as u64;
    let writer_iters = scaled(40_000);
    let config = SkipTrieConfig::for_universe_bits(UNIVERSE_BITS)
        .with_domain(domain)
        .with_reclaimer(reclaimer);
    let trie: SkipTrie<u64> = SkipTrie::new(config);
    for i in 0..working_set {
        trie.insert(spread(i), i);
    }
    // Quiesce the warm-up garbage so the stall window starts clean.
    assert!(
        drain_domain(domain, reclaimer),
        "warm-up garbage never drained in domain {domain}"
    );

    let ready = Barrier::new(2);
    let release = Barrier::new(2);
    let removes = AtomicUsize::new(0);

    std::thread::scope(|s| {
        if stall_reader {
            s.spawn(|| {
                // The stalled reader: pin through the trie (so the guard rides the
                // configured substrate), prove the pin by reading, then park while
                // holding the guard across the entire churn window.
                let guard = trie.pin();
                let _ = guard.current_era();
                ready.wait();
                release.wait();
                drop(guard);
                trie.pin().flush();
            });
            ready.wait();
        }

        Workload::new(0x57A1)
            .workers(4, |mut ctx| {
                for i in 0..writer_iters {
                    let key = spread(ctx.rng.next() % working_set);
                    if ctx.rng.next() % 2 == 0 {
                        trie.insert(key, key);
                    } else if trie.remove(key).is_some() {
                        removes.fetch_add(1, Ordering::Relaxed);
                    }
                    // Periodic flush: with no stalled reader this lets collection
                    // keep pace (the baseline hwm stays at batch scale even when
                    // the box is loaded and writers outrun the collector); with a
                    // stalled reader it frees nothing — the parked guard freezes
                    // the epoch — so the stalled hwm keeps its churn floor.
                    if i % 1024 == 1023 {
                        trie.pin().flush();
                    }
                }
                // Publish this worker's partial garbage before the join.
                trie.pin().flush();
            })
            .run();

        if stall_reader {
            release.wait();
        }
    });

    let hwm = epoch::domain_stats(domain, reclaimer).hwm;
    // With the reader gone, everything must drain back to zero — a leak here
    // means a deferral was lost (EBR) or an interval never uncovered (hazard).
    assert!(
        drain_domain(domain, reclaimer),
        "domain {domain} never drained after the reader released: {:?}",
        epoch::domain_stats(domain, reclaimer)
    );
    ChurnOutcome {
        hwm,
        stall_removes: removes.load(Ordering::Relaxed) as u64,
    }
}

/// EBR under a stalled reader: every deferral made during the stall window stays
/// pending (the parked guard freezes the epoch), so the high-water mark must
/// clear the churn-proportional floor and dwarf the no-stall baseline — the
/// unbounded-growth half of the E15 headline.
#[test]
fn ebr_garbage_grows_with_churn_under_a_stalled_reader() {
    let baseline = churn(EBR_BASELINE_DOMAIN, Reclaimer::Ebr, false);
    let stalled = churn(EBR_STALL_DOMAIN, Reclaimer::Ebr, true);
    // Every successful removal during the stall deferred at least one closure,
    // and none of them could be freed while the reader held its pin.
    assert!(
        stalled.hwm >= stalled.stall_removes,
        "EBR high-water mark {} fell below the churn floor of {} stalled removals",
        stalled.hwm,
        stalled.stall_removes
    );
    // The margin is 2x, not 10x: on an oversubscribed host (1-CPU containers,
    // loaded CI runners) a *descheduled* writer holding a pin blocks epoch
    // advance for its whole timeslice out, so the no-stall baseline's hwm
    // legitimately spikes to a fraction of the window's churn — involuntary
    // mini-stalls. The stalled run still holds *everything* (the churn-floor
    // assert above), so it clears 2x even there; idle hosts show 10x+.
    assert!(
        stalled.hwm >= 2 * baseline.hwm.max(1),
        "EBR high-water mark {} did not grow >= 2x over the quiesced baseline {}",
        stalled.hwm,
        baseline.hwm
    );
}

/// The hazard substrate under the same stalled reader: the parked guard protects
/// only the era interval it pinned at, so objects born after the pin free as the
/// churn runs and the high-water mark stays under a bound fixed by the working
/// set — independent of how much churn the window carries. This is the bounded
/// half of the E15 headline.
#[test]
fn hazard_garbage_stays_bounded_under_a_stalled_reader() {
    let working_set = scaled(2_000) as u64;
    let stalled = churn(HP_STALL_DOMAIN, Reclaimer::Hazard, true);
    // The reader's interval covers only objects born before it pinned: the
    // working set's towers and trie nodes (a small constant per key), plus each
    // thread's unscanned in-flight batch. 8x the working set plus slack is far
    // above anything the covered set can reach, and far below what the churn
    // (4 x scaled(40_000) operations) would pend under EBR.
    let bound = 8 * working_set + 8_192;
    assert!(
        stalled.hwm <= bound,
        "hazard high-water mark {} exceeded the stall bound {} (working set {})",
        stalled.hwm,
        bound,
        working_set
    );
    // The run must still have churned enough for the bound to mean something.
    assert!(
        stalled.stall_removes > 4 * working_set,
        "churn too small to exercise the bound: {} removals",
        stalled.stall_removes
    );
}

/// Regression for the retire-site sweep (tiered swap): the tiered engine's own
/// tier-`Arc` swaps stay on EBR by design, but its delta SkipTrie rides the
/// configured substrate — a hazard-configured delta must merge, read back, and
/// drain its domain without leaking either substrate's garbage.
#[test]
fn tiered_engine_with_a_hazard_delta_merges_and_drains() {
    use skiptrie_suite::skiptrie::{TieredSkipTrie, TieredSkipTrieConfig};
    const TIERED_DOMAIN: usize = 20;

    let trie_config = SkipTrieConfig::for_universe_bits(UNIVERSE_BITS)
        .with_domain(TIERED_DOMAIN)
        .with_reclaimer(Reclaimer::Hazard);
    let config = TieredSkipTrieConfig::for_universe_bits(UNIVERSE_BITS).with_trie(trie_config);
    let t: TieredSkipTrie<u64> = TieredSkipTrie::new(config);

    let n = scaled(4_000) as u64;
    for i in 0..n {
        assert!(t.insert(spread(i), i));
    }
    // Fold into the frozen tier (retires the delta through the domain), then
    // delete half and fold again so tombstones churn the hazard delta too.
    for _ in 0..10_000 {
        t.merge();
        if t.delta_len() == 0 {
            break;
        }
        std::thread::yield_now();
    }
    assert_eq!(t.delta_len(), 0, "prefill fold never landed");
    for i in 0..n / 2 {
        assert_eq!(t.remove(spread(i)), Some(i));
    }
    for _ in 0..10_000 {
        t.merge();
        if t.delta_len() == 0 {
            break;
        }
        std::thread::yield_now();
    }
    for i in 0..n {
        let expected = if i < n / 2 { None } else { Some(i) };
        assert_eq!(t.get(spread(i)), expected, "key {i} wrong after the folds");
    }
    drop(t);
    assert!(
        drain_domain(TIERED_DOMAIN, Reclaimer::Hazard),
        "hazard garbage leaked: {:?}",
        epoch::domain_stats(TIERED_DOMAIN, Reclaimer::Hazard)
    );
    assert!(
        drain_domain(TIERED_DOMAIN, Reclaimer::Ebr),
        "EBR (tier-swap) garbage leaked: {:?}",
        epoch::domain_stats(TIERED_DOMAIN, Reclaimer::Ebr)
    );
}

/// Regression for the retire-site sweep (split-ordered victim retire): removals
/// from a hazard-configured map retire each victim with its stored birth era and
/// the domain drains to zero — a mis-stamped birth would either leak (pending
/// never reaches zero) or free early (caught by the vendored proptest model).
#[test]
fn splitorder_map_removal_drains_under_the_hazard_substrate() {
    use skiptrie_suite::skiptrie::DirectoryConfig;
    use skiptrie_suite::splitorder::SplitOrderedMap;
    const MAP_DOMAIN: usize = 15;

    let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::with_directory_in_domain(
        DirectoryConfig::default(),
        Some(MAP_DOMAIN),
        Reclaimer::Hazard,
    );
    let n = scaled(8_000) as u64;
    Workload::new(0x50AF)
        .workers(4, |ctx| {
            let lane = ctx.index as u64;
            for i in 0..n {
                let key = spread(i * 4 + lane);
                map.insert(key, key + 1);
                if i % 2 == 0 {
                    assert_eq!(map.remove(&key), Some(key + 1));
                }
            }
        })
        .run();
    drop(map);
    assert!(
        drain_domain(MAP_DOMAIN, Reclaimer::Hazard),
        "hazard garbage leaked: {:?}",
        epoch::domain_stats(MAP_DOMAIN, Reclaimer::Hazard)
    );
}
