//! Race tests for the tiered forest: readers stitch ranges across shard
//! boundaries while churn writers trip per-shard watermarks and the background
//! coordinator seals, folds and republishes tiers underneath them.
//!
//! The invariants under test are the forest-level consistency contract for
//! keys that are stable across the whole run:
//!
//! * a key folded into some shard's frozen tier before the race and never
//!   touched again is visible to every `get`, `predecessor` and stitched
//!   `range` — no reader may catch a shard mid-fold with the key absent;
//! * a key removed before the race and never re-inserted stays dead: its
//!   tombstone must shadow the frozen entry through every watermark-driven
//!   fold, in whichever shard it lives;
//! * concurrent cross-shard `pop_first` drains are exactly-once even while
//!   the shards being popped are sealing and folding.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use skiptrie_suite::skiptrie::{ShardedSkipTrieConfig, TieredForest};
use skiptrie_suite::workloads::harness::{scaled, worker_rng, Workload};

const UNIVERSE_BITS: u32 = 32;
const SHARDS: usize = 8;
/// Stable/dead keys live well below this; churn writers stay at or above it,
/// in the upper shards, so churn never perturbs an ordered query aimed at the
/// stable range — but folds in the lower shards still fire, because removals
/// of dead-key shadows and the coordinator's staggered sweeps touch them.
const CHURN_BASE: u64 = 0x8000_0000;

/// Stable keys `stable_key(i)` and their shadows `stable_key(i) + 1` (the keys
/// we kill before the race). The stride spreads them across shards 0..=2 of 8,
/// so an 8-key window routinely straddles a shard boundary and `range` must
/// stitch per-shard iterators whose tiers are swapping independently.
fn stable_key(i: u64) -> u64 {
    (i + 1) * 3_000_017
}

fn build(watermark: usize) -> (TieredForest<u64>, u64) {
    let stable = 512u64;
    let mut seeded: Vec<(u64, u64)> = Vec::with_capacity(2 * stable as usize);
    for i in 0..stable {
        seeded.push((stable_key(i), i));
        seeded.push((stable_key(i) + 1, i));
    }
    let f: TieredForest<u64> = TieredForest::from_sorted(
        ShardedSkipTrieConfig::for_universe_bits(UNIVERSE_BITS)
            .with_shards(SHARDS)
            .with_merge_watermark(watermark),
        &seeded,
    );
    assert!(f.is_quiesced(), "from_sorted seeds straight into frozen");
    assert_eq!(f.frozen_len(), 2 * stable as usize);
    // Kill the shadows: their tombstones now sit in per-shard deltas, shadowing
    // live frozen entries, and every fold of the race must carry them until the
    // frozen copies are gone.
    for i in 0..stable {
        assert_eq!(f.remove(stable_key(i) + 1), Some(i));
    }
    (f, stable)
}

fn run_race(f: &TieredForest<u64>, stable: u64) {
    let writers = 3usize;
    let per_writer = scaled(8_000) as u64;
    let writers_done = AtomicUsize::new(0);

    Workload::new(0xE15)
        .workers(writers, |ctx| {
            // Churn confined to a per-writer slice in the upper shards: inserts
            // and removes keep per-shard deltas crossing the watermark so the
            // coordinator always has folds to stagger.
            let mut rng = worker_rng(0xE15, ctx.index);
            let base = CHURN_BASE + ctx.index as u64 * 0x2000_0000;
            for _ in 0..per_writer {
                let key = base + (rng.next() & 0x00FF_FFFF);
                if rng.next().is_multiple_of(3) {
                    f.remove(key);
                } else {
                    f.insert(key, key);
                }
            }
            writers_done.fetch_add(1, Ordering::SeqCst);
        })
        .workers(2, |ctx| {
            let mut rng = worker_rng(0xE16, ctx.index);
            loop {
                // Point reads against stable and dead keys, across shards.
                for _ in 0..64 {
                    let i = rng.next() % stable;
                    let k = stable_key(i);
                    assert_eq!(f.get(k), Some(i), "stable key {k} lost");
                    assert_eq!(f.get(k + 1), None, "dead key {} resurrected", k + 1);
                    // The dead key's predecessor is exactly the stable key: the
                    // tombstone must hide the frozen entry from ordered queries
                    // in every tier generation of whichever shard holds it.
                    assert_eq!(
                        f.predecessor(k + 1),
                        Some((k, i)),
                        "pred through a tombstone"
                    );
                }
                // A stitched window over a few stable keys — frequently spanning
                // a shard boundary: all present, no dead keys, in order.
                let i = rng.next() % (stable - 8);
                let lo = stable_key(i);
                let hi = stable_key(i + 7) + 1;
                let window: Vec<(u64, u64)> = f.range(lo..=hi).collect();
                let expect: Vec<(u64, u64)> = (i..i + 8).map(|j| (stable_key(j), j)).collect();
                assert_eq!(window, expect, "stable window must survive shard folds");
                if writers_done.load(Ordering::SeqCst) == writers {
                    break;
                }
            }
        })
        .run();

    // The churn volume dwarfs the watermark: background folds must have fired
    // with no timer anywhere in the system.
    let race_folds: u64 = (0..f.shard_count()).map(|i| f.shard(i).generation()).sum();
    assert!(
        race_folds > f.shard_count() as u64,
        "watermark-driven folds never fired during the race (gen sum {race_folds})"
    );
    f.quiesce();
    assert!(
        f.is_quiesced(),
        "quiesce drains every delta and sealed tier"
    );
    for i in 0..stable {
        let k = stable_key(i);
        assert_eq!(f.get(k), Some(i));
        assert_eq!(f.get(k + 1), None, "tombstone must survive the final fold");
    }
}

#[test]
fn readers_stitch_ranges_across_watermark_folds() {
    let (f, stable) = build(256);
    run_race(&f, stable);
}

#[test]
fn readers_survive_staggered_folds_at_stripe_two() {
    // Same race, but the coordinator folds due shards two at a time, so
    // readers can observe two shards mid-fold in a single stitched range.
    let stable = 512u64;
    let mut seeded: Vec<(u64, u64)> = Vec::with_capacity(2 * stable as usize);
    for i in 0..stable {
        seeded.push((stable_key(i), i));
        seeded.push((stable_key(i) + 1, i));
    }
    let f: TieredForest<u64> = TieredForest::from_sorted_with_stripe(
        ShardedSkipTrieConfig::for_universe_bits(UNIVERSE_BITS)
            .with_shards(SHARDS)
            .with_merge_watermark(256),
        &seeded,
        2,
    );
    for i in 0..stable {
        assert_eq!(f.remove(stable_key(i) + 1), Some(i));
    }
    run_race(&f, stable);
}

#[test]
fn cross_shard_pops_are_exactly_once_under_folds() {
    // Distinct keys spread over every shard; poppers drain the forest while
    // pop-generated tombstones trip the watermark and shards fold mid-drain.
    // Every key must be popped exactly once, by exactly one thread.
    let n = scaled(20_000) as u64;
    // A stride that spreads n keys across the whole universe (hence across
    // every shard) without ever leaving it, at any SKIPTRIE_SCALE.
    let stride = u64::from(u32::MAX) / (n + 1);
    let keys: Vec<(u64, u64)> = (0..n).map(|i| (i * stride + 7, i)).collect();
    let f: TieredForest<u64> = TieredForest::from_sorted(
        ShardedSkipTrieConfig::for_universe_bits(UNIVERSE_BITS)
            .with_shards(SHARDS)
            .with_merge_watermark(128),
        &keys,
    );
    assert_eq!(f.len(), n as usize);

    let poppers = 4usize;
    let popped: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::with_capacity(n as usize));
    Workload::new(0xE17)
        .workers(poppers, |_ctx| {
            let mut local = Vec::new();
            while let Some(entry) = f.pop_first() {
                local.push(entry);
            }
            popped.lock().expect("popped lock").extend(local);
        })
        .run();

    let mut drained = popped.into_inner().expect("popped lock");
    assert_eq!(drained.len(), n as usize, "every key popped exactly once");
    drained.sort_unstable();
    assert_eq!(drained, keys, "no key lost, duplicated, or invented");
    assert!(f.is_empty());
    f.quiesce();
    assert_eq!(
        f.frozen_len(),
        0,
        "drained forest folds down to empty tiers"
    );
}
