//! Umbrella crate for the SkipTrie reproduction workspace.
//!
//! This crate exists to host the runnable [examples](https://doc.rust-lang.org/cargo/reference/cargo-targets.html#examples)
//! and the cross-crate integration tests in `/tests`. It simply re-exports the
//! member crates so that examples and tests can use a single import root.

#![warn(missing_docs)]

pub use skiptrie;
pub use skiptrie_atomics as atomics;
pub use skiptrie_baselines as baselines;
pub use skiptrie_metrics as metrics;
pub use skiptrie_service as service;
pub use skiptrie_skiplist as skiplist;
pub use skiptrie_splitorder as splitorder;
pub use skiptrie_workloads as workloads;
