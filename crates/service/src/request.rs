//! Request/response vocabulary for the serving pipeline.
//!
//! Every operation the pipeline serves — from the closed-loop bench harness to
//! the open-loop `e16_serving` driver — is expressed as a [`Verb`]. A [`Verb`]
//! plus the caller's submit timestamp forms a [`Request`]; the executed result
//! comes back as a [`Response`] carrying the [`Reply`] payload and the three
//! timestamps (submit, enqueue, done) that make both coordinated-omission-aware
//! and service-time-only latency measurable from the same run.

/// One operation against the ordered-KV service. Keys and values are `u64`
/// (the wire plane fixes `V = u64`; the structures underneath stay generic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verb {
    /// Point lookup: value stored under the key, if any.
    Get(u64),
    /// Point insert: `(key, value)`; replies whether the key was newly inserted.
    Insert(u64, u64),
    /// Point remove: replies with the removed value, if the key was present.
    Remove(u64),
    /// Ordered query: greatest entry with key `<=` the argument.
    Predecessor(u64),
    /// Ordered query: least entry with key `>=` the argument.
    Successor(u64),
    /// Range scan: up to `limit` entries with keys `>= from`, ascending.
    Scan {
        /// Inclusive lower bound of the scan.
        from: u64,
        /// Maximum number of entries returned.
        limit: usize,
    },
    /// Priority-queue pop: remove and return the least entry.
    PopFirst,
    /// Priority-queue pop: remove and return the greatest entry.
    PopLast,
    /// Bulk insert; replies with the number of keys newly inserted.
    InsertBatch(Vec<(u64, u64)>),
    /// Bulk remove; replies with the number of keys actually removed.
    RemoveBatch(Vec<u64>),
    /// Bulk lookup; replies with the number of keys found present.
    GetBatch(Vec<u64>),
}

/// Latency class a [`Verb`] is accounted under. The serving pipeline keeps one
/// histogram per class (see [`crate::Service::virtual_latency`]) so tail
/// behaviour of cheap point ops is not averaged away by scans and pops.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-key get/insert/remove.
    Point,
    /// Predecessor/successor queries.
    Ordered,
    /// Range scans.
    Range,
    /// `pop_first` / `pop_last` (contended-minimum workloads).
    Pop,
    /// Caller-supplied bulk verbs (`InsertBatch` / `RemoveBatch` / `GetBatch`).
    Batch,
}

impl OpClass {
    /// Every class, in the order used for latency-table rows.
    pub const ALL: [OpClass; 5] = [
        OpClass::Point,
        OpClass::Ordered,
        OpClass::Range,
        OpClass::Pop,
        OpClass::Batch,
    ];

    /// Stable lowercase label (column/row key in reports and JSON).
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Point => "point",
            OpClass::Ordered => "ordered",
            OpClass::Range => "range",
            OpClass::Pop => "pop",
            OpClass::Batch => "batch",
        }
    }

    /// Index of this class within [`OpClass::ALL`] (and within the pipeline's
    /// `LatencyClasses` recorders).
    pub fn index(self) -> usize {
        self as usize
    }

    /// All five labels, matching [`OpClass::ALL`] order.
    pub fn labels() -> [&'static str; 5] {
        [
            OpClass::Point.label(),
            OpClass::Ordered.label(),
            OpClass::Range.label(),
            OpClass::Pop.label(),
            OpClass::Batch.label(),
        ]
    }
}

impl Verb {
    /// The latency class this verb is recorded under.
    pub fn class(&self) -> OpClass {
        match self {
            Verb::Get(_) | Verb::Insert(_, _) | Verb::Remove(_) => OpClass::Point,
            Verb::Predecessor(_) | Verb::Successor(_) => OpClass::Ordered,
            Verb::Scan { .. } => OpClass::Range,
            Verb::PopFirst | Verb::PopLast => OpClass::Pop,
            Verb::InsertBatch(_) | Verb::RemoveBatch(_) | Verb::GetBatch(_) => OpClass::Batch,
        }
    }

    /// Key used to pick the owning shard. Ordered and range verbs route by
    /// their probe key (the worker then steps across shards read-only via the
    /// router); fenced verbs ([`OpClass::Pop`] / [`OpClass::Batch`]) execute on
    /// the submitting thread and return `None`.
    pub fn routing_key(&self) -> Option<u64> {
        match self {
            Verb::Get(k)
            | Verb::Insert(k, _)
            | Verb::Remove(k)
            | Verb::Predecessor(k)
            | Verb::Successor(k) => Some(*k),
            Verb::Scan { from, .. } => Some(*from),
            Verb::PopFirst
            | Verb::PopLast
            | Verb::InsertBatch(_)
            | Verb::RemoveBatch(_)
            | Verb::GetBatch(_) => None,
        }
    }
}

/// A [`Verb`] stamped with the moment the caller *intended* to send it.
///
/// Under open-loop load `submit_ns` is the **virtual send time** from the
/// arrival schedule, not the instant `submit` was called — that distinction is
/// what lets the pipeline report coordinated-omission-inclusive latency.
#[derive(Clone, Debug)]
pub struct Request {
    /// The operation to execute.
    pub verb: Verb,
    /// Virtual send time, in nanoseconds on the service clock
    /// ([`crate::Service::now_ns`]).
    pub submit_ns: u64,
}

/// Result payload of an executed [`Verb`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// From [`Verb::Insert`]: `true` iff the key was newly inserted.
    Inserted(bool),
    /// From [`Verb::Remove`]: the removed value, if present.
    Removed(Option<u64>),
    /// From [`Verb::Get`]: the value under the key, if present.
    Value(Option<u64>),
    /// From predecessor/successor/pop verbs: the affected entry, if any.
    Entry(Option<(u64, u64)>),
    /// From [`Verb::Scan`]: the entries found, ascending by key.
    Entries(Vec<(u64, u64)>),
    /// From the bulk verbs: how many keys were inserted/removed/found.
    Count(usize),
}

/// A completed request: the reply plus the per-request sequence number and the
/// three timestamps latency accounting needs.
#[derive(Clone, Debug)]
pub struct Response {
    /// Per-connection sequence number assigned at submit, starting from 0.
    pub seq: u64,
    /// The operation's result.
    pub reply: Reply,
    /// Latency class the request was recorded under.
    pub class: OpClass,
    /// Virtual send time copied from the [`Request`].
    pub submit_ns: u64,
    /// When the request was accepted into a shard mailbox (service clock).
    pub enqueue_ns: u64,
    /// When the shard worker finished executing it (service clock).
    pub done_ns: u64,
}

impl Response {
    /// Coordinated-omission-inclusive latency: completion minus *virtual* send
    /// time. Under overload this keeps growing with the backlog.
    pub fn virtual_latency_ns(&self) -> u64 {
        self.done_ns.saturating_sub(self.submit_ns)
    }

    /// Service-time-only latency: completion minus mailbox admission. This is
    /// the figure a closed-loop harness would (misleadingly) report alone.
    pub fn service_latency_ns(&self) -> u64 {
        self.done_ns.saturating_sub(self.enqueue_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_all_verbs_and_labels_are_stable() {
        assert_eq!(Verb::Get(1).class(), OpClass::Point);
        assert_eq!(Verb::Insert(1, 2).class(), OpClass::Point);
        assert_eq!(Verb::Remove(1).class(), OpClass::Point);
        assert_eq!(Verb::Predecessor(1).class(), OpClass::Ordered);
        assert_eq!(Verb::Successor(1).class(), OpClass::Ordered);
        assert_eq!(Verb::Scan { from: 0, limit: 4 }.class(), OpClass::Range);
        assert_eq!(Verb::PopFirst.class(), OpClass::Pop);
        assert_eq!(Verb::PopLast.class(), OpClass::Pop);
        assert_eq!(Verb::InsertBatch(vec![]).class(), OpClass::Batch);
        assert_eq!(Verb::RemoveBatch(vec![]).class(), OpClass::Batch);
        assert_eq!(Verb::GetBatch(vec![]).class(), OpClass::Batch);
        assert_eq!(
            OpClass::labels(),
            ["point", "ordered", "range", "pop", "batch"]
        );
        for (i, class) in OpClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn routing_keys_follow_the_probe_key() {
        assert_eq!(Verb::Get(7).routing_key(), Some(7));
        assert_eq!(Verb::Scan { from: 9, limit: 1 }.routing_key(), Some(9));
        assert_eq!(Verb::PopFirst.routing_key(), None);
        assert_eq!(Verb::InsertBatch(vec![(1, 1)]).routing_key(), None);
    }

    #[test]
    fn latency_views_saturate_rather_than_wrap() {
        let r = Response {
            seq: 0,
            reply: Reply::Value(None),
            class: OpClass::Point,
            submit_ns: 100,
            enqueue_ns: 40,
            done_ns: 90,
        };
        // Virtual send time can postdate completion when the driver catches up
        // on a backlog; latency clamps to zero instead of wrapping.
        assert_eq!(r.virtual_latency_ns(), 0);
        assert_eq!(r.service_latency_ns(), 50);
    }
}
