//! Hand-rolled bounded single-producer/single-consumer ring.
//!
//! The pipeline's mailboxes are strictly SPSC by construction: a request ring
//! is written only by the connection that owns the lane and read only by the
//! lane's shard worker; a response ring is the mirror image. That discipline
//! lets the ring get away with two atomic cursors and no CAS loops — a push is
//! one load + one store + one release store, a pop the mirror image.
//!
//! The ring is *bounded and fail-fast*: [`Spsc::push`] returns the rejected
//! value instead of blocking or growing, which is exactly the hook the
//! admission layer needs to convert a full mailbox into backpressure (shed)
//! rather than unbounded queueing.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bounded SPSC ring buffer with power-of-two capacity.
///
/// # Safety contract (enforced by the pipeline's ownership structure)
///
/// At most one thread may call [`Spsc::push`] concurrently, and at most one
/// (possibly different) thread may call [`Spsc::pop`] concurrently. The
/// methods take `&self` because producer and consumer are different threads
/// sharing the ring through an `Arc`; the single-producer/single-consumer
/// requirement is what makes the unsynchronised slot accesses sound.
pub struct Spsc<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Written only by the consumer.
    head: AtomicUsize,
    /// Next slot the producer will write. Written only by the producer.
    tail: AtomicUsize,
}

// SAFETY: values of T move across the ring from producer to consumer, so T
// must be Send; the ring itself is shared by reference between exactly those
// two threads, with slot accesses ordered by the acquire/release cursor pair.
unsafe impl<T: Send> Send for Spsc<T> {}
unsafe impl<T: Send> Sync for Spsc<T> {}

impl<T> Spsc<T> {
    /// Creates a ring holding up to `capacity` values. `capacity` is rounded
    /// up to the next power of two (minimum 2) so index masking is a single
    /// AND.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Spsc {
            slots,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Number of slots (the rounded-up capacity).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Values currently in flight. Exact only from the producer or consumer
    /// thread; from anywhere else it is a point-in-time estimate.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the ring currently holds no values (same caveat as [`len`](Spsc::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer side: appends `value`, or returns it if the ring is full.
    ///
    /// Must only be called from the single producer thread.
    pub fn push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.slots.len() {
            return Err(value);
        }
        // SAFETY: slot `tail & mask` is outside the [head, tail) live window,
        // so the consumer does not touch it; we are the only producer.
        unsafe {
            (*self.slots[tail & self.mask].get()).write(value);
        }
        // Release pairs with the consumer's acquire load of `tail`, publishing
        // the slot write before the new tail becomes visible.
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: removes and returns the oldest value, if any.
    ///
    /// Must only be called from the single consumer thread.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: slot `head & mask` is inside the live window, fully written
        // (the acquire on `tail` ordered the producer's write before this
        // read), and we are the only consumer.
        let value = unsafe { (*self.slots[head & self.mask].get()).assume_init_read() };
        // Release pairs with the producer's acquire load of `head`, returning
        // the slot to the producer only after our read is done.
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

impl<T> Drop for Spsc<T> {
    fn drop(&mut self) {
        // Exclusive access: drain whatever is still live so T's destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity_rounding() {
        let ring: Spsc<u32> = Spsc::with_capacity(3);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            assert!(ring.push(i).is_ok());
        }
        assert_eq!(ring.push(99), Err(99));
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn wraparound_preserves_values() {
        let ring: Spsc<u64> = Spsc::with_capacity(4);
        for round in 0..100u64 {
            assert!(ring.push(round).is_ok());
            assert!(ring.push(round + 1000).is_ok());
            assert_eq!(ring.pop(), Some(round));
            assert_eq!(ring.pop(), Some(round + 1000));
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn cross_thread_transfer_is_lossless() {
        const N: u64 = 200_000;
        let ring: Arc<Spsc<u64>> = Arc::new(Spsc::with_capacity(64));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    loop {
                        match ring.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            })
        };
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = ring.pop() {
                assert_eq!(v, expected, "ring reordered or dropped a value");
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn drop_runs_destructors_of_undrained_values() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        {
            let ring: Spsc<Token> = Spsc::with_capacity(8);
            for _ in 0..5 {
                assert!(ring.push(Token).is_ok());
            }
            drop(ring.pop());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }
}
