//! One request plane from wire to shard for the SkipTrie forest.
//!
//! This crate is the serving pipeline layer of the reproduction: every
//! operation — point, ordered, range, pop or bulk — enters as a [`Request`]
//! (a [`Verb`] plus the caller's *virtual* send time), is routed by the top
//! key bits to a shared-nothing **thread-per-shard** executor over bounded
//! SPSC mailboxes, optionally coalesced with its queue neighbours into the
//! router's batch entry points, and leaves as a [`Response`] carrying enough
//! timestamps to report both coordinated-omission-inclusive and
//! service-time-only latency per [`OpClass`].
//!
//! Bounded queues make overload a *measured* state instead of a hidden one:
//! admission rejects requests past the per-lane in-flight cap
//! (`SKIPTRIE_SVC_QUEUE_CAP`), and the `SvcEnqueued` / `SvcShed` /
//! `SvcBatchSize` counters in `skiptrie-metrics` expose exactly how much was
//! accepted, refused and coalesced.
//!
//! Entry points: build a [`Service`] over an `Arc<ShardedSkipTrie<u64, E>>`
//! (e.g. a `TieredForest`'s router), open one [`Connection`] per client
//! thread, and drive it open-loop with `skiptrie-workloads`' `LoadDriver`.
//! See `DESIGN.md` §"Serving pipeline" and experiment E16.

#![warn(missing_docs)]

mod request;
mod service;
mod spsc;

pub use request::{OpClass, Reply, Request, Response, Verb};
pub use service::{Connection, Service, ServiceConfig};
pub use spsc::Spsc;
