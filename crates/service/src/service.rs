//! The serving pipeline: thread-per-shard executors behind bounded SPSC
//! mailboxes, with per-connection coalescing and admission-based backpressure.
//!
//! # Architecture
//!
//! A [`Service`] wraps a shard router (`ShardedSkipTrie`) and spawns **one
//! worker thread per shard**. Each [`Connection`] owns one *lane* per shard — a
//! pair of bounded SPSC rings (requests in, responses out) plus in-flight
//! accounting — so every ring in the system has exactly one producer and one
//! consumer and needs no CAS.
//!
//! * **Routing.** Point verbs go to the worker owning `shard_of(key)`. Ordered
//!   and range verbs route by their probe key but the worker executes them
//!   through the *router*, so read-only stepping across shard boundaries works.
//!   Pop and caller-supplied batch verbs are **fenced**: the connection waits
//!   for its own in-flight requests to complete, then executes the verb inline
//!   on the submitting thread (preserving per-connection program order without
//!   cross-worker coordination).
//! * **Backpressure.** Admission requires `submitted - drained < queue_cap`
//!   per lane. Because a response is only produced after its request leaves
//!   the request ring, this single check bounds *both* rings; a full lane
//!   rejects the request ([`Connection::submit`] returns it) and bumps
//!   [`Counter::SvcShed`]. Nothing in the pipeline blocks or grows without
//!   bound.
//! * **Coalescing.** A worker drains each lane in FIFO order up to
//!   `coalesce` requests per pass and executes *adjacent runs of same-kind
//!   point verbs* through the router's batch entry points
//!   (`get_batch` / `insert_batch_flags` / `remove_batch_values`), which sort
//!   once and thread successor hints through each shard run. Replies stay
//!   per-request exact. Runs of length ≥ 2 bump [`Counter::SvcBatchSize`] by
//!   the run length.
//!
//! # Knobs
//!
//! * `SKIPTRIE_SVC_QUEUE_CAP` — per-lane in-flight bound (default 1024).
//! * `SKIPTRIE_SVC_COALESCE` — max requests a worker drains from one lane per
//!   pass, which is also the max coalesced-run length (default 64).
//!
//! Both parse fail-loud through the same knob machinery as every other
//! `SKIPTRIE_*` variable: a malformed value panics with the offending text
//! instead of being silently ignored.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, JoinHandle, Thread};
use std::time::{Duration, Instant};

use skiptrie::{ShardEngine, ShardedSkipTrie};
use skiptrie_metrics::{add, record, Counter, LatencyClasses};
use skiptrie_workloads::harness::env_knob;

use crate::request::{OpClass, Reply, Request, Response, Verb};
use crate::spsc::Spsc;

/// How long a worker sleeps when its lanes are empty before re-polling on its
/// own. The sleeping-flag handshake makes producer wakeups prompt; the timeout
/// only bounds the damage of a lost-wakeup race.
const IDLE_PARK: Duration = Duration::from_millis(1);

/// Tuning for a [`Service`], normally read from the environment.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Per-(connection, shard) in-flight bound; both mailbox rings are sized
    /// to this. Rounded up to a power of two.
    pub queue_cap: usize,
    /// Max requests a worker drains from one lane per pass (= max coalesced
    /// run length).
    pub coalesce: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_cap: 1024,
            coalesce: 64,
        }
    }
}

impl ServiceConfig {
    /// Reads `SKIPTRIE_SVC_QUEUE_CAP` / `SKIPTRIE_SVC_COALESCE`, falling back
    /// to the defaults (1024 / 64). Panics on malformed or zero values.
    pub fn from_env() -> Self {
        let default = ServiceConfig::default();
        let config = ServiceConfig {
            queue_cap: env_knob("SKIPTRIE_SVC_QUEUE_CAP").unwrap_or(default.queue_cap),
            coalesce: env_knob("SKIPTRIE_SVC_COALESCE").unwrap_or(default.coalesce),
        };
        assert!(
            config.queue_cap > 0,
            "SKIPTRIE_SVC_QUEUE_CAP must be positive"
        );
        assert!(
            config.coalesce > 0,
            "SKIPTRIE_SVC_COALESCE must be positive"
        );
        config
    }
}

/// A request in flight between a connection and a shard worker.
struct Envelope {
    seq: u64,
    verb: Verb,
    submit_ns: u64,
    enqueue_ns: u64,
}

/// One (connection, shard) mailbox pair. The connection produces requests and
/// consumes responses; the shard worker does the opposite; `completed` is the
/// only cross-thread counter (worker writes, connection reads).
struct Lane {
    requests: Spsc<Envelope>,
    responses: Spsc<Response>,
    completed: AtomicU64,
}

/// Per-shard worker bookkeeping shared between the service, its connections,
/// and the worker thread itself.
struct WorkerSlot {
    /// Lanes registered by connections. Workers keep a local snapshot and only
    /// take this lock when `version` moves.
    lanes: Mutex<Vec<Arc<Lane>>>,
    version: AtomicUsize,
    sleeping: AtomicBool,
    thread: OnceLock<Thread>,
}

impl WorkerSlot {
    fn new() -> Self {
        WorkerSlot {
            lanes: Mutex::new(Vec::new()),
            version: AtomicUsize::new(0),
            sleeping: AtomicBool::new(false),
            thread: OnceLock::new(),
        }
    }

    fn wake(&self) {
        if self.sleeping.load(Ordering::SeqCst) {
            if let Some(thread) = self.thread.get() {
                thread.unpark();
            }
        }
    }
}

struct Shared<E: ShardEngine<u64>> {
    router: Arc<ShardedSkipTrie<u64, E>>,
    config: ServiceConfig,
    start: Instant,
    stop: AtomicBool,
    workers: Vec<WorkerSlot>,
    /// Latency from *virtual send time* to completion — the
    /// coordinated-omission-inclusive figure.
    virtual_latency: LatencyClasses,
    /// Latency from mailbox admission to completion — pure service time.
    service_latency: LatencyClasses,
}

impl<E: ShardEngine<u64>> Shared<E> {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Executes one verb against the router. Single entry point shared by the
    /// shard workers (routed verbs) and the connections (fenced verbs), so
    /// pipeline and direct execution cannot drift apart semantically.
    fn execute_verb(&self, verb: &Verb) -> Reply {
        match verb {
            Verb::Get(key) => Reply::Value(self.router.get(*key)),
            Verb::Insert(key, value) => Reply::Inserted(self.router.insert(*key, *value)),
            Verb::Remove(key) => Reply::Removed(self.router.remove(*key)),
            Verb::Predecessor(key) => Reply::Entry(self.router.predecessor(*key)),
            Verb::Successor(key) => Reply::Entry(self.router.successor(*key)),
            Verb::Scan { from, limit } => {
                Reply::Entries(self.router.range(*from..).take(*limit).collect())
            }
            Verb::PopFirst => Reply::Entry(self.router.pop_first()),
            Verb::PopLast => Reply::Entry(self.router.pop_last()),
            Verb::InsertBatch(entries) => Reply::Count(self.router.insert_batch(entries)),
            Verb::RemoveBatch(keys) => Reply::Count(self.router.remove_batch(keys)),
            Verb::GetBatch(keys) => Reply::Count(
                self.router
                    .get_batch(keys)
                    .iter()
                    .filter(|v| v.is_some())
                    .count(),
            ),
        }
    }

    fn record_latency(&self, response: &Response) {
        let class = response.class.index();
        self.virtual_latency
            .record(class, response.virtual_latency_ns());
        self.service_latency
            .record(class, response.service_latency_ns());
    }
}

/// Which batchable point kind a verb is, for run coalescing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PointKind {
    Get,
    Insert,
    Remove,
}

fn point_kind(verb: &Verb) -> Option<PointKind> {
    match verb {
        Verb::Get(_) => Some(PointKind::Get),
        Verb::Insert(_, _) => Some(PointKind::Insert),
        Verb::Remove(_) => Some(PointKind::Remove),
        _ => None,
    }
}

/// The serving pipeline over a shard router. See the [crate docs](crate) for
/// the architecture; construct with [`Service::new`] (or
/// [`Service::from_env`]) and open per-thread [`Connection`]s with
/// [`Service::connect`].
///
/// Dropping the service stops and joins every shard worker; requests already
/// admitted are completed first.
pub struct Service<E: ShardEngine<u64>> {
    shared: Arc<Shared<E>>,
    handles: Vec<JoinHandle<()>>,
}

impl<E: ShardEngine<u64>> Service<E> {
    /// Spawns one worker thread per shard of `router`.
    pub fn new(router: Arc<ShardedSkipTrie<u64, E>>, config: ServiceConfig) -> Self {
        assert!(config.queue_cap > 0, "queue_cap must be positive");
        assert!(config.coalesce > 0, "coalesce must be positive");
        let shards = router.shard_count();
        let labels = OpClass::labels();
        let shared = Arc::new(Shared {
            router,
            config,
            start: Instant::now(),
            stop: AtomicBool::new(false),
            workers: (0..shards).map(|_| WorkerSlot::new()).collect(),
            virtual_latency: LatencyClasses::new(&labels),
            service_latency: LatencyClasses::new(&labels),
        });
        let handles: Vec<JoinHandle<()>> = (0..shards)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("svc-shard-{shard}"))
                    .spawn(move || worker_loop(&shared, shard))
                    .expect("spawn service shard worker")
            })
            .collect();
        for (slot, handle) in shared.workers.iter().zip(&handles) {
            slot.thread
                .set(handle.thread().clone())
                .expect("worker thread handle set once");
        }
        Service { shared, handles }
    }

    /// [`Service::new`] with [`ServiceConfig::from_env`].
    pub fn from_env(router: Arc<ShardedSkipTrie<u64, E>>) -> Self {
        Service::new(router, ServiceConfig::from_env())
    }

    /// Opens a connection: one bounded lane per shard, registered with each
    /// shard worker. Connections are single-threaded handles — open one per
    /// client thread.
    pub fn connect(&self) -> Connection<E> {
        let cap = self.shared.config.queue_cap;
        let lanes: Vec<LaneState> = (0..self.shared.workers.len())
            .map(|shard| {
                let lane = Arc::new(Lane {
                    requests: Spsc::with_capacity(cap),
                    responses: Spsc::with_capacity(cap),
                    completed: AtomicU64::new(0),
                });
                let slot = &self.shared.workers[shard];
                slot.lanes.lock().unwrap().push(Arc::clone(&lane));
                slot.version.fetch_add(1, Ordering::Release);
                slot.wake();
                LaneState {
                    lane,
                    submitted: 0,
                    drained: 0,
                }
            })
            .collect();
        Connection {
            shared: Arc::clone(&self.shared),
            lanes,
            inline: VecDeque::new(),
            next_seq: 0,
            next_drain: 0,
        }
    }

    /// Nanoseconds since this service started — the clock every
    /// [`Request::submit_ns`] and [`Response`] timestamp lives on.
    pub fn now_ns(&self) -> u64 {
        self.shared.now_ns()
    }

    /// Per-class latency measured from *virtual send time* to completion.
    /// Under overload this includes the queueing the arrival schedule implies
    /// (no coordinated omission).
    pub fn virtual_latency(&self) -> &LatencyClasses {
        &self.shared.virtual_latency
    }

    /// Per-class latency measured from mailbox admission to completion:
    /// service time only. The gap between this and
    /// [`Service::virtual_latency`] *is* the coordinated-omission error a
    /// closed-loop harness would hide.
    pub fn service_latency(&self) -> &LatencyClasses {
        &self.shared.service_latency
    }

    /// The router this service executes against.
    pub fn router(&self) -> &Arc<ShardedSkipTrie<u64, E>> {
        &self.shared.router
    }
}

impl<E: ShardEngine<u64>> Drop for Service<E> {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for slot in &self.shared.workers {
            if let Some(thread) = slot.thread.get() {
                thread.unpark();
            }
        }
        for handle in self.handles.drain(..) {
            handle.join().expect("service shard worker panicked");
        }
    }
}

/// Connection-private view of one lane: the shared mailboxes plus the
/// admission counters only this connection touches.
struct LaneState {
    lane: Arc<Lane>,
    /// Requests pushed into `lane.requests` (written only by the connection).
    submitted: u64,
    /// Responses popped from `lane.responses` (written only by the connection).
    drained: u64,
}

impl LaneState {
    fn in_flight(&self) -> u64 {
        self.submitted - self.drained
    }
}

/// A single-threaded client handle onto a [`Service`].
///
/// Submit with [`Connection::submit`]; collect completions with
/// [`Connection::poll`], [`Connection::drain`] or [`Connection::wait_idle`].
/// Responses for routed verbs arrive in per-shard FIFO order; fenced verbs
/// (pop / caller-supplied batch) complete before `submit` returns and are
/// delivered by the next `poll`.
pub struct Connection<E: ShardEngine<u64>> {
    shared: Arc<Shared<E>>,
    lanes: Vec<LaneState>,
    /// Responses of fenced verbs, handed out by `poll` ahead of lane traffic.
    inline: VecDeque<Response>,
    next_seq: u64,
    next_drain: usize,
}

impl<E: ShardEngine<u64>> Connection<E> {
    /// Submits one request. Returns the request's sequence number, or gives
    /// the verb back if the owning lane is at capacity (backpressure) or the
    /// service is shutting down — both count as [`Counter::SvcShed`].
    ///
    /// `submit_ns` is the virtual send time on the service clock
    /// ([`Service::now_ns`] / [`Connection::now_ns`]); closed-loop callers
    /// just pass "now".
    pub fn submit(&mut self, request: Request) -> Result<u64, Verb> {
        let Request { verb, submit_ns } = request;
        if self.shared.stop.load(Ordering::SeqCst) {
            record(Counter::SvcShed);
            return Err(verb);
        }
        match verb.routing_key() {
            Some(key) => self.submit_routed(key, verb, submit_ns),
            None => Ok(self.execute_fenced(verb, submit_ns)),
        }
    }

    fn submit_routed(&mut self, key: u64, verb: Verb, submit_ns: u64) -> Result<u64, Verb> {
        let shard = self.shared.router.shard_of(key);
        let state = &mut self.lanes[shard];
        if state.in_flight() >= self.shared.config.queue_cap as u64 {
            record(Counter::SvcShed);
            return Err(verb);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let envelope = Envelope {
            seq,
            verb,
            submit_ns,
            enqueue_ns: self.shared.now_ns(),
        };
        state
            .lane
            .requests
            .push(envelope)
            .unwrap_or_else(|_| panic!("admission bound keeps the request ring non-full"));
        state.submitted += 1;
        record(Counter::SvcEnqueued);
        self.shared.workers[shard].wake();
        Ok(seq)
    }

    /// Fence-and-execute for pop/batch verbs: wait for this connection's
    /// in-flight requests, run the verb inline through the shared executor,
    /// stash the response for the next `poll`.
    fn execute_fenced(&mut self, verb: Verb, submit_ns: u64) -> u64 {
        self.fence();
        let seq = self.next_seq;
        self.next_seq += 1;
        let class = verb.class();
        let enqueue_ns = self.shared.now_ns();
        let reply = self.shared.execute_verb(&verb);
        let response = Response {
            seq,
            reply,
            class,
            submit_ns,
            enqueue_ns,
            done_ns: self.shared.now_ns(),
        };
        record(Counter::SvcEnqueued);
        self.shared.record_latency(&response);
        self.inline.push_back(response);
        seq
    }

    /// Blocks until every routed request this connection submitted has been
    /// *executed* (its response may still be waiting in a response ring).
    fn fence(&mut self) {
        for state in &self.lanes {
            let mut spins = 0u32;
            while state.lane.completed.load(Ordering::Acquire) < state.submitted {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    thread::yield_now();
                }
            }
        }
    }

    /// Returns one completed response, if any: fenced responses first, then
    /// lane responses round-robin across shards.
    pub fn poll(&mut self) -> Option<Response> {
        if let Some(response) = self.inline.pop_front() {
            return Some(response);
        }
        let shards = self.lanes.len();
        for offset in 0..shards {
            let shard = (self.next_drain + offset) % shards;
            if let Some(response) = self.lanes[shard].lane.responses.pop() {
                self.lanes[shard].drained += 1;
                self.next_drain = (shard + 1) % shards;
                return Some(response);
            }
        }
        None
    }

    /// Drains every response currently available without blocking.
    pub fn drain(&mut self) -> Vec<Response> {
        let mut out = Vec::new();
        while let Some(response) = self.poll() {
            out.push(response);
        }
        out
    }

    /// Requests submitted but not yet drained back as responses.
    pub fn in_flight(&self) -> u64 {
        self.lanes.iter().map(LaneState::in_flight).sum::<u64>() + self.inline.len() as u64
    }

    /// Blocks until every outstanding request has completed and returns all
    /// their responses.
    pub fn wait_idle(&mut self) -> Vec<Response> {
        let mut out = Vec::new();
        loop {
            match self.poll() {
                Some(response) => out.push(response),
                None if self.in_flight() == 0 => break,
                None => thread::yield_now(),
            }
        }
        out
    }

    /// The service clock (see [`Service::now_ns`]).
    pub fn now_ns(&self) -> u64 {
        self.shared.now_ns()
    }
}

/// Body of one shard worker thread.
fn worker_loop<E: ShardEngine<u64>>(shared: &Shared<E>, shard: usize) {
    let slot = &shared.workers[shard];
    let mut lanes: Vec<Arc<Lane>> = Vec::new();
    let mut seen_version = usize::MAX;
    let mut batch: Vec<Envelope> = Vec::with_capacity(shared.config.coalesce);
    loop {
        let version = slot.version.load(Ordering::Acquire);
        if version != seen_version {
            lanes = slot.lanes.lock().unwrap().clone();
            seen_version = version;
        }
        let mut did_work = false;
        for lane in &lanes {
            did_work |= serve_lane(shared, lane, &mut batch);
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if !did_work {
            slot.sleeping.store(true, Ordering::SeqCst);
            // Re-check after raising the flag: a producer that pushed before
            // seeing the flag is caught here instead of being lost.
            let pending = lanes.iter().any(|lane| !lane.requests.is_empty())
                || slot.version.load(Ordering::Acquire) != seen_version
                || shared.stop.load(Ordering::SeqCst);
            if !pending {
                thread::park_timeout(IDLE_PARK);
            }
            slot.sleeping.store(false, Ordering::SeqCst);
        }
    }
    // Shutdown drain: requests admitted before `stop` was raised still get
    // executed, so a `wait_idle` racing shutdown cannot hang.
    let lanes = slot.lanes.lock().unwrap().clone();
    for lane in &lanes {
        while serve_lane(shared, lane, &mut batch) {}
    }
}

/// Drains up to `coalesce` requests from one lane and executes them,
/// coalescing adjacent same-kind point runs through the router's batch entry
/// points. Returns whether any request was served.
fn serve_lane<E: ShardEngine<u64>>(
    shared: &Shared<E>,
    lane: &Lane,
    batch: &mut Vec<Envelope>,
) -> bool {
    batch.clear();
    while batch.len() < shared.config.coalesce {
        match lane.requests.pop() {
            Some(envelope) => batch.push(envelope),
            None => break,
        }
    }
    if batch.is_empty() {
        return false;
    }
    let mut start = 0;
    while start < batch.len() {
        let kind = point_kind(&batch[start].verb);
        let mut end = start + 1;
        if let Some(kind) = kind {
            while end < batch.len() && point_kind(&batch[end].verb) == Some(kind) {
                end += 1;
            }
        }
        if end - start >= 2 {
            execute_run(
                shared,
                lane,
                &batch[start..end],
                kind.expect("runs are point verbs"),
            );
        } else {
            let envelope = &batch[start];
            let reply = shared.execute_verb(&envelope.verb);
            complete(shared, lane, envelope, reply);
        }
        start = end;
    }
    true
}

/// Executes a coalesced run of same-kind point verbs via one router batch
/// call, keeping replies per-request exact.
fn execute_run<E: ShardEngine<u64>>(
    shared: &Shared<E>,
    lane: &Lane,
    run: &[Envelope],
    kind: PointKind,
) {
    add(Counter::SvcBatchSize, run.len() as u64);
    match kind {
        PointKind::Get => {
            let keys: Vec<u64> = run
                .iter()
                .map(|envelope| match envelope.verb {
                    Verb::Get(key) => key,
                    _ => unreachable!("run kind is Get"),
                })
                .collect();
            let values = shared.router.get_batch(&keys);
            for (envelope, value) in run.iter().zip(values) {
                complete(shared, lane, envelope, Reply::Value(value));
            }
        }
        PointKind::Insert => {
            let entries: Vec<(u64, u64)> = run
                .iter()
                .map(|envelope| match envelope.verb {
                    Verb::Insert(key, value) => (key, value),
                    _ => unreachable!("run kind is Insert"),
                })
                .collect();
            let mut flags = vec![false; entries.len()];
            shared.router.insert_batch_flags(&entries, &mut flags);
            for (envelope, inserted) in run.iter().zip(flags) {
                complete(shared, lane, envelope, Reply::Inserted(inserted));
            }
        }
        PointKind::Remove => {
            let keys: Vec<u64> = run
                .iter()
                .map(|envelope| match envelope.verb {
                    Verb::Remove(key) => key,
                    _ => unreachable!("run kind is Remove"),
                })
                .collect();
            let mut values = vec![None; keys.len()];
            shared.router.remove_batch_values(&keys, &mut values);
            for (envelope, value) in run.iter().zip(values) {
                complete(shared, lane, envelope, Reply::Removed(value));
            }
        }
    }
}

/// Publishes one response: timestamps, latency recording, response ring push,
/// completion count (in that order — `completed` is the fence's signal, so it
/// must trail the ring push).
fn complete<E: ShardEngine<u64>>(
    shared: &Shared<E>,
    lane: &Lane,
    envelope: &Envelope,
    reply: Reply,
) {
    let response = Response {
        seq: envelope.seq,
        reply,
        class: envelope.verb.class(),
        submit_ns: envelope.submit_ns,
        enqueue_ns: envelope.enqueue_ns,
        done_ns: shared.now_ns(),
    };
    shared.record_latency(&response);
    lane.responses
        .push(response)
        .unwrap_or_else(|_| panic!("admission bound keeps the response ring non-full"));
    lane.completed.fetch_add(1, Ordering::Release);
}
