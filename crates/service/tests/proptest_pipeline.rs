//! Property-based observational equivalence: an arbitrary interleaved request
//! script pushed through the serving pipeline (thread-per-shard workers,
//! bounded mailboxes, run coalescing) returns exactly the replies that direct
//! calls on a plain forest return, and leaves the same final contents.
//!
//! The script is built from chunks whose internal reorderings are all
//! equivalence-preserving, so any pipeline schedule must reproduce sequential
//! semantics:
//!
//! * **write chunks** hold point verbs only — per-key order is preserved by
//!   per-lane FIFO (all ops on a key share a lane), and point replies depend
//!   only on their own key's history;
//! * **read chunks** hold ordered/range verbs only — read-only verbs commute
//!   with each other, and `wait_idle` between chunks fences them against all
//!   earlier writes;
//! * **fenced verbs** (pops, caller-supplied batches) self-fence inside
//!   `submit`.
//!
//! The subject runs over a `TieredForest` with a tiny merge watermark, so
//! background folds fire mid-script; the mirror is a plain `ShardedSkipTrie`
//! driven synchronously.

use proptest::prelude::*;
use skiptrie::{ShardedSkipTrie, ShardedSkipTrieConfig, TieredForest};
use skiptrie_service::{Connection, Reply, Request, Service, ServiceConfig, Verb};

const BITS: u32 = 10;
const CLAMP: u64 = (1 << BITS) - 1;

#[derive(Debug, Clone)]
enum Chunk {
    Writes(Vec<Verb>),
    Reads(Vec<Verb>),
    Fenced(Verb),
}

fn key() -> impl Strategy<Value = u64> {
    any::<u64>().prop_map(|k| k & CLAMP)
}

fn write_verb() -> impl Strategy<Value = Verb> {
    prop_oneof![
        (key(), any::<u64>()).prop_map(|(k, v)| Verb::Insert(k, v)),
        key().prop_map(Verb::Remove),
        key().prop_map(Verb::Get),
    ]
}

fn read_verb() -> impl Strategy<Value = Verb> {
    prop_oneof![
        key().prop_map(Verb::Predecessor),
        key().prop_map(Verb::Successor),
        (key(), 0usize..8).prop_map(|(from, limit)| Verb::Scan { from, limit }),
    ]
}

fn fenced_verb() -> impl Strategy<Value = Verb> {
    prop_oneof![
        any::<bool>().prop_map(|_| Verb::PopFirst),
        any::<bool>().prop_map(|_| Verb::PopLast),
        proptest::collection::vec((key(), any::<u64>()), 0..12).prop_map(Verb::InsertBatch),
        proptest::collection::vec(key(), 0..12).prop_map(Verb::RemoveBatch),
        proptest::collection::vec(key(), 0..12).prop_map(Verb::GetBatch),
    ]
}

fn chunk() -> impl Strategy<Value = Chunk> {
    prop_oneof![
        proptest::collection::vec(write_verb(), 1..40).prop_map(Chunk::Writes),
        proptest::collection::vec(write_verb(), 1..40).prop_map(Chunk::Writes),
        proptest::collection::vec(read_verb(), 1..20).prop_map(Chunk::Reads),
        fenced_verb().prop_map(Chunk::Fenced),
    ]
}

/// Sequential mirror of the pipeline's executor, against the plain forest.
fn direct(model: &ShardedSkipTrie<u64>, verb: &Verb) -> Reply {
    match verb {
        Verb::Get(k) => Reply::Value(model.get(*k)),
        Verb::Insert(k, v) => Reply::Inserted(model.insert(*k, *v)),
        Verb::Remove(k) => Reply::Removed(model.remove(*k)),
        Verb::Predecessor(k) => Reply::Entry(model.predecessor(*k)),
        Verb::Successor(k) => Reply::Entry(model.successor(*k)),
        Verb::Scan { from, limit } => Reply::Entries(model.range(*from..).take(*limit).collect()),
        Verb::PopFirst => Reply::Entry(model.pop_first()),
        Verb::PopLast => Reply::Entry(model.pop_last()),
        Verb::InsertBatch(entries) => Reply::Count(model.insert_batch(entries)),
        Verb::RemoveBatch(keys) => Reply::Count(model.remove_batch(keys)),
        Verb::GetBatch(keys) => {
            Reply::Count(model.get_batch(keys).iter().filter(|v| v.is_some()).count())
        }
    }
}

/// Pushes one chunk's verbs through the connection, waits for completion, and
/// returns the replies ordered by submission sequence.
fn run_chunk(conn: &mut Connection<skiptrie::TieredSkipTrie<u64>>, verbs: &[Verb]) -> Vec<Reply> {
    let base_seq = {
        let mut seqs = Vec::with_capacity(verbs.len());
        for verb in verbs {
            let request = Request {
                verb: verb.clone(),
                submit_ns: conn.now_ns(),
            };
            let seq = conn
                .submit(request)
                .expect("chunks stay under the per-lane cap, nothing sheds");
            seqs.push(seq);
        }
        seqs
    };
    let mut responses = conn.wait_idle();
    responses.sort_by_key(|r| r.seq);
    assert_eq!(responses.len(), verbs.len(), "one response per request");
    for (response, seq) in responses.iter().zip(&base_seq) {
        assert_eq!(response.seq, *seq, "responses cover exactly this chunk");
    }
    responses.into_iter().map(|r| r.reply).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_is_observationally_direct(
        watermark in 1usize..=8,
        coalesce in 1usize..=8,
        seed_keys in proptest::collection::vec(any::<u64>(), 0..30),
        chunks in proptest::collection::vec(chunk(), 1..12),
    ) {
        let seeded: Vec<(u64, u64)> = seed_keys
            .into_iter()
            .map(|k| k & CLAMP)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(|k| (k, !k))
            .collect();
        let forest: TieredForest<u64> = TieredForest::from_sorted(
            ShardedSkipTrieConfig::for_universe_bits(BITS)
                .with_shards(4)
                .with_merge_watermark(watermark),
            &seeded,
        );
        let model: ShardedSkipTrie<u64> = ShardedSkipTrie::from_sorted(
            ShardedSkipTrieConfig::for_universe_bits(BITS)
                .with_shards(4)
                .with_seed(7),
            &seeded,
        );
        let service = Service::new(
            forest.router(),
            ServiceConfig { queue_cap: 256, coalesce },
        );
        let mut conn = service.connect();
        for chunk in &chunks {
            let verbs: &[Verb] = match chunk {
                Chunk::Writes(verbs) | Chunk::Reads(verbs) => verbs,
                Chunk::Fenced(verb) => std::slice::from_ref(verb),
            };
            let got = run_chunk(&mut conn, verbs);
            let want: Vec<Reply> = verbs.iter().map(|v| direct(&model, v)).collect();
            prop_assert_eq!(got, want, "chunk {:?}", chunk);
        }
        drop(conn);
        drop(service);
        prop_assert_eq!(forest.snapshot(), model.to_vec(), "final contents agree");
    }
}
