//! Property-based tests for the batched entry points: for arbitrary interleaved
//! batches (with duplicates, over arbitrary universe widths and shard counts),
//! `insert_batch` / `remove_batch` / `get_batch` must be observationally equivalent
//! to applying the same operations one at a time in slice order — on both the plain
//! [`SkipTrie`] and the [`ShardedSkipTrie`] forest.

use std::collections::BTreeMap;

use proptest::prelude::*;
use skiptrie::{ShardedSkipTrie, ShardedSkipTrieConfig, SkipTrie, SkipTrieConfig};

#[derive(Debug, Clone)]
enum BatchOp {
    /// Insert a batch of (key-seed, value) pairs.
    Insert(Vec<(u64, u64)>),
    /// Remove a batch of key-seeds.
    Remove(Vec<u64>),
    /// Look up a batch of key-seeds.
    Get(Vec<u64>),
}

fn op_strategy() -> impl Strategy<Value = BatchOp> {
    prop_oneof![
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..40).prop_map(BatchOp::Insert),
        proptest::collection::vec(any::<u64>(), 0..40).prop_map(BatchOp::Remove),
        proptest::collection::vec(any::<u64>(), 0..40).prop_map(BatchOp::Get),
    ]
}

/// Clamp an arbitrary u64 into the configured universe, keeping duplicates likely
/// (a small modulus makes batches collide with earlier batches and themselves).
fn key_in(bits: u32, seed: u64) -> u64 {
    let max = skiptrie::max_key(bits);
    let window = 1_000u64.min(max);
    seed % (window + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn skiptrie_batches_equal_sequential_application(
        bits in 2u32..=64,
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let batched: SkipTrie<u64> =
            SkipTrie::new(SkipTrieConfig::for_universe_bits(bits).with_seed(11));
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match op {
                BatchOp::Insert(entries) => {
                    let entries: Vec<(u64, u64)> = entries
                        .iter()
                        .map(|&(k, v)| (key_in(bits, k), v))
                        .collect();
                    let mut expected = 0usize;
                    for &(k, v) in &entries {
                        if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                            e.insert(v);
                            expected += 1;
                        }
                    }
                    prop_assert_eq!(batched.insert_batch(&entries), expected);
                }
                BatchOp::Remove(keys) => {
                    let keys: Vec<u64> = keys.iter().map(|&k| key_in(bits, k)).collect();
                    let expected = keys.iter().filter(|k| model.remove(k).is_some()).count();
                    prop_assert_eq!(batched.remove_batch(&keys), expected);
                }
                BatchOp::Get(keys) => {
                    let keys: Vec<u64> = keys.iter().map(|&k| key_in(bits, k)).collect();
                    let expected: Vec<Option<u64>> =
                        keys.iter().map(|k| model.get(k).copied()).collect();
                    prop_assert_eq!(batched.get_batch(&keys), expected);
                }
            }
        }
        let snapshot: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(batched.to_vec(), snapshot);
    }

    #[test]
    fn forest_batches_equal_sequential_application(
        bits in 2u32..=64,
        shard_bits in 0u32..=4,
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let shard_bits = shard_bits.min(bits);
        let mut config = ShardedSkipTrieConfig::for_universe_bits(bits).with_seed(13);
        config.shard_bits = shard_bits;
        let forest: ShardedSkipTrie<u64> = ShardedSkipTrie::new(config);
        // The sequential oracle is the *unbatched* forest itself, so this checks
        // batched-vs-sequential (not forest-vs-model, which proptest_model covers).
        let mut seq_config = ShardedSkipTrieConfig::for_universe_bits(bits).with_seed(13);
        seq_config.shard_bits = shard_bits;
        let sequential: ShardedSkipTrie<u64> = ShardedSkipTrie::new(seq_config);
        for op in &ops {
            match op {
                BatchOp::Insert(entries) => {
                    let entries: Vec<(u64, u64)> = entries
                        .iter()
                        .map(|&(k, v)| (key_in(bits, k), v))
                        .collect();
                    let expected = entries
                        .iter()
                        .filter(|&&(k, v)| sequential.insert(k, v))
                        .count();
                    prop_assert_eq!(forest.insert_batch(&entries), expected);
                }
                BatchOp::Remove(keys) => {
                    let keys: Vec<u64> = keys.iter().map(|&k| key_in(bits, k)).collect();
                    let expected = keys.iter().filter(|&&k| sequential.remove(k).is_some()).count();
                    prop_assert_eq!(forest.remove_batch(&keys), expected);
                }
                BatchOp::Get(keys) => {
                    let keys: Vec<u64> = keys.iter().map(|&k| key_in(bits, k)).collect();
                    let expected: Vec<Option<u64>> =
                        keys.iter().map(|&k| sequential.get(k)).collect();
                    prop_assert_eq!(forest.get_batch(&keys), expected);
                }
            }
        }
        prop_assert_eq!(forest.to_vec(), sequential.to_vec());
        prop_assert_eq!(forest.len(), sequential.len());
    }
}
