//! Property-based test for the tiered forest: a [`TieredForest`] (per-shard
//! frozen tier + delta, watermark-driven background folds) is observationally
//! equal to a plain [`ShardedSkipTrie`] over arbitrary operation histories.
//!
//! The subject runs with a tiny merge watermark so background folds fire in
//! the middle of essentially every generated history, and the `Merge` op
//! forces synchronous folds at arbitrary points — none of which may be
//! visible to any subsequent read.

use proptest::prelude::*;
use skiptrie::{max_key, ShardedSkipTrie, ShardedSkipTrieConfig, TieredForest};

#[derive(Debug, Clone)]
enum TOp {
    Insert(u64),
    Remove(u64),
    Get(u64),
    Pred(u64),
    Succ(u64),
    Range(u64, u64),
    PopFirst,
    PopLast,
    Merge,
}

fn op_strategy() -> impl Strategy<Value = TOp> {
    prop_oneof![
        any::<u64>().prop_map(TOp::Insert),
        any::<u64>().prop_map(TOp::Remove),
        any::<u64>().prop_map(TOp::Get),
        any::<u64>().prop_map(TOp::Pred),
        any::<u64>().prop_map(TOp::Succ),
        (any::<u64>(), any::<u64>()).prop_map(|(a, b)| TOp::Range(a, b)),
        any::<bool>().prop_map(|_| TOp::PopFirst),
        any::<bool>().prop_map(|_| TOp::PopLast),
        any::<bool>().prop_map(|_| TOp::Merge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tiered_forest_is_observationally_a_plain_forest(
        bits in 4u32..=64,
        watermark in 1usize..=16,
        seed_keys in proptest::collection::vec(any::<u64>(), 0..40),
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let clamp = max_key(bits);
        // Seed every shard's frozen tier directly so histories start with a
        // non-trivial frozen/delta split, not just empty frozen arrays.
        let seeded: Vec<(u64, u64)> = seed_keys
            .into_iter()
            .map(|k| k & clamp)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(|k| (k, !k))
            .collect();
        let tiered: TieredForest<u64> = TieredForest::from_sorted(
            ShardedSkipTrieConfig::for_universe_bits(bits)
                .with_shards(4)
                .with_merge_watermark(watermark),
            &seeded,
        );
        let model: ShardedSkipTrie<u64> = ShardedSkipTrie::from_sorted(
            ShardedSkipTrieConfig::for_universe_bits(bits)
                .with_shards(4)
                .with_seed(42),
            &seeded,
        );
        for op in ops {
            match op {
                TOp::Insert(k) => {
                    let k = k & clamp;
                    prop_assert_eq!(tiered.insert(k, k ^ 1), model.insert(k, k ^ 1));
                }
                TOp::Remove(k) => {
                    let k = k & clamp;
                    prop_assert_eq!(tiered.remove(k), model.remove(k));
                }
                TOp::Get(k) => {
                    let k = k & clamp;
                    prop_assert_eq!(tiered.get(k), model.get(k));
                    prop_assert_eq!(tiered.contains(k), model.contains(k));
                }
                TOp::Pred(k) => {
                    let k = k & clamp;
                    prop_assert_eq!(tiered.predecessor(k), model.predecessor(k));
                }
                TOp::Succ(k) => {
                    let k = k & clamp;
                    prop_assert_eq!(tiered.successor(k), model.successor(k));
                }
                TOp::Range(a, b) => {
                    let (lo, hi) = (a.min(b) & clamp, a.max(b) & clamp);
                    let got: Vec<(u64, u64)> = tiered.range(lo..=hi).collect();
                    let want: Vec<(u64, u64)> = model.range(lo..=hi).collect();
                    prop_assert_eq!(got, want);
                }
                TOp::PopFirst => {
                    prop_assert_eq!(tiered.pop_first(), model.pop_first());
                }
                TOp::PopLast => {
                    prop_assert_eq!(tiered.pop_last(), model.pop_last());
                }
                TOp::Merge => {
                    // Folding every due shard is pure bookkeeping: nothing
                    // observable may change.
                    tiered.merge_all();
                }
            }
            prop_assert_eq!(tiered.len(), model.len());
            prop_assert_eq!(tiered.is_empty(), model.is_empty());
        }
        prop_assert_eq!(tiered.snapshot(), model.to_vec());
        tiered.quiesce();
        prop_assert_eq!(tiered.snapshot(), model.to_vec(), "post-quiesce snapshot");
        prop_assert!(tiered.is_quiesced(), "quiesce leaves no delta or sealed tier");
        prop_assert_eq!(tiered.frozen_len(), model.len(), "fully folded");
    }

    #[test]
    fn batch_ops_agree_with_plain_forest(
        bits in 4u32..=64,
        watermark in 1usize..=16,
        keys in proptest::collection::vec(any::<u64>(), 1..60),
        probes in proptest::collection::vec(any::<u64>(), 1..30),
    ) {
        let clamp = max_key(bits);
        let tiered: TieredForest<u64> = TieredForest::new(
            ShardedSkipTrieConfig::for_universe_bits(bits)
                .with_shards(4)
                .with_merge_watermark(watermark),
        );
        let model: ShardedSkipTrie<u64> = ShardedSkipTrie::new(
            ShardedSkipTrieConfig::for_universe_bits(bits)
                .with_shards(4)
                .with_seed(42),
        );
        let entries: Vec<(u64, u64)> =
            keys.iter().map(|&k| (k & clamp, k ^ 7)).collect();
        prop_assert_eq!(tiered.insert_batch(&entries), model.insert_batch(&entries));
        let probes: Vec<u64> = probes.into_iter().map(|k| k & clamp).collect();
        prop_assert_eq!(tiered.get_batch(&probes), model.get_batch(&probes));
        tiered.merge_all();
        prop_assert_eq!(tiered.get_batch(&probes), model.get_batch(&probes));
        let victims: Vec<u64> = entries.iter().map(|&(k, _)| k).step_by(2).collect();
        prop_assert_eq!(tiered.remove_batch(&victims), model.remove_batch(&victims));
        tiered.quiesce();
        prop_assert_eq!(tiered.snapshot(), model.to_vec());
        prop_assert_eq!(tiered.frozen_len(), model.len());
    }
}
