//! Property-based test for the tiered read path: single-threaded, a
//! [`TieredSkipTrie`] is observationally equal to a plain [`SkipTrie`] over
//! arbitrary operation histories — including merges injected at arbitrary points,
//! which must be invisible to every subsequent read.

use proptest::prelude::*;
use skiptrie::{max_key, SkipTrie, SkipTrieConfig, TieredSkipTrie, TieredSkipTrieConfig};

#[derive(Debug, Clone)]
enum TOp {
    Insert(u64),
    Remove(u64),
    Get(u64),
    Pred(u64),
    Succ(u64),
    Range(u64, u64),
    PopFirst,
    Merge,
}

fn op_strategy() -> impl Strategy<Value = TOp> {
    prop_oneof![
        any::<u64>().prop_map(TOp::Insert),
        any::<u64>().prop_map(TOp::Remove),
        any::<u64>().prop_map(TOp::Get),
        any::<u64>().prop_map(TOp::Pred),
        any::<u64>().prop_map(TOp::Succ),
        (any::<u64>(), any::<u64>()).prop_map(|(a, b)| TOp::Range(a, b)),
        any::<bool>().prop_map(|_| TOp::PopFirst),
        any::<bool>().prop_map(|_| TOp::Merge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tiered_trie_is_observationally_a_skiptrie(
        bits in 2u32..=64,
        seed_keys in proptest::collection::vec(any::<u64>(), 0..40),
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let clamp = max_key(bits);
        // Seed the frozen tier directly so histories start with a non-trivial
        // frozen/delta split, not just an empty frozen tier.
        let seeded: Vec<(u64, u64)> = seed_keys
            .into_iter()
            .map(|k| k & clamp)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(|k| (k, !k))
            .collect();
        let tiered: TieredSkipTrie<u64> = TieredSkipTrie::from_sorted(
            TieredSkipTrieConfig::for_universe_bits(bits),
            seeded.iter().copied(),
        );
        let model: SkipTrie<u64> = SkipTrie::from_sorted(
            SkipTrieConfig::for_universe_bits(bits).with_seed(42),
            seeded.iter().copied(),
        );
        for op in ops {
            match op {
                TOp::Insert(k) => {
                    let k = k & clamp;
                    prop_assert_eq!(tiered.insert(k, k ^ 1), model.insert(k, k ^ 1));
                }
                TOp::Remove(k) => {
                    let k = k & clamp;
                    prop_assert_eq!(tiered.remove(k), model.remove(k));
                }
                TOp::Get(k) => {
                    let k = k & clamp;
                    prop_assert_eq!(tiered.get(k), model.get(k));
                    prop_assert_eq!(tiered.contains(k), model.contains(k));
                }
                TOp::Pred(k) => {
                    let k = k & clamp;
                    prop_assert_eq!(tiered.predecessor(k), model.predecessor(k));
                }
                TOp::Succ(k) => {
                    let k = k & clamp;
                    prop_assert_eq!(tiered.successor(k), model.successor(k));
                }
                TOp::Range(a, b) => {
                    let (lo, hi) = (a.min(b) & clamp, a.max(b) & clamp);
                    let got: Vec<(u64, u64)> = tiered.range(lo..=hi).collect();
                    let want: Vec<(u64, u64)> = model.range(lo..=hi).collect();
                    prop_assert_eq!(got, want);
                }
                TOp::PopFirst => {
                    prop_assert_eq!(tiered.pop_first(), model.pop_first());
                }
                TOp::Merge => {
                    // A merge is pure bookkeeping: nothing observable may change.
                    tiered.merge();
                    prop_assert_eq!(tiered.delta_len(), 0, "merge drains the delta");
                }
            }
            prop_assert_eq!(tiered.len(), model.len());
            prop_assert_eq!(tiered.is_empty(), model.is_empty());
        }
        prop_assert_eq!(tiered.snapshot(), model.to_vec());
        tiered.merge();
        prop_assert_eq!(tiered.snapshot(), model.to_vec(), "post-merge snapshot");
        prop_assert_eq!(tiered.frozen_len(), model.len(), "fully folded");
    }
}
