//! Property-based tests for the bulk-load subsystem: for arbitrary sorted,
//! deduplicated inputs (over arbitrary universe widths and shard counts),
//! `bulk_load` must be observationally equivalent to sequential `insert` calls of
//! the same entries — on point operations, ordered queries, range scans, pops, and
//! the snapshot round trip — for both the plain [`SkipTrie`] and the
//! [`ShardedSkipTrie`] forest.

use proptest::prelude::*;
use skiptrie::{ShardedSkipTrie, ShardedSkipTrieConfig, SkipTrie, SkipTrieConfig};

/// Sorted, strictly increasing entries within `bits` plus a probe stream: raw u64
/// seeds are clamped into the universe and deduplicated.
fn sorted_input(bits: u32, raw: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    let max = skiptrie::max_key(bits);
    let mut entries: Vec<(u64, u64)> = raw.into_iter().map(|(k, v)| (k & max, v)).collect();
    entries.sort_by_key(|&(k, _)| k);
    entries.dedup_by_key(|&mut (k, _)| k);
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn trie_bulk_load_equals_sequential_inserts(
        bits in 2u32..=64,
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..400),
        probes in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let entries = sorted_input(bits, raw);
        let mut bulk: SkipTrie<u64> =
            SkipTrie::new(SkipTrieConfig::for_universe_bits(bits).with_seed(21));
        prop_assert_eq!(bulk.bulk_load(entries.iter().copied()), entries.len());
        let seq: SkipTrie<u64> =
            SkipTrie::new(SkipTrieConfig::for_universe_bits(bits).with_seed(22));
        for &(k, v) in &entries {
            prop_assert!(seq.insert(k, v));
        }
        prop_assert_eq!(bulk.len(), seq.len());
        prop_assert_eq!(bulk.to_vec(), seq.to_vec());
        prop_assert_eq!(bulk.snapshot(), entries.clone());
        let max = skiptrie::max_key(bits);
        for &p in &probes {
            let p = p & max;
            prop_assert_eq!(bulk.predecessor(p), seq.predecessor(p));
            prop_assert_eq!(bulk.successor(p), seq.successor(p));
            prop_assert_eq!(bulk.get(p), seq.get(p));
            prop_assert_eq!(bulk.contains(p), seq.contains(p));
            let hi = p.saturating_add(1 << (bits.min(16) - 1)).min(max);
            let b_range: Vec<(u64, u64)> = bulk.range(p..=hi).collect();
            let s_range: Vec<(u64, u64)> = seq.range(p..=hi).collect();
            prop_assert_eq!(b_range, s_range);
        }
        // Drain both from alternating ends: pops agree step for step.
        loop {
            let a = bulk.pop_first();
            prop_assert_eq!(a, seq.pop_first());
            if a.is_none() {
                break;
            }
            let b = bulk.pop_last();
            prop_assert_eq!(b, seq.pop_last());
            if b.is_none() {
                break;
            }
        }
        prop_assert!(bulk.is_empty() && seq.is_empty());
    }

    #[test]
    fn forest_bulk_load_equals_sequential_inserts(
        bits in 2u32..=64,
        shard_bits in 0u32..=4,
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..400),
        probes in proptest::collection::vec(any::<u64>(), 0..48),
    ) {
        let entries = sorted_input(bits, raw);
        let shard_bits = shard_bits.min(bits);
        let mut config = ShardedSkipTrieConfig::for_universe_bits(bits).with_seed(31);
        config.shard_bits = shard_bits;
        let mut bulk: ShardedSkipTrie<u64> = ShardedSkipTrie::new(config);
        prop_assert_eq!(bulk.bulk_load(&entries), entries.len());
        let mut seq_config = ShardedSkipTrieConfig::for_universe_bits(bits).with_seed(32);
        seq_config.shard_bits = shard_bits;
        let seq: ShardedSkipTrie<u64> = ShardedSkipTrie::new(seq_config);
        for &(k, v) in &entries {
            prop_assert!(seq.insert(k, v));
        }
        prop_assert_eq!(bulk.len(), seq.len());
        prop_assert_eq!(bulk.shard_lens(), seq.shard_lens());
        prop_assert_eq!(bulk.to_vec(), seq.to_vec());
        prop_assert_eq!(bulk.snapshot(), entries.clone());
        let max = skiptrie::max_key(bits);
        for &p in &probes {
            let p = p & max;
            prop_assert_eq!(bulk.predecessor(p), seq.predecessor(p));
            prop_assert_eq!(bulk.successor(p), seq.successor(p));
            prop_assert_eq!(bulk.get(p), seq.get(p));
            let hi = p.saturating_add(1 << (bits.min(16) - 1)).min(max);
            let b_range: Vec<(u64, u64)> = bulk.range(p..=hi).collect();
            let s_range: Vec<(u64, u64)> = seq.range(p..=hi).collect();
            prop_assert_eq!(b_range, s_range);
        }
        loop {
            let a = bulk.pop_first();
            prop_assert_eq!(a, seq.pop_first());
            if a.is_none() {
                break;
            }
            let b = bulk.pop_last();
            prop_assert_eq!(b, seq.pop_last());
            if b.is_none() {
                break;
            }
        }
        prop_assert!(bulk.is_empty() && seq.is_empty());
    }

    #[test]
    fn snapshot_restore_round_trip_is_lossless(
        bits in 2u32..=64,
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..300),
    ) {
        let entries = sorted_input(bits, raw);
        let trie: SkipTrie<u64> = SkipTrie::from_sorted(
            SkipTrieConfig::for_universe_bits(bits).with_seed(41),
            entries.iter().copied(),
        );
        let checkpoint = trie.snapshot();
        prop_assert_eq!(&checkpoint, &entries);
        let restored: SkipTrie<u64> = SkipTrie::from_sorted(
            SkipTrieConfig::for_universe_bits(bits).with_seed(42),
            checkpoint,
        );
        prop_assert_eq!(restored.to_vec(), trie.to_vec());
        prop_assert_eq!(restored.len(), trie.len());
    }
}
