//! Property-based tests for the SkipTrie: agreement with a `BTreeMap` model over
//! arbitrary histories, for arbitrary universe widths and both DCSS modes, plus
//! prefix-math properties used by the x-fast trie.

use std::collections::BTreeMap;

use proptest::prelude::*;
use skiptrie::{key_bit, lcp_len, max_key, DcssMode, Prefix, SkipTrie, SkipTrieConfig};

#[derive(Debug, Clone)]
enum TrieOp {
    Insert(u64),
    Remove(u64),
    Pred(u64),
    Succ(u64),
}

fn op_strategy() -> impl Strategy<Value = TrieOp> {
    prop_oneof![
        any::<u64>().prop_map(TrieOp::Insert),
        any::<u64>().prop_map(TrieOp::Remove),
        any::<u64>().prop_map(TrieOp::Pred),
        any::<u64>().prop_map(TrieOp::Succ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn agrees_with_btreemap_for_any_universe_and_mode(
        bits in 2u32..=64,
        cas_only in any::<bool>(),
        ops in proptest::collection::vec(op_strategy(), 1..250),
    ) {
        let mode = if cas_only { DcssMode::CasOnly } else { DcssMode::Descriptor };
        let trie: SkipTrie<u64> = SkipTrie::new(
            SkipTrieConfig::for_universe_bits(bits).with_mode(mode).with_seed(42),
        );
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let clamp = max_key(bits);
        for op in ops {
            match op {
                TrieOp::Insert(k) => {
                    let k = k & clamp;
                    let expected = !model.contains_key(&k);
                    if expected {
                        model.insert(k, k);
                    }
                    prop_assert_eq!(trie.insert(k, k), expected);
                }
                TrieOp::Remove(k) => {
                    let k = k & clamp;
                    prop_assert_eq!(trie.remove(k), model.remove(&k));
                }
                TrieOp::Pred(k) => {
                    let k = k & clamp;
                    let expected = model.range(..=k).next_back().map(|(a, b)| (*a, *b));
                    prop_assert_eq!(trie.predecessor(k), expected);
                }
                TrieOp::Succ(k) => {
                    let k = k & clamp;
                    let expected = model.range(k..).next().map(|(a, b)| (*a, *b));
                    prop_assert_eq!(trie.successor(k), expected);
                }
            }
        }
        prop_assert_eq!(trie.len(), model.len());
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(trie.to_vec(), expected);
    }

    /// Prefix arithmetic: prefixes of a key are prefixes, directions are consistent
    /// with subtree membership, and lcp_len is symmetric and bounded.
    #[test]
    fn prefix_math_properties(key in any::<u64>(), other in any::<u64>(), bits in 2u32..=64) {
        let key = key & max_key(bits);
        let other = other & max_key(bits);
        for len in 0..bits.min(16) as u8 {
            let p = Prefix::of(key, len, bits);
            prop_assert!(p.is_prefix_of(key, bits));
            let d = key_bit(key, len, bits);
            prop_assert!(
                (len as u32 + 1) == bits
                    || Prefix::of(key, len, bits).child(d).is_prefix_of(key, bits)
            );
        }
        let l = lcp_len(key, other, bits);
        prop_assert_eq!(l, lcp_len(other, key, bits));
        prop_assert!(l <= bits);
        if key == other {
            prop_assert_eq!(l, bits);
        } else {
            // The keys agree on their first l bits and differ at bit l.
            if l > 0 {
                prop_assert_eq!(Prefix::of(key, l as u8, bits), Prefix::of(other, l as u8, bits));
            }
            prop_assert_ne!(key_bit(key, l as u8, bits), key_bit(other, l as u8, bits));
        }
    }

    /// After inserting any set of keys, the top-level keys are a subset of the keys
    /// and the prefix table never exceeds (universe_bits - 1) entries per top key + ε.
    #[test]
    fn trie_population_is_bounded(keys in proptest::collection::hash_set(any::<u16>(), 1..300)) {
        let trie: SkipTrie<u16> = SkipTrie::new(SkipTrieConfig::for_universe_bits(16));
        for &k in &keys {
            trie.insert(k as u64, k);
        }
        let key_set: std::collections::HashSet<u64> = keys.iter().map(|&k| k as u64).collect();
        let top = trie.top_level_keys();
        for t in &top {
            prop_assert!(key_set.contains(t));
        }
        prop_assert!(trie.prefix_count() <= top.len() * 15 + 1);
        // Full drain returns the trie to its pristine state.
        for &k in &keys {
            prop_assert_eq!(trie.remove(k as u64), Some(k));
        }
        prop_assert!(trie.is_empty());
        prop_assert_eq!(trie.prefix_count(), 1);
    }
}
