//! Regression test: queries for a *present top-level* key must not restart from
//! the head sentinel.
//!
//! The x-fast walk (`walk_to_le`, Algorithm 4) legitimately stops at a node with
//! key `<= x` — for a key that is itself linked on the top level, that is the
//! key's own node. `list_search` needs a start with key strictly `< x`, and its
//! hint validation used to reject the exact-match hint by falling all the way
//! back to the head sentinel, turning every present-top-level-key `get` /
//! `predecessor` into an O(n) top-level walk. The fix retreats one `prev` guide
//! instead, so this test pins the per-query pointer-read cost to a small
//! constant.
//!
//! The assertion is an *upper bound* on a process-wide counter delta, which is
//! only sound while nothing else records — keep this test alone in its binary
//! (same pitfall class as `tests/forest_occupancy.rs`).

use skiptrie::{SkipTrie, SkipTrieConfig};
use skiptrie_metrics::{self as metrics, Counter};

#[test]
fn present_top_level_key_queries_stay_cheap() {
    let n: u64 = 1 << 12;
    let trie: SkipTrie<u64> = SkipTrie::new(SkipTrieConfig::for_universe_bits(32).with_seed(7));
    for i in 0..n {
        // Spread the keys across the universe so their published prefixes differ.
        let k = i * 1_000_003;
        trie.insert(k, !k);
    }

    let tops = trie.top_level_keys();
    assert!(
        tops.len() >= 32,
        "need a populated top level to exercise exact-match hints (got {})",
        tops.len()
    );

    let ops = tops.len() * 2;
    let ((), d) = metrics::measure(|| {
        for &k in &tops {
            assert_eq!(trie.predecessor(k), Some((k, !k)));
            assert_eq!(trie.get(k), Some(!k));
        }
    });
    let per_op = d.get(Counter::PtrRead) as f64 / ops as f64;
    // Post-fix a query costs a handful of reads per skiplist level (~15/op here);
    // the pre-fix head restart walked half the top level (~100+/op at this size,
    // linear in n). The bound is loose enough for tower-height randomness yet far
    // below the broken regime.
    assert!(
        per_op < 40.0,
        "present-top-level-key queries average {per_op:.1} pointer reads/op — \
         the exact-match hint is being rejected back to the head sentinel"
    );
}
