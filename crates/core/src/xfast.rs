//! The concurrent x-fast trie (paper, Section 4).
//!
//! The trie is a hash table (`prefixes`, a lock-free split-ordered map) from every
//! proper prefix of every top-level key to a [`TrieNode`]. Unlike the sequential
//! x-fast trie, *every* trie node stores two pointers into the top level of the
//! skiplist — `pointers[0]`, the largest key in the prefix's 0-subtree, and
//! `pointers[1]`, the smallest key in its 1-subtree — so that a query always holds a
//! usable pointer even when concurrent deletes empty a subtree (Section 4, "The data
//! structure").
//!
//! * [`SkipTrie::lowest_ancestor`] is Algorithm 3: binary search on prefix length,
//!   remembering the best candidate seen.
//! * [`SkipTrie::xfast_pred`] is Algorithm 4: walk `back`/`prev` guides from the
//!   ancestor to a top-level node with key `<= x`.
//! * [`SkipTrie::insert_prefixes`] is Algorithm 6 lines 5–20.
//! * [`SkipTrie::cleanup_prefixes`] is Algorithm 7 lines 5–22.
//!
//! Pointer swings are DCSS-conditioned on the *target node's* status word, the
//! strengthened form of the paper's "conditioned on x remaining unmarked" (see
//! `skiptrie-atomics` for the exact argument); the paper proves linearizability is
//! preserved even if these guards are dropped entirely.

use std::sync::atomic::AtomicU64;

use crossbeam_epoch::Guard;
use skiptrie_atomics::dcss::{cas_resolved, dcss, read_resolved, DcssError};
use skiptrie_atomics::retire_boxes_born;
use skiptrie_metrics::{self as metrics, Counter};
use skiptrie_skiplist::NodeRef;

use crate::prefix::{in_subtree, key_bit, Prefix};
use crate::SkipTrie;

/// A node of the x-fast trie's conceptual prefix tree.
///
/// `pointers[d]` holds the packed word of a top-level skiplist node: the largest key
/// in the `prefix·0` subtree (`d == 0`) or the smallest key in the `prefix·1` subtree
/// (`d == 1`); `0` (null) means the subtree is empty (modulo in-flight inserts). A
/// trie node whose two pointers are both null is slated for removal from the hash
/// table, and any operation that observes it in that state helps remove it.
pub(crate) struct TrieNode {
    pub(crate) pointers: [AtomicU64; 2],
    /// Era-clock value at allocation (hazard substrate only; `0` = unknown, which
    /// is always sound). Stamped before the node is published into the hash table,
    /// so it cannot postdate the node's reachability; consumed (as the batch
    /// minimum) when a [`TrieRetireBatch`] retires removed nodes.
    pub(crate) birth: u64,
}

impl TrieNode {
    pub(crate) fn new(birth: u64) -> Self {
        TrieNode {
            pointers: [AtomicU64::new(0), AtomicU64::new(0)],
            birth,
        }
    }
}

/// A `Copy` handle to a heap-allocated [`TrieNode`], stored as the value type of the
/// `prefixes` hash table.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct TrieNodePtr(pub(crate) u64);

// SAFETY: the pointer is only dereferenced while pinned; trie nodes are retired
// through the epoch collector after being removed from the hash table.
unsafe impl Send for TrieNodePtr {}
unsafe impl Sync for TrieNodePtr {}

impl TrieNodePtr {
    pub(crate) fn from_box(node: Box<TrieNode>) -> Self {
        TrieNodePtr(Box::into_raw(node) as u64)
    }

    /// # Safety
    ///
    /// The caller must be pinned and the node must not have been freed (it is retired
    /// only after removal from the hash table, so holders that found it there while
    /// pinned are protected).
    pub(crate) unsafe fn deref<'g>(&self, _guard: &'g Guard) -> &'g TrieNode {
        &*(self.0 as *const TrieNode)
    }
}

/// Trie nodes unlinked by one operation, retired together when the batch drops — a
/// single deferred closure per operation instead of one per node, on every exit path
/// of the helping loops.
struct TrieRetireBatch<'g> {
    guard: &'g Guard,
    ptrs: Vec<*mut TrieNode>,
}

impl<'g> TrieRetireBatch<'g> {
    fn new(guard: &'g Guard) -> Self {
        TrieRetireBatch {
            guard,
            ptrs: Vec::new(),
        }
    }

    /// Adds a trie node this thread just removed from the hash table (sole owner).
    fn push(&mut self, tnp: TrieNodePtr) {
        self.ptrs.push(tnp.0 as *mut TrieNode);
    }
}

impl Drop for TrieRetireBatch<'_> {
    fn drop(&mut self) {
        let ptrs = std::mem::take(&mut self.ptrs);
        // The batch is freed atomically, so it must carry the *minimum* member
        // birth: an over-young stamp would let an older member escape a stalled
        // hazard reader's protection interval.
        // SAFETY: the batch owns the pointers (removed from the hash table by a
        // `remove_if` this thread won); they stay valid until the deferred free.
        let birth = ptrs
            .iter()
            .map(|&p| unsafe { (*p).birth })
            .min()
            .unwrap_or(0);
        // SAFETY: sole retirement owner as above; each pointer is retired once.
        unsafe { retire_boxes_born(self.guard, ptrs, birth) };
    }
}

impl<V> SkipTrie<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Algorithm 3: binary search on prefix length for the lowest ancestor of `key`,
    /// returning the best top-level pointer encountered.
    ///
    /// Each probe is one `prefixes.get` — `O(1)` *expected* only while the hash
    /// table's chains stay short, which the unbounded bucket directory (the default)
    /// guarantees at every size. Under a legacy bounded directory
    /// ([`crate::SkipTrieConfig::with_hash_bucket_cap`]) every probe past saturation
    /// degrades into a chain walk, and with it the whole `O(log log u)` bound — the
    /// degradation the E12 experiment measures.
    pub(crate) fn lowest_ancestor<'g>(&'g self, key: u64, guard: &'g Guard) -> NodeRef<'g, V> {
        let b = self.universe_bits();
        let head = self.skiplist().head_top();

        // Start from the root (ε) entry, as the paper's line 4.
        let mut ancestor: NodeRef<'g, V> = head;
        if let Some(root_tn) = self.prefixes.get(&Prefix::EMPTY) {
            // SAFETY: pinned; trie nodes retired only after hash-table removal.
            let tn = unsafe { root_tn.deref(guard) };
            let d = key_bit(key, 0, b) as usize;
            let word = read_resolved(&tn.pointers[d], guard);
            // SAFETY: trie pointers reference skiplist nodes kept valid by the pool.
            if let Some(node) = unsafe { NodeRef::from_packed(word, guard) } {
                ancestor = node;
            }
        }

        let mut common_len: u32 = 0;
        let mut size: u32 = b / 2;
        while size > 0 {
            let query_len = common_len + size;
            if query_len >= b {
                size /= 2;
                continue;
            }
            let query = Prefix::of(key, query_len as u8, b);
            metrics::record(Counter::HashOp);
            if let Some(tnp) = self.prefixes.get(&query) {
                // SAFETY: pinned, as above.
                let tn = unsafe { tnp.deref(guard) };
                // Remember the best pointer seen so far (paper: "the query always
                // remembers the 'best' pointer into the linked list it has seen").
                // Both children are inspected: at the lowest ancestor itself the
                // subtree on the key's side is empty, and it is the *sibling* pointer
                // that holds the key's immediate top-level neighbour.
                for direction in 0..2 {
                    let word = read_resolved(&tn.pointers[direction], guard);
                    // SAFETY: as above.
                    if let Some(candidate) = unsafe { NodeRef::from_packed(word, guard) } {
                        if candidate.is_data() && query.is_prefix_of(candidate.key(), b) {
                            let cand_dist = candidate.key().abs_diff(key);
                            let anc_dist = if ancestor.is_data() {
                                ancestor.key().abs_diff(key)
                            } else {
                                u64::MAX
                            };
                            if cand_dist <= anc_dist {
                                ancestor = candidate;
                            }
                        }
                    }
                }
                common_len = query_len;
            }
            size /= 2;
        }
        ancestor
    }

    /// Algorithm 4: from the lowest ancestor, walk `back` pointers (marked nodes) and
    /// `prev` guides (unmarked nodes) until reaching a top-level node with key
    /// `<= key`. The result is the start hint for the skiplist descent.
    pub(crate) fn xfast_pred<'g>(&'g self, key: u64, guard: &'g Guard) -> NodeRef<'g, V> {
        let ancestor = self.lowest_ancestor(key, guard);
        self.skiplist().walk_to_le(key, ancestor, guard)
    }

    /// Algorithm 6 lines 5–20: publish the prefixes of a freshly inserted top-level
    /// node, longest prefix first (bottom-up in the conceptual tree).
    pub(crate) fn insert_prefixes(&self, key: u64, node: NodeRef<'_, V>, guard: &Guard) {
        let b = self.universe_bits();
        let mut retired = TrieRetireBatch::new(guard);
        for len in (0..b as u8).rev() {
            let p = Prefix::of(key, len, b);
            let direction = key_bit(key, len, b) as usize;
            loop {
                // The paper's loop guard: stop as soon as our node starts being
                // deleted — the deleter takes over responsibility for the trie.
                if node.is_stopped() || node.is_marked(guard) {
                    return;
                }
                match self.prefixes.get(&p) {
                    None => {
                        // Create a fresh trie node pointing down at our key. The
                        // birth stamp precedes the publishing `insert`, so it
                        // cannot postdate reachability.
                        let tn = Box::new(TrieNode::new(guard.current_era()));
                        tn.pointers[direction]
                            .store(node.packed(), std::sync::atomic::Ordering::SeqCst);
                        let tnp = TrieNodePtr::from_box(tn);
                        if self.prefixes.insert(p, tnp) {
                            metrics::record(Counter::TrieLevelCrossed);
                            break;
                        }
                        // Lost the race to create this prefix: free ours and retry.
                        // SAFETY: never published.
                        unsafe { drop(Box::from_raw(tnp.0 as *mut TrieNode)) };
                    }
                    Some(tnp) => {
                        // SAFETY: pinned; retired only after hash-table removal.
                        let tn = unsafe { tnp.deref(guard) };
                        let p0 = read_resolved(&tn.pointers[0], guard);
                        let p1 = read_resolved(&tn.pointers[1], guard);
                        if p0 == 0 && p1 == 0 && p.len > 0 {
                            // Slated for deletion: help remove it, then retry.
                            if self.prefixes.remove_if(&p, |v| *v == tnp) {
                                // We removed it; sole retirement owner (batched).
                                retired.push(tnp);
                            }
                            continue;
                        }
                        let curr = read_resolved(&tn.pointers[direction], guard);
                        if curr != 0 {
                            // SAFETY: trie pointers reference pool-backed nodes.
                            if let Some(existing) =
                                unsafe { NodeRef::<V>::from_packed(curr, guard) }
                            {
                                let adequate = existing.is_data()
                                    && if direction == 0 {
                                        existing.key() >= key
                                    } else {
                                        existing.key() <= key
                                    };
                                if adequate {
                                    metrics::record(Counter::TrieLevelCrossed);
                                    break;
                                }
                            }
                        }
                        // Swing the pointer to our node, conditioned on our node not
                        // being deleted (paper: "conditioned on x remaining unmarked").
                        let status = node.status();
                        if status & 1 != 0 {
                            return; // stopped
                        }
                        // SAFETY: the guard word is the node's status (pool-backed).
                        let res = unsafe {
                            dcss(
                                &tn.pointers[direction],
                                curr,
                                node.packed(),
                                node.status_word_ptr(),
                                status,
                                self.mode(),
                                guard,
                            )
                        };
                        match res {
                            Ok(()) => {
                                metrics::record(Counter::TrieLevelCrossed);
                                break;
                            }
                            Err(DcssError::GuardMismatch) => return,
                            Err(DcssError::TargetMismatch(_)) => {
                                metrics::record(Counter::Restart);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Algorithm 7 lines 5–22: after deleting a top-level key, make sure no trie
    /// pointer still references it, shrinking or removing trie nodes whose subtrees
    /// became empty. Runs top-down (shortest prefix first).
    pub(crate) fn cleanup_prefixes(&self, key: u64, guard: &Guard) {
        let b = self.universe_bits();
        let mut retired = TrieRetireBatch::new(guard);
        // Seed the top-level searches with the trie's own lowest-ancestor hint and
        // keep refreshing it with each search result; starting every search at the
        // head sentinel would cost O(top-level length) per prefix level.
        let mut hint = self.lowest_ancestor(key, guard);
        for len in 0..b as u8 {
            let p = Prefix::of(key, len, b);
            let direction = key_bit(key, len, b) as usize;
            let Some(tnp) = self.prefixes.get(&p) else {
                continue;
            };
            // SAFETY: pinned; retired only after hash-table removal.
            let tn = unsafe { tnp.deref(guard) };

            // Swing the pointer away while it still references a deleted node with
            // our key (robust version of the paper's `while curr = node`).
            let mut spins = 0usize;
            loop {
                spins += 1;
                metrics::record(Counter::TrieLevelCrossed);
                let curr = read_resolved(&tn.pointers[direction], guard);
                if curr == 0 {
                    break;
                }
                // SAFETY: pool-backed skiplist node.
                let Some(curr_node) = (unsafe { NodeRef::<V>::from_packed(curr, guard) }) else {
                    break;
                };
                let points_at_victim = curr_node.is_data()
                    && curr_node.key() == key
                    && (curr_node.is_stopped() || curr_node.is_marked(guard));
                if !points_at_victim {
                    break;
                }
                let (left, right) = self.skiplist().top_list_search(key, Some(hint), guard);
                hint = left;
                if direction == 0 {
                    // pointers[0] must be the largest key in the 0-subtree: swing
                    // backwards to `left` (or clear if the subtree has no live node).
                    let status = left.status();
                    if left.is_data() && status & 1 == 0 {
                        // SAFETY: guard word is `left`'s status.
                        let _ = unsafe {
                            dcss(
                                &tn.pointers[direction],
                                curr,
                                left.packed(),
                                left.status_word_ptr(),
                                status,
                                self.mode(),
                                guard,
                            )
                        };
                    } else if left.is_head() {
                        let _ = cas_resolved(&tn.pointers[direction], curr, 0, guard);
                    }
                } else {
                    // pointers[1] must be the smallest key in the 1-subtree: make sure
                    // the successor's prev is repaired (the paper's makeDone), then
                    // swing forwards to `right`.
                    self.skiplist().ensure_prev(left, right, guard);
                    let status = right.status();
                    if right.is_data() && status & 1 == 0 {
                        // SAFETY: guard word is `right`'s status.
                        let _ = unsafe {
                            dcss(
                                &tn.pointers[direction],
                                curr,
                                right.packed(),
                                right.status_word_ptr(),
                                status,
                                self.mode(),
                                guard,
                            )
                        };
                    } else if right.is_tail() {
                        let _ = cas_resolved(&tn.pointers[direction], curr, 0, guard);
                    }
                }
                if spins > 128 {
                    // The pointer keeps being re-pointed at deleted incarnations of
                    // this key by racing operations; bail out — hints are self-healing
                    // and linearizability does not depend on them.
                    break;
                }
            }

            // If the pointer's target is no longer inside the p·direction subtree,
            // the subtree has become empty from the trie's perspective: clear it.
            let curr = read_resolved(&tn.pointers[direction], guard);
            if curr != 0 {
                // SAFETY: pool-backed skiplist node.
                if let Some(curr_node) = unsafe { NodeRef::<V>::from_packed(curr, guard) } {
                    let in_tree =
                        curr_node.is_data() && in_subtree(p, direction as u8, curr_node.key(), b);
                    if !in_tree {
                        let _ = cas_resolved(&tn.pointers[direction], curr, 0, guard);
                    }
                }
            }

            // If both subtrees are now empty, remove the trie node itself (the empty
            // prefix ε is permanent).
            if p.len > 0 {
                let p0 = read_resolved(&tn.pointers[0], guard);
                let p1 = read_resolved(&tn.pointers[1], guard);
                if p0 == 0 && p1 == 0 && self.prefixes.remove_if(&p, |v| *v == tnp) {
                    // We removed the entry; sole retirement owner (batched).
                    retired.push(tnp);
                }
            }
        }
    }

    /// Number of prefixes currently stored in the trie's hash table (statistics for
    /// experiments F1/E5).
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }

    /// Single-owner counterpart of [`SkipTrie::insert_prefixes`], used by
    /// [`SkipTrie::bulk_load`]: populate the whole prefix table from the sorted
    /// `(key, packed word)` list of top-level nodes, with **one hash-table insert
    /// per distinct prefix and no lookups at all** (the per-key formulation costs
    /// `universe_bits` lookups per top key; this layered one is what makes bulk
    /// ingest land well clear of the sequential-insert baseline).
    ///
    /// Layer by layer (prefix length 0, 1, …): the keys sharing a prefix form one
    /// contiguous *run* of the sorted list, and within a run the `0`-direction keys
    /// precede the `1`-direction keys, so the trie node's final contents read off
    /// directly — `pointers[0]` = last key of the run's 0-half (the subtree
    /// maximum), `pointers[1]` = first key of its 1-half (the subtree minimum).
    /// Each node is built complete, and the whole batch lands in the hash table
    /// through one [`SplitOrderedMap::bulk_load`](skiptrie_splitorder::SplitOrderedMap::bulk_load)
    /// merge (ε, which is permanent, is stored through in place instead). The
    /// quiescent result is field-for-field what sequential `insert_prefixes` calls
    /// would have produced.
    pub(crate) fn bulk_publish_prefixes(&mut self, tops: &[(u64, u64)], guard: &Guard) {
        use std::sync::atomic::Ordering;
        let b = self.universe_bits();
        let mut batch: Vec<(Prefix, TrieNodePtr)> = Vec::new();
        for len in 0..b as u8 {
            let mut i = 0usize;
            while i < tops.len() {
                let p = Prefix::of(tops[i].0, len, b);
                let mut j = i + 1;
                while j < tops.len() && Prefix::of(tops[j].0, len, b) == p {
                    j += 1;
                }
                let run = &tops[i..j];
                let split = run.partition_point(|&(k, _)| key_bit(k, len, b) == 0);
                let p0 = if split > 0 { run[split - 1].1 } else { 0 };
                let p1 = if split < run.len() { run[split].1 } else { 0 };
                if len == 0 {
                    // ε exists from construction; fill its pointers in place.
                    let tnp = self.prefixes.get(&Prefix::EMPTY).expect("ε is permanent");
                    // SAFETY: pinned; ε is never removed.
                    let tn = unsafe { tnp.deref(guard) };
                    if p0 != 0 {
                        tn.pointers[0].store(p0, Ordering::SeqCst);
                    }
                    if p1 != 0 {
                        tn.pointers[1].store(p1, Ordering::SeqCst);
                    }
                } else {
                    // Single-owner bulk path: birth 0 is the always-sound
                    // conservative stamp for never-yet-published nodes.
                    let tn = Box::new(TrieNode::new(0));
                    tn.pointers[0].store(p0, Ordering::Relaxed);
                    tn.pointers[1].store(p1, Ordering::Relaxed);
                    batch.push((p, TrieNodePtr::from_box(tn)));
                }
                i = j;
            }
        }
        self.prefixes.bulk_load(batch);
    }

    /// Audits the x-fast trie against the skiplist's top level under one pin,
    /// panicking on a violated invariant; returns the number of `(top key, prefix)`
    /// pairs checked. **Quiescent-only** (like [`SkipTrie::to_vec`]): concurrent
    /// updates legitimately leave transient states this audit would reject.
    ///
    /// For every key currently on the top level and every proper prefix `p` of it,
    /// the audit requires:
    ///
    /// * the trie node for `p` exists in the hash table;
    /// * `pointers[d]` (where `d` is the key's direction under `p`) is non-null and
    ///   references a live, unmarked node of the top level;
    /// * the target's key lies inside the `p·d` subtree, and brackets the audited
    ///   key from the correct side (`>= key` for `d = 0` — the subtree maximum —
    ///   and `<= key` for `d = 1`, the subtree minimum).
    ///
    /// Together with [`SkipTrie::check_traversal_integrity`] this is the "bulk load
    /// is indistinguishable from sequential inserts" proof obligation: both passes
    /// run automatically (debug builds) at the end of [`SkipTrie::bulk_load`].
    pub fn check_trie_integrity(&self) -> usize {
        let top = self.skiplist().top_level();
        if top == 0 {
            // Single-level lists never publish prefixes (the insert path reports no
            // top node when the raise loop has no levels to raise through).
            return 0;
        }
        let b = self.universe_bits();
        let guard = self.skiplist().pin();
        let mut checked = 0usize;
        for key in self.skiplist().top_level_keys() {
            for len in 0..b as u8 {
                let p = Prefix::of(key, len, b);
                let direction = key_bit(key, len, b) as usize;
                let tnp = self
                    .prefixes
                    .get(&p)
                    .unwrap_or_else(|| panic!("prefix {p:?} of top key {key} missing"));
                // SAFETY: pinned; retired only after hash-table removal.
                let tn = unsafe { tnp.deref(&guard) };
                let word = read_resolved(&tn.pointers[direction], &guard);
                // SAFETY: trie pointers reference pool-kept skiplist nodes.
                let target =
                    unsafe { NodeRef::<V>::from_packed(word, &guard) }.unwrap_or_else(|| {
                        panic!("prefix {p:?} of top key {key}: pointers[{direction}] is null")
                    });
                assert!(
                    target.is_data() && target.level() == top && !target.is_marked(&guard),
                    "prefix {p:?} of top key {key}: pointer targets a dead or non-top node"
                );
                assert!(
                    in_subtree(p, direction as u8, target.key(), b),
                    "prefix {p:?} of top key {key}: target {} outside the {direction}-subtree",
                    target.key()
                );
                assert!(
                    if direction == 0 {
                        target.key() >= key
                    } else {
                        target.key() <= key
                    },
                    "prefix {p:?} of top key {key}: target {} brackets the wrong side",
                    target.key()
                );
                checked += 1;
            }
        }
        checked
    }
}
