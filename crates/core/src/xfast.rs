//! The concurrent x-fast trie (paper, Section 4).
//!
//! The trie is a hash table (`prefixes`, a lock-free split-ordered map) from every
//! proper prefix of every top-level key to a [`TrieNode`]. Unlike the sequential
//! x-fast trie, *every* trie node stores two pointers into the top level of the
//! skiplist — `pointers[0]`, the largest key in the prefix's 0-subtree, and
//! `pointers[1]`, the smallest key in its 1-subtree — so that a query always holds a
//! usable pointer even when concurrent deletes empty a subtree (Section 4, "The data
//! structure").
//!
//! * [`SkipTrie::lowest_ancestor`] is Algorithm 3: binary search on prefix length,
//!   remembering the best candidate seen.
//! * [`SkipTrie::xfast_pred`] is Algorithm 4: walk `back`/`prev` guides from the
//!   ancestor to a top-level node with key `<= x`.
//! * [`SkipTrie::insert_prefixes`] is Algorithm 6 lines 5–20.
//! * [`SkipTrie::cleanup_prefixes`] is Algorithm 7 lines 5–22.
//!
//! Pointer swings are DCSS-conditioned on the *target node's* status word, the
//! strengthened form of the paper's "conditioned on x remaining unmarked" (see
//! `skiptrie-atomics` for the exact argument); the paper proves linearizability is
//! preserved even if these guards are dropped entirely.

use std::sync::atomic::AtomicU64;

use crossbeam_epoch::Guard;
use skiptrie_atomics::dcss::{cas_resolved, dcss, read_resolved, DcssError};
use skiptrie_atomics::retire_boxes;
use skiptrie_metrics::{self as metrics, Counter};
use skiptrie_skiplist::NodeRef;

use crate::prefix::{in_subtree, key_bit, Prefix};
use crate::SkipTrie;

/// A node of the x-fast trie's conceptual prefix tree.
///
/// `pointers[d]` holds the packed word of a top-level skiplist node: the largest key
/// in the `prefix·0` subtree (`d == 0`) or the smallest key in the `prefix·1` subtree
/// (`d == 1`); `0` (null) means the subtree is empty (modulo in-flight inserts). A
/// trie node whose two pointers are both null is slated for removal from the hash
/// table, and any operation that observes it in that state helps remove it.
pub(crate) struct TrieNode {
    pub(crate) pointers: [AtomicU64; 2],
}

impl TrieNode {
    pub(crate) fn new() -> Self {
        TrieNode {
            pointers: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }
}

/// A `Copy` handle to a heap-allocated [`TrieNode`], stored as the value type of the
/// `prefixes` hash table.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct TrieNodePtr(pub(crate) u64);

// SAFETY: the pointer is only dereferenced while pinned; trie nodes are retired
// through the epoch collector after being removed from the hash table.
unsafe impl Send for TrieNodePtr {}
unsafe impl Sync for TrieNodePtr {}

impl TrieNodePtr {
    pub(crate) fn from_box(node: Box<TrieNode>) -> Self {
        TrieNodePtr(Box::into_raw(node) as u64)
    }

    /// # Safety
    ///
    /// The caller must be pinned and the node must not have been freed (it is retired
    /// only after removal from the hash table, so holders that found it there while
    /// pinned are protected).
    pub(crate) unsafe fn deref<'g>(&self, _guard: &'g Guard) -> &'g TrieNode {
        &*(self.0 as *const TrieNode)
    }
}

/// Trie nodes unlinked by one operation, retired together when the batch drops — a
/// single deferred closure per operation instead of one per node, on every exit path
/// of the helping loops.
struct TrieRetireBatch<'g> {
    guard: &'g Guard,
    ptrs: Vec<*mut TrieNode>,
}

impl<'g> TrieRetireBatch<'g> {
    fn new(guard: &'g Guard) -> Self {
        TrieRetireBatch {
            guard,
            ptrs: Vec::new(),
        }
    }

    /// Adds a trie node this thread just removed from the hash table (sole owner).
    fn push(&mut self, tnp: TrieNodePtr) {
        self.ptrs.push(tnp.0 as *mut TrieNode);
    }
}

impl Drop for TrieRetireBatch<'_> {
    fn drop(&mut self) {
        // SAFETY: every pointer was removed from the hash table by a `remove_if` this
        // thread won, making it the sole retirement owner; each is retired once.
        unsafe { retire_boxes(self.guard, std::mem::take(&mut self.ptrs)) };
    }
}

impl<V> SkipTrie<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Algorithm 3: binary search on prefix length for the lowest ancestor of `key`,
    /// returning the best top-level pointer encountered.
    pub(crate) fn lowest_ancestor<'g>(&'g self, key: u64, guard: &'g Guard) -> NodeRef<'g, V> {
        let b = self.universe_bits();
        let head = self.skiplist().head_top();

        // Start from the root (ε) entry, as the paper's line 4.
        let mut ancestor: NodeRef<'g, V> = head;
        if let Some(root_tn) = self.prefixes.get(&Prefix::EMPTY) {
            // SAFETY: pinned; trie nodes retired only after hash-table removal.
            let tn = unsafe { root_tn.deref(guard) };
            let d = key_bit(key, 0, b) as usize;
            let word = read_resolved(&tn.pointers[d], guard);
            // SAFETY: trie pointers reference skiplist nodes kept valid by the pool.
            if let Some(node) = unsafe { NodeRef::from_packed(word, guard) } {
                ancestor = node;
            }
        }

        let mut common_len: u32 = 0;
        let mut size: u32 = b / 2;
        while size > 0 {
            let query_len = common_len + size;
            if query_len >= b {
                size /= 2;
                continue;
            }
            let query = Prefix::of(key, query_len as u8, b);
            metrics::record(Counter::HashOp);
            if let Some(tnp) = self.prefixes.get(&query) {
                // SAFETY: pinned, as above.
                let tn = unsafe { tnp.deref(guard) };
                // Remember the best pointer seen so far (paper: "the query always
                // remembers the 'best' pointer into the linked list it has seen").
                // Both children are inspected: at the lowest ancestor itself the
                // subtree on the key's side is empty, and it is the *sibling* pointer
                // that holds the key's immediate top-level neighbour.
                for direction in 0..2 {
                    let word = read_resolved(&tn.pointers[direction], guard);
                    // SAFETY: as above.
                    if let Some(candidate) = unsafe { NodeRef::from_packed(word, guard) } {
                        if candidate.is_data() && query.is_prefix_of(candidate.key(), b) {
                            let cand_dist = candidate.key().abs_diff(key);
                            let anc_dist = if ancestor.is_data() {
                                ancestor.key().abs_diff(key)
                            } else {
                                u64::MAX
                            };
                            if cand_dist <= anc_dist {
                                ancestor = candidate;
                            }
                        }
                    }
                }
                common_len = query_len;
            }
            size /= 2;
        }
        ancestor
    }

    /// Algorithm 4: from the lowest ancestor, walk `back` pointers (marked nodes) and
    /// `prev` guides (unmarked nodes) until reaching a top-level node with key
    /// `<= key`. The result is the start hint for the skiplist descent.
    pub(crate) fn xfast_pred<'g>(&'g self, key: u64, guard: &'g Guard) -> NodeRef<'g, V> {
        let ancestor = self.lowest_ancestor(key, guard);
        self.skiplist().walk_to_le(key, ancestor, guard)
    }

    /// Algorithm 6 lines 5–20: publish the prefixes of a freshly inserted top-level
    /// node, longest prefix first (bottom-up in the conceptual tree).
    pub(crate) fn insert_prefixes(&self, key: u64, node: NodeRef<'_, V>, guard: &Guard) {
        let b = self.universe_bits();
        let mut retired = TrieRetireBatch::new(guard);
        for len in (0..b as u8).rev() {
            let p = Prefix::of(key, len, b);
            let direction = key_bit(key, len, b) as usize;
            loop {
                // The paper's loop guard: stop as soon as our node starts being
                // deleted — the deleter takes over responsibility for the trie.
                if node.is_stopped() || node.is_marked(guard) {
                    return;
                }
                match self.prefixes.get(&p) {
                    None => {
                        // Create a fresh trie node pointing down at our key.
                        let tn = Box::new(TrieNode::new());
                        tn.pointers[direction]
                            .store(node.packed(), std::sync::atomic::Ordering::SeqCst);
                        let tnp = TrieNodePtr::from_box(tn);
                        if self.prefixes.insert(p, tnp) {
                            metrics::record(Counter::TrieLevelCrossed);
                            break;
                        }
                        // Lost the race to create this prefix: free ours and retry.
                        // SAFETY: never published.
                        unsafe { drop(Box::from_raw(tnp.0 as *mut TrieNode)) };
                    }
                    Some(tnp) => {
                        // SAFETY: pinned; retired only after hash-table removal.
                        let tn = unsafe { tnp.deref(guard) };
                        let p0 = read_resolved(&tn.pointers[0], guard);
                        let p1 = read_resolved(&tn.pointers[1], guard);
                        if p0 == 0 && p1 == 0 && p.len > 0 {
                            // Slated for deletion: help remove it, then retry.
                            if self.prefixes.remove_if(&p, |v| *v == tnp) {
                                // We removed it; sole retirement owner (batched).
                                retired.push(tnp);
                            }
                            continue;
                        }
                        let curr = read_resolved(&tn.pointers[direction], guard);
                        if curr != 0 {
                            // SAFETY: trie pointers reference pool-backed nodes.
                            if let Some(existing) =
                                unsafe { NodeRef::<V>::from_packed(curr, guard) }
                            {
                                let adequate = existing.is_data()
                                    && if direction == 0 {
                                        existing.key() >= key
                                    } else {
                                        existing.key() <= key
                                    };
                                if adequate {
                                    metrics::record(Counter::TrieLevelCrossed);
                                    break;
                                }
                            }
                        }
                        // Swing the pointer to our node, conditioned on our node not
                        // being deleted (paper: "conditioned on x remaining unmarked").
                        let status = node.status();
                        if status & 1 != 0 {
                            return; // stopped
                        }
                        // SAFETY: the guard word is the node's status (pool-backed).
                        let res = unsafe {
                            dcss(
                                &tn.pointers[direction],
                                curr,
                                node.packed(),
                                node.status_word_ptr(),
                                status,
                                self.mode(),
                                guard,
                            )
                        };
                        match res {
                            Ok(()) => {
                                metrics::record(Counter::TrieLevelCrossed);
                                break;
                            }
                            Err(DcssError::GuardMismatch) => return,
                            Err(DcssError::TargetMismatch(_)) => {
                                metrics::record(Counter::Restart);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Algorithm 7 lines 5–22: after deleting a top-level key, make sure no trie
    /// pointer still references it, shrinking or removing trie nodes whose subtrees
    /// became empty. Runs top-down (shortest prefix first).
    pub(crate) fn cleanup_prefixes(&self, key: u64, guard: &Guard) {
        let b = self.universe_bits();
        let mut retired = TrieRetireBatch::new(guard);
        // Seed the top-level searches with the trie's own lowest-ancestor hint and
        // keep refreshing it with each search result; starting every search at the
        // head sentinel would cost O(top-level length) per prefix level.
        let mut hint = self.lowest_ancestor(key, guard);
        for len in 0..b as u8 {
            let p = Prefix::of(key, len, b);
            let direction = key_bit(key, len, b) as usize;
            let Some(tnp) = self.prefixes.get(&p) else {
                continue;
            };
            // SAFETY: pinned; retired only after hash-table removal.
            let tn = unsafe { tnp.deref(guard) };

            // Swing the pointer away while it still references a deleted node with
            // our key (robust version of the paper's `while curr = node`).
            let mut spins = 0usize;
            loop {
                spins += 1;
                metrics::record(Counter::TrieLevelCrossed);
                let curr = read_resolved(&tn.pointers[direction], guard);
                if curr == 0 {
                    break;
                }
                // SAFETY: pool-backed skiplist node.
                let Some(curr_node) = (unsafe { NodeRef::<V>::from_packed(curr, guard) }) else {
                    break;
                };
                let points_at_victim = curr_node.is_data()
                    && curr_node.key() == key
                    && (curr_node.is_stopped() || curr_node.is_marked(guard));
                if !points_at_victim {
                    break;
                }
                let (left, right) = self.skiplist().top_list_search(key, Some(hint), guard);
                hint = left;
                if direction == 0 {
                    // pointers[0] must be the largest key in the 0-subtree: swing
                    // backwards to `left` (or clear if the subtree has no live node).
                    let status = left.status();
                    if left.is_data() && status & 1 == 0 {
                        // SAFETY: guard word is `left`'s status.
                        let _ = unsafe {
                            dcss(
                                &tn.pointers[direction],
                                curr,
                                left.packed(),
                                left.status_word_ptr(),
                                status,
                                self.mode(),
                                guard,
                            )
                        };
                    } else if left.is_head() {
                        let _ = cas_resolved(&tn.pointers[direction], curr, 0, guard);
                    }
                } else {
                    // pointers[1] must be the smallest key in the 1-subtree: make sure
                    // the successor's prev is repaired (the paper's makeDone), then
                    // swing forwards to `right`.
                    self.skiplist().ensure_prev(left, right, guard);
                    let status = right.status();
                    if right.is_data() && status & 1 == 0 {
                        // SAFETY: guard word is `right`'s status.
                        let _ = unsafe {
                            dcss(
                                &tn.pointers[direction],
                                curr,
                                right.packed(),
                                right.status_word_ptr(),
                                status,
                                self.mode(),
                                guard,
                            )
                        };
                    } else if right.is_tail() {
                        let _ = cas_resolved(&tn.pointers[direction], curr, 0, guard);
                    }
                }
                if spins > 128 {
                    // The pointer keeps being re-pointed at deleted incarnations of
                    // this key by racing operations; bail out — hints are self-healing
                    // and linearizability does not depend on them.
                    break;
                }
            }

            // If the pointer's target is no longer inside the p·direction subtree,
            // the subtree has become empty from the trie's perspective: clear it.
            let curr = read_resolved(&tn.pointers[direction], guard);
            if curr != 0 {
                // SAFETY: pool-backed skiplist node.
                if let Some(curr_node) = unsafe { NodeRef::<V>::from_packed(curr, guard) } {
                    let in_tree =
                        curr_node.is_data() && in_subtree(p, direction as u8, curr_node.key(), b);
                    if !in_tree {
                        let _ = cas_resolved(&tn.pointers[direction], curr, 0, guard);
                    }
                }
            }

            // If both subtrees are now empty, remove the trie node itself (the empty
            // prefix ε is permanent).
            if p.len > 0 {
                let p0 = read_resolved(&tn.pointers[0], guard);
                let p1 = read_resolved(&tn.pointers[1], guard);
                if p0 == 0 && p1 == 0 && self.prefixes.remove_if(&p, |v| *v == tnp) {
                    // We removed the entry; sole retirement owner (batched).
                    retired.push(tnp);
                }
            }
        }
    }

    /// Number of prefixes currently stored in the trie's hash table (statistics for
    /// experiments F1/E5).
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }
}
