//! A tiered read path over the SkipTrie: a frozen flat tier for the read-mostly
//! steady state, a small live [`SkipTrie`] delta for recent writes.
//!
//! Production predecessor traffic is rarely the uniform churn the paper analyses —
//! the dominant shape is read-mostly (95/5 mixes, scan pages) over a keyspace that
//! is almost static. [`TieredSkipTrie`] serves that shape "as fast as the hardware
//! allows":
//!
//! * **Frozen tier** — an immutable, flat, sorted `(u64, V)` array plus an
//!   [Eytzinger-ordered](https://algorithmica.org/en/eytzinger) copy of the keys.
//!   `get`/`predecessor` on it are a branch-free walk of an implicit binary tree
//!   laid out for cache-line locality: no pointer chasing, no CAS, and — crucially —
//!   **no epoch pin** (see below).
//! * **Live delta** — a small ordinary [`SkipTrie`] absorbing recent inserts, with
//!   a tombstone marker per deleted key so deletions shadow frozen entries.
//! * **Merge** — [`TieredSkipTrie::merge`] (called manually or by the optional
//!   background thread) seals the delta, waits for in-flight writers to drain,
//!   folds `frozen + delta` into a fresh frozen tier off to the side, and publishes
//!   it with one atomic pointer swap. Readers never block and never observe a
//!   half-built tier; the displaced tier is retired through the structure's own
//!   epoch domain.
//!
//! # Why frozen-tier reads need no pin
//!
//! Epoch pins exist to keep *unlinked* nodes alive while a traversal might still
//! reach them. The frozen tier is not a linked structure: it is one immutable
//! allocation owned by an [`Arc`], and the published `Tiers` triple that points at
//! it is reference-counted too. Each reader thread caches one `Arc<Tiers>` per
//! structure in thread-local storage, tagged with the *generation* (swap count) it
//! was read at. The steady-state read is then: one atomic generation load, a
//! thread-local lookup, and a bounded array search — no pin, no shared-cache-line
//! read-modify-write, nothing for other readers to contend on. Only when the
//! generation moved (a merge published) does the thread take the slow path: pin the
//! structure's epoch domain, load the current pointer, bump its refcount, recache.
//! The pin there makes the pointer load safe against a concurrent swap-and-retire;
//! the cached `Arc` then keeps the tier alive pin-free for the whole generation.
//!
//! # Consistency contract (weak, documented)
//!
//! Single-threaded use is exact: the structure is observationally equal to a plain
//! [`SkipTrie`] (property-tested in `proptest_tiered.rs`). Under concurrency the
//! contract is the same weak consistency the rest of the workspace offers, plus
//! tier staleness bounded by one generation:
//!
//! * A read may be served from a `Tiers` triple up to one published merge behind
//!   the freshest one (each thread's view is monotone — generations never regress).
//! * Keys stable across the whole operation are always observed: present stable
//!   keys are found, removed-and-quiesced keys stay dead (their tombstones ride
//!   every merge until the shadowed entry is gone).
//! * Writers racing each other on the *same* key may both report success
//!   (`insert`/`remove` return values are exact when at most one writer touches a
//!   key at a time); [`TieredSkipTrie::len`] is maintained as a net counter with
//!   the same caveat.

use std::any::Any;
use std::ops::RangeBounds;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam_epoch::{self as epoch, Guard};
use skiptrie_metrics::{self as metrics, Counter};

use crate::{max_key, SkipTrie, SkipTrieConfig};

/// Search algorithm used by the frozen tier's `lower_bound`.
///
/// Both return the index of the first key `>= x`; they differ only in how they
/// walk the sorted array, which matters at large populations:
///
/// * [`FrozenSearch::Eytzinger`] — branch-free descent of an implicit binary
///   tree in BFS layout: `O(log n)` steps, each touching one cache line laid
///   out for prefetch-friendliness. Robust to any key distribution.
/// * [`FrozenSearch::Interpolation`] — guesses the position from the key's
///   value relative to the span endpoints: `O(log log n)` expected steps when
///   keys are near-uniform (the common shape after hashed workloads), falling
///   back to a short bounded scan once the window is small. Degrades gracefully
///   (still correct, at worst linear convergence) on adversarial distributions.
///
/// A/B numbers live in `EXPERIMENTS.md` §E14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrozenSearch {
    /// Branch-free Eytzinger (BFS-layout) binary search — the default.
    #[default]
    Eytzinger,
    /// Interpolation search over the sorted array (near-uniform keys).
    Interpolation,
}

/// Configuration of a [`TieredSkipTrie`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TieredSkipTrieConfig {
    /// Configuration of the live-delta [`SkipTrie`] (universe width, DCSS mode,
    /// seed, epoch domain, prefix-directory shape). The epoch domain also governs
    /// retirement of displaced frozen tiers.
    pub trie: SkipTrieConfig,
    /// If set, a background thread calls [`TieredSkipTrie::merge`] at this period
    /// until the structure is dropped. `None` (the default) leaves merging to
    /// explicit [`TieredSkipTrie::merge`] calls or the watermark trigger.
    pub merge_every: Option<Duration>,
    /// If set, writers arm a merge as soon as this many delta writes have
    /// accumulated since the last seal: the crossing write checks a plain atomic
    /// counter and unparks the merge thread (or the forest's coordinator) — no
    /// timer involved. `None` (the default) disables the watermark trigger.
    pub merge_watermark: Option<usize>,
    /// How the frozen tier searches its sorted key array.
    pub frozen_search: FrozenSearch,
}

impl Default for TieredSkipTrieConfig {
    fn default() -> Self {
        TieredSkipTrieConfig::for_universe_bits(32)
    }
}

impl TieredSkipTrieConfig {
    /// A tiered trie over `universe_bits`-bit keys with no background merging.
    ///
    /// # Panics
    ///
    /// Panics if `universe_bits` is not in `1..=64`.
    pub fn for_universe_bits(universe_bits: u32) -> Self {
        TieredSkipTrieConfig {
            trie: SkipTrieConfig::for_universe_bits(universe_bits),
            merge_every: None,
            merge_watermark: None,
            frozen_search: FrozenSearch::Eytzinger,
        }
    }

    /// Uses `trie` for the live delta (and its domain for tier retirement).
    pub fn with_trie(mut self, trie: SkipTrieConfig) -> Self {
        self.trie = trie;
        self
    }

    /// Enables the background merge thread with period `every`.
    pub fn with_merge_every(mut self, every: Duration) -> Self {
        self.merge_every = Some(every);
        self
    }

    /// Arms the delta-size watermark: a merge is triggered (and the merge thread
    /// unparked) once `watermark` writes have landed in the live delta.
    ///
    /// # Panics
    ///
    /// Panics if `watermark` is zero.
    pub fn with_merge_watermark(mut self, watermark: usize) -> Self {
        assert!(watermark > 0, "merge watermark must be positive");
        self.merge_watermark = Some(watermark);
        self
    }

    /// Selects the frozen-tier search algorithm (see [`FrozenSearch`]).
    pub fn with_frozen_search(mut self, search: FrozenSearch) -> Self {
        self.frozen_search = search;
        self
    }
}

/// What the delta knows about a key: a recent value, or "deleted here" shadowing
/// any older tier.
#[derive(Clone)]
enum Delta<V> {
    Put(V),
    Tombstone,
}

/// The immutable frozen tier: entries sorted by key, plus an Eytzinger (BFS-order)
/// layout of the keys for branch-free, cache-friendly binary search (or
/// interpolation search directly over `sorted`, per [`FrozenSearch`]).
struct FrozenTier<V> {
    /// Entries in increasing key order.
    sorted: Box<[(u64, V)]>,
    /// `eyt[k]` (1-indexed, `1..=n`) is the key at Eytzinger position `k`.
    eyt: Box<[u64]>,
    /// Maps an Eytzinger position back to its index in `sorted`.
    rank: Box<[u32]>,
    /// Which `lower_bound` algorithm serves this tier.
    search: FrozenSearch,
}

impl<V: Clone> FrozenTier<V> {
    fn build_with(sorted: Vec<(u64, V)>, search: FrozenSearch) -> Self {
        let n = sorted.len();
        assert!(
            n < u32::MAX as usize,
            "frozen tier is limited to under 2^32 entries"
        );
        let mut eyt = vec![0u64; n + 1].into_boxed_slice();
        let mut rank = vec![0u32; n + 1].into_boxed_slice();
        // In-order traversal of the implicit complete tree assigns sorted ranks to
        // Eytzinger slots (slot 0 is unused padding).
        fn fill<V>(
            sorted: &[(u64, V)],
            eyt: &mut [u64],
            rank: &mut [u32],
            k: usize,
            next: &mut usize,
        ) {
            if k > sorted.len() {
                return;
            }
            fill(sorted, eyt, rank, 2 * k, next);
            eyt[k] = sorted[*next].0;
            rank[k] = *next as u32;
            *next += 1;
            fill(sorted, eyt, rank, 2 * k + 1, next);
        }
        let mut next = 0usize;
        fill(&sorted, &mut eyt, &mut rank, 1, &mut next);
        debug_assert_eq!(next, n);
        FrozenTier {
            sorted: sorted.into_boxed_slice(),
            eyt,
            rank,
            search,
        }
    }

    fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Index in `sorted` of the first key `>= x` (`len()` if none), by the
    /// configured [`FrozenSearch`] algorithm.
    fn lower_bound(&self, x: u64) -> usize {
        match self.search {
            FrozenSearch::Eytzinger => self.lower_bound_eytzinger(x),
            FrozenSearch::Interpolation => self.lower_bound_interpolated(x),
        }
    }

    /// The branch-free Eytzinger descent. Each step reads one slot and computes
    /// the next index arithmetically; the final fix-up (`trailing_ones`) recovers
    /// the last left turn of the virtual walk.
    fn lower_bound_eytzinger(&self, x: u64) -> usize {
        let n = self.sorted.len();
        if n == 0 {
            return 0;
        }
        let mut k = 1usize;
        while k <= n {
            k = 2 * k + usize::from(self.eyt[k] < x);
        }
        k >>= k.trailing_ones() + 1;
        if k == 0 {
            n
        } else {
            self.rank[k] as usize
        }
    }

    /// Interpolation search over `sorted`: position the probe proportionally to
    /// `x` within the current span's key range. `O(log log n)` expected probes on
    /// near-uniform keys; always correct (the window shrinks by at least one slot
    /// per probe), finishing with a linear scan once the window is small.
    fn lower_bound_interpolated(&self, x: u64) -> usize {
        let s = &self.sorted;
        let n = s.len();
        if n == 0 || x <= s[0].0 {
            return 0;
        }
        if x > s[n - 1].0 {
            return n;
        }
        // Invariant: s[lo].0 < x <= s[hi].0, so the answer lies in (lo, hi].
        let (mut lo, mut hi) = (0usize, n - 1);
        while hi - lo > 8 {
            let (klo, khi) = (s[lo].0, s[hi].0);
            // u128 keeps (x - klo) * width exact for any 64-bit keys.
            let offset = ((x - klo) as u128 * (hi - lo) as u128 / (khi - klo) as u128) as usize;
            let mid = (lo + offset).clamp(lo + 1, hi - 1);
            if s[mid].0 < x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut i = lo + 1;
        while s[i].0 < x {
            i += 1;
        }
        i
    }

    fn get(&self, key: u64) -> Option<V> {
        let lb = self.lower_bound(key);
        match self.sorted.get(lb) {
            Some(&(k, ref v)) if k == key => Some(v.clone()),
            _ => None,
        }
    }

    /// Largest key `<= key`, by index in `sorted`.
    fn predecessor_index(&self, key: u64) -> Option<usize> {
        let lb = self.lower_bound(key);
        if let Some(&(k, _)) = self.sorted.get(lb) {
            if k == key {
                return Some(lb);
            }
        }
        lb.checked_sub(1)
    }

    fn predecessor_key(&self, key: u64) -> Option<u64> {
        self.predecessor_index(key).map(|i| self.sorted[i].0)
    }

    fn predecessor(&self, key: u64) -> Option<(u64, V)> {
        self.predecessor_index(key).map(|i| self.sorted[i].clone())
    }

    fn successor_key(&self, key: u64) -> Option<u64> {
        self.sorted.get(self.lower_bound(key)).map(|&(k, _)| k)
    }

    fn successor(&self, key: u64) -> Option<(u64, V)> {
        self.sorted.get(self.lower_bound(key)).cloned()
    }
}

/// One published state of the structure. Immutable as a triple: merges replace the
/// whole `Tiers` rather than mutating it (the live delta's *contents* do change —
/// that is where writes go).
struct Tiers<V> {
    frozen: Arc<FrozenTier<V>>,
    /// The delta absorbing current writes.
    live: Arc<SkipTrie<Delta<V>>>,
    /// During a merge: the previous delta, sealed (writers that raced the seal may
    /// still finish a write into it — the merge waits them out before folding).
    /// Reads consult it between `live` and `frozen`.
    sealed: Option<Arc<SkipTrie<Delta<V>>>>,
}

impl<V> Tiers<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// True when reads can be served from the frozen tier alone — the pin-free
    /// fast path after a merge quiesces.
    fn delta_is_empty(&self) -> bool {
        self.sealed.is_none() && self.live.is_empty()
    }

    /// Visibility of `key` below the live delta (sealed, then frozen).
    fn under_value(&self, key: u64) -> Option<V> {
        if let Some(sealed) = &self.sealed {
            match sealed.get(key) {
                Some(Delta::Put(v)) => return Some(v),
                Some(Delta::Tombstone) => return None,
                None => {}
            }
        }
        self.frozen.get(key)
    }

    /// Full visibility of `key` (live, then sealed, then frozen).
    fn resolve(&self, key: u64) -> Option<V> {
        match self.live.get(key) {
            Some(Delta::Put(v)) => Some(v),
            Some(Delta::Tombstone) => None,
            None => self.under_value(key),
        }
    }
}

/// One thread-local cached `(structure generation, published tiers)` pair; see the
/// module docs for the protocol.
struct CachedTiers {
    instance: u64,
    gen: u64,
    tiers: Arc<dyn Any + Send + Sync>,
}

/// The thread-local tier cache, wrapped so its teardown is safe: at thread exit
/// the destructor must NOT drop the cached `Arc<Tiers>` values — an entry may be
/// the last reference to a superseded triple, and dropping the triple drops its
/// delta [`SkipTrie`], whose own `Drop` pins an epoch domain. Pinning is
/// impossible during TLS teardown (the epoch crate's thread-local may already be
/// destroyed), so the destructor parks the Arcs in a process-wide graveyard
/// instead; [`drain_tier_graveyard`] frees them later from a live thread.
struct TierCache {
    entries: Vec<CachedTiers>,
}

impl Drop for TierCache {
    fn drop(&mut self) {
        if self.entries.is_empty() {
            return;
        }
        let parked: Vec<Arc<dyn Any + Send + Sync>> =
            self.entries.drain(..).map(|e| e.tiers).collect();
        let mut graveyard = tier_graveyard().lock().expect("tier graveyard lock");
        graveyard.extend(parked);
        TIER_GRAVEYARD_NONEMPTY.store(true, Ordering::SeqCst);
    }
}

thread_local! {
    /// Small per-thread cache of published tier triples, keyed by structure
    /// instance. Capped; least-recently-inserted entries are evicted.
    static TIER_CACHE: std::cell::RefCell<TierCache> =
        const { std::cell::RefCell::new(TierCache { entries: Vec::new() }) };
}

/// Cheap guard on [`tier_graveyard`]: checked before taking the lock so the
/// common no-dead-threads case costs one relaxed load.
static TIER_GRAVEYARD_NONEMPTY: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

fn tier_graveyard() -> &'static std::sync::Mutex<Vec<Arc<dyn Any + Send + Sync>>> {
    static GRAVEYARD: std::sync::OnceLock<std::sync::Mutex<Vec<Arc<dyn Any + Send + Sync>>>> =
        std::sync::OnceLock::new();
    GRAVEYARD.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

/// Drops any tier triples parked by exiting threads (see [`TierCache`]). Called
/// from merge and structure-drop paths — always on live threads, where the epoch
/// pins taken by the freed deltas' `Drop` impls are legal. The Arcs are moved
/// out before dropping so the lock is never held across reclamation work.
fn drain_tier_graveyard() {
    if !TIER_GRAVEYARD_NONEMPTY.swap(false, Ordering::SeqCst) {
        return;
    }
    let parked = std::mem::take(&mut *tier_graveyard().lock().expect("tier graveyard lock"));
    drop(parked);
}

/// Upper bound on distinct [`TieredSkipTrie`] instances one thread caches tiers
/// for; beyond it the oldest entry is dropped (and simply re-acquired on its next
/// use).
const TIER_CACHE_CAP: usize = 8;

static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

/// Shared state behind the [`Arc`] the background merge thread also holds.
struct Inner<V> {
    config: TieredSkipTrieConfig,
    /// The epoch domain all pins and tier retirements go through.
    domain: usize,
    /// Process-unique id keying the thread-local tier caches.
    instance: u64,
    /// The published [`Tiers`] triple (an `Arc::into_raw` pointer; readers bump the
    /// strong count under a pin, merges swap and retire through the domain).
    state: AtomicPtr<Tiers<V>>,
    /// Bumped after every `state` swap; thread-local caches validate against it.
    gen: AtomicU64,
    /// Single-merger guard: concurrent [`TieredSkipTrie::merge`] calls are no-ops.
    merging: AtomicBool,
    /// Net key count (inserts minus removes; exact without same-key write races).
    net: AtomicI64,
    /// Delta writes since the last seal; the watermark trigger reads this (reset
    /// at seal time — late writers racing a seal overcount harmlessly).
    delta_writes: AtomicU64,
    /// Latched by the write that crosses the watermark (so only one writer pays
    /// the wake), cleared at seal time.
    merge_due: AtomicBool,
    /// Live watermark override installed by an adaptive coordinator
    /// ([`TieredSkipTrie::set_merge_watermark`]); 0 means "none — use the
    /// configured watermark". Only consulted when a configured watermark exists.
    watermark_override: AtomicUsize,
    /// Cumulative delta writes over the structure's lifetime — never reset
    /// (unlike `delta_writes`, which re-arms at every seal), so an adaptive
    /// coordinator can difference two samples to estimate a shard's share of
    /// recent write traffic. Only maintained when a watermark is configured.
    total_delta_writes: AtomicU64,
    /// Completed folds (merges that actually replaced the frozen tier).
    merges: AtomicU64,
    /// Whoever should be unparked when the watermark trips: the structure's own
    /// merge thread, or a forest-level merge coordinator.
    waker: std::sync::Mutex<Option<std::thread::Thread>>,
    /// Tells the background merge thread to exit.
    stop: AtomicBool,
}

// SAFETY: `state` is an owning Arc pointer handled with atomic swaps + epoch
// retirement; everything else is atomics or immutable config.
unsafe impl<V: Send + Sync> Send for Inner<V> {}
unsafe impl<V: Send + Sync> Sync for Inner<V> {}

impl<V> Drop for Inner<V> {
    fn drop(&mut self) {
        // Last owner: nothing can race the pointer any more.
        let ptr = *self.state.get_mut();
        drop(unsafe { Arc::from_raw(ptr) });
    }
}

impl<V> Inner<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Pins this structure's epoch domain (never the process-wide default
    /// directly — the workspace-wide domain-isolation rule).
    ///
    /// Deliberately **EBR regardless of the delta's configured reclaimer**: the
    /// tiered machinery's only deferred objects are the published tier `Arc`s
    /// (see `publish`), which are both protected (here) and retired
    /// (`defer_unchecked` in `publish`) through EBR — one object class, one
    /// substrate, so sharing the domain with a hazard-configured delta stays
    /// sound. Tier swaps are rare (one per merge) and `wait_writer_grace`
    /// depends on EBR's global-epoch advance, which the hazard substrate does
    /// not provide.
    fn pin(&self) -> Guard {
        epoch::pin_domain(self.domain)
    }

    fn check_key(&self, key: u64) {
        assert!(
            key <= max_key(self.config.trie.universe_bits),
            "key {key} exceeds the configured universe of {} bits",
            self.config.trie.universe_bits
        );
    }

    /// Accounts one write into the live delta. When the configured watermark is
    /// crossed, exactly one writer (the one whose `swap` latches `merge_due`)
    /// unparks the merge waker — the cost on every other write is one atomic add
    /// and one relaxed-ish load, nothing shared beyond the counter line.
    fn note_delta_write(&self) {
        let Some(configured) = self.config.merge_watermark else {
            return;
        };
        self.total_delta_writes.fetch_add(1, Ordering::Relaxed);
        let watermark = match self.watermark_override.load(Ordering::Relaxed) {
            0 => configured,
            adaptive => adaptive,
        };
        let writes = self.delta_writes.fetch_add(1, Ordering::SeqCst) + 1;
        if writes as usize >= watermark && !self.merge_due.swap(true, Ordering::SeqCst) {
            self.wake_merger();
        }
    }

    /// Unparks whichever thread is registered to run merges (a no-op when merging
    /// is purely explicit).
    fn wake_merger(&self) {
        if let Some(thread) = self.waker.lock().expect("merge waker lock").as_ref() {
            thread.unpark();
        }
    }

    /// Acquires an owned reference to the published tiers (the slow path: pins the
    /// domain so the pointer cannot be retired between the load and the refcount
    /// bump).
    fn acquire_tiers(&self) -> (Arc<Tiers<V>>, u64) {
        let guard = self.pin();
        // Generation first, pointer second: the pointer load then observes a state
        // at least as fresh as the generation label, so a cache entry can never
        // serve a state *older* than its label claims.
        let gen = self.gen.load(Ordering::SeqCst);
        let ptr = self.state.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and is kept alive by the pin
        // (retirement of a displaced state is deferred through this domain).
        let tiers = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        drop(guard);
        (tiers, gen)
    }

    /// Runs `f` against a published tiers triple, through the thread-local
    /// generation cache. The fast path (cache hit) performs no pin and no shared
    /// read-modify-write. `f` must not re-enter `with_tiers` on the same thread
    /// (the cache cell is borrowed across the call).
    fn with_tiers<R>(&self, f: impl FnOnce(&Tiers<V>) -> R) -> R {
        TIER_CACHE.with(|cell| {
            let mut cache = cell.borrow_mut();
            let cache = &mut cache.entries;
            let gen = self.gen.load(Ordering::SeqCst);
            let pos = cache.iter().position(|e| e.instance == self.instance);
            if let Some(i) = pos {
                if cache[i].gen == gen {
                    let tiers = cache[i]
                        .tiers
                        .downcast_ref::<Tiers<V>>()
                        .expect("tier cache entry has this structure's value type");
                    return f(tiers);
                }
            }
            let (tiers, gen) = self.acquire_tiers();
            let entry = CachedTiers {
                instance: self.instance,
                gen,
                tiers: tiers.clone(),
            };
            match pos {
                Some(i) => cache[i] = entry,
                None => {
                    if cache.len() >= TIER_CACHE_CAP {
                        cache.remove(0);
                    }
                    cache.push(entry);
                }
            }
            f(&tiers)
        })
    }

    /// Publishes `tiers` as the new state: one atomic swap, **no lock and no pin
    /// held across it**. The displaced state is retired through the structure's
    /// epoch domain afterwards, so readers that loaded it stay safe.
    fn publish(&self, tiers: Tiers<V>) {
        let fresh = Arc::into_raw(Arc::new(tiers)).cast_mut();
        let old = self.state.swap(fresh, Ordering::SeqCst);
        self.gen.fetch_add(1, Ordering::SeqCst);
        metrics::record(Counter::TierSwap);
        let guard = self.pin();
        // SAFETY: `old` is the unique owning pointer displaced by the swap; the
        // deferred drop runs only after every thread pinned at swap time (i.e.
        // every thread that could still have loaded `old` without its own
        // refcount) has unpinned.
        unsafe {
            guard.defer_unchecked(move || drop(Arc::from_raw(old)));
        }
    }

    /// Blocks until every thread pinned in this domain at entry has unpinned.
    /// Writers hold a pin across (state read → delta write), so once this returns,
    /// no writer can still be writing a delta that was sealed *before* entry.
    fn wait_writer_grace(&self) {
        let done = Arc::new(AtomicBool::new(false));
        {
            let guard = self.pin();
            let done = Arc::clone(&done);
            // SAFETY: the closure only touches an Arc-kept atomic and runs once.
            unsafe {
                guard.defer_unchecked(move || done.store(true, Ordering::SeqCst));
            }
            guard.flush();
        }
        while !done.load(Ordering::SeqCst) {
            self.pin().flush();
            std::thread::yield_now();
        }
    }

    /// One full merge cycle; returns whether a fold was performed. See
    /// [`TieredSkipTrie::merge`].
    fn merge(&self) -> bool {
        // Merges run on live worker/coordinator threads — the safe place to
        // free tier triples parked by threads that exited mid-generation.
        drain_tier_graveyard();
        if self.merging.swap(true, Ordering::SeqCst) {
            return false;
        }
        let (current, _) = self.acquire_tiers();
        // `merging` is held, so `sealed` can only be Some if a previous merge died
        // mid-way — impossible without a panic; treat "nothing buffered" as done.
        if current.live.is_empty() && current.sealed.is_none() {
            // Nothing to fold: also disarm a stale watermark latch so the
            // coordinator does not keep seeing this shard as due.
            self.delta_writes.store(0, Ordering::SeqCst);
            self.merge_due.store(false, Ordering::SeqCst);
            self.merging.store(false, Ordering::SeqCst);
            return false;
        }
        // Phase 1 — seal: move the live delta aside and hand writers a fresh one.
        let sealed = Arc::clone(&current.live);
        self.publish(Tiers {
            frozen: Arc::clone(&current.frozen),
            live: Arc::new(SkipTrie::new(self.config.trie)),
            sealed: Some(Arc::clone(&sealed)),
        });
        // Re-arm the watermark for the fresh delta. Writers that raced the seal
        // into the old one may still bump the counter — a harmless overcount that
        // at worst triggers the next merge a few writes early.
        self.delta_writes.store(0, Ordering::SeqCst);
        self.merge_due.store(false, Ordering::SeqCst);
        // Phase 2 — grace: writers that read the pre-seal state may still be
        // mid-write into `sealed`; they were pinned before the swap, so waiting
        // for those pins to clear quiesces it.
        self.wait_writer_grace();
        // Phase 3 — fold, fully off to the side (readers keep serving phase 1's
        // state). `sealed` is quiescent, so its snapshot is exact.
        let folded = Self::fold(&current.frozen, sealed.snapshot());
        metrics::record(Counter::TierMerge);
        // Phase 4 — publish the new frozen tier and retire the sealed delta.
        let (after_seal, _) = self.acquire_tiers();
        self.publish(Tiers {
            frozen: Arc::new(FrozenTier::build_with(folded, self.config.frozen_search)),
            live: Arc::clone(&after_seal.live),
            sealed: None,
        });
        self.merges.fetch_add(1, Ordering::SeqCst);
        self.merging.store(false, Ordering::SeqCst);
        true
    }

    /// Two-way merge of a frozen tier with a sorted delta snapshot: delta entries
    /// override frozen ones, tombstones delete.
    fn fold(frozen: &FrozenTier<V>, delta: Vec<(u64, Delta<V>)>) -> Vec<(u64, V)> {
        let mut out = Vec::with_capacity(frozen.len() + delta.len());
        let mut fi = 0usize;
        let mut di = delta.into_iter().peekable();
        while fi < frozen.len() || di.peek().is_some() {
            let take_delta = match (frozen.sorted.get(fi), di.peek()) {
                (Some(&(fk, _)), Some(&(dk, _))) => {
                    if fk == dk {
                        fi += 1; // shadowed
                        true
                    } else {
                        dk < fk
                    }
                }
                (None, Some(_)) => true,
                _ => false,
            };
            if take_delta {
                if let Some((k, Delta::Put(v))) = di.next() {
                    out.push((k, v));
                }
            } else {
                out.push(frozen.sorted[fi].clone());
                fi += 1;
            }
        }
        out
    }

    /// Insert core against one resolved tiers triple. The caller must hold a pin
    /// of this domain across the state read and this call (the merge grace period
    /// relies on it); batch entry points amortize that pin and the tiers
    /// resolution over the whole batch.
    fn insert_in(&self, t: &Tiers<V>, key: u64, value: &V) -> bool {
        loop {
            match t.live.get(key) {
                Some(Delta::Put(_)) => return false,
                Some(Delta::Tombstone) => {
                    // Revive a deleted key: clear the tombstone, race to publish.
                    t.live.remove(key);
                    if t.live.insert(key, Delta::Put(value.clone())) {
                        self.net.fetch_add(1, Ordering::SeqCst);
                        self.note_delta_write();
                        return true;
                    }
                }
                None => {
                    if t.under_value(key).is_some() {
                        return false;
                    }
                    if t.live.insert(key, Delta::Put(value.clone())) {
                        self.net.fetch_add(1, Ordering::SeqCst);
                        self.note_delta_write();
                        return true;
                    }
                }
            }
        }
    }

    /// Remove core against one resolved tiers triple (same pin contract as
    /// [`Inner::insert_in`]).
    ///
    /// # Exactly-once claims across a seal
    ///
    /// A remove that deletes a key resident below the live delta "claims" it by
    /// winning a tombstone insert. During a merge two claimants can resolve
    /// *different* states: a pre-seal straggler (pinned, so the grace period
    /// waits for it) still sees the sealed delta as its live one, while a
    /// post-seal claimant writes to the fresh delta. If each only wrote its own
    /// delta, both inserts could succeed and the key would be claimed twice.
    /// The arbitration rule that restores exactly-once:
    ///
    /// * every claimant must first win a tombstone insert into the **sealed**
    ///   delta of its view (for the straggler that *is* its live delta), and
    ///   only then place the tombstone into its live delta;
    /// * a claim counts only if **every** insert on that path succeeded — a
    ///   failed live insert after a won sealed insert means the fold already
    ///   missed our sealed tombstone and a post-fold claimant took the key.
    ///
    /// All deltas a racing pair can disagree about are adjacent generations, so
    /// the sealed delta is a common arbitration point for both. Claims of a
    /// key whose value still sits as a `Put` in the sealed delta arbitrate by
    /// removing that `Put` (unique winner) instead.
    ///
    /// The remaining windows — concurrent removers (or a remover and a
    /// reviving inserter) racing on the *same* key through a transiently
    /// absent live entry — are the structure's documented weak consistency
    /// for same-key writer races; distinct-key histories (e.g. pop drains)
    /// are exactly-once.
    fn remove_in(&self, t: &Tiers<V>, key: u64) -> Option<V> {
        loop {
            match t.live.get(key) {
                Some(Delta::Tombstone) => return None,
                Some(Delta::Put(_)) => match t.live.remove(key) {
                    Some(Delta::Put(v)) => {
                        if t.live.insert(key, Delta::Tombstone) {
                            self.net.fetch_sub(1, Ordering::SeqCst);
                            self.note_delta_write();
                            return Some(v);
                        }
                        match t.live.get(key) {
                            // A fresh insert revived the key inside our
                            // remove→insert window: the delete linearized
                            // before it, so our claim stands and no tombstone
                            // belongs here.
                            Some(Delta::Put(_)) | None => {
                                self.net.fetch_sub(1, Ordering::SeqCst);
                                self.note_delta_write();
                                return Some(v);
                            }
                            // An under-tier claimant tombstoned the key
                            // through the transient absence; its claim is the
                            // one that counts (ours folds into it).
                            Some(Delta::Tombstone) => return None,
                        }
                    }
                    Some(Delta::Tombstone) => {
                        // Raced a concurrent remover's tombstone out; reinstate it.
                        t.live.insert(key, Delta::Tombstone);
                        return None;
                    }
                    None => {}
                },
                None => {
                    let Some(sealed) = &t.sealed else {
                        match t.under_value(key) {
                            Some(v) => {
                                if t.live.insert(key, Delta::Tombstone) {
                                    self.net.fetch_sub(1, Ordering::SeqCst);
                                    self.note_delta_write();
                                    return Some(v);
                                }
                                // Lost the claim; re-read (the tombstone is
                                // now visible).
                                continue;
                            }
                            None => return None,
                        }
                    };
                    // A merge is in flight in this view: arbitrate through the
                    // sealed delta first (see the method docs).
                    match sealed.get(key) {
                        Some(Delta::Tombstone) => return None,
                        Some(Delta::Put(_)) => match sealed.remove(key) {
                            Some(Delta::Put(v)) => {
                                // Reinstate a tombstone so the fold deletes any
                                // frozen copy and other arbitrators see the
                                // key dead; then make the claim visible in the
                                // live delta across the fold publish.
                                let _ = sealed.insert(key, Delta::Tombstone);
                                if t.live.insert(key, Delta::Tombstone) {
                                    self.net.fetch_sub(1, Ordering::SeqCst);
                                    self.note_delta_write();
                                    return Some(v);
                                }
                                return None;
                            }
                            Some(Delta::Tombstone) => {
                                // Yanked a racer's claim out; put it back.
                                let _ = sealed.insert(key, Delta::Tombstone);
                                return None;
                            }
                            None => continue,
                        },
                        None => match t.frozen.get(key) {
                            Some(v) => {
                                if !sealed.insert(key, Delta::Tombstone) {
                                    // Lost the sealed arbitration; re-read.
                                    continue;
                                }
                                if t.live.insert(key, Delta::Tombstone) {
                                    self.net.fetch_sub(1, Ordering::SeqCst);
                                    self.note_delta_write();
                                    return Some(v);
                                }
                                // The fold missed our sealed tombstone and a
                                // post-fold claimant won the live delta.
                                return None;
                            }
                            None => return None,
                        },
                    }
                }
            }
        }
    }
}

/// A [`SkipTrie`] wrapped in a frozen/delta read tier — see the [module
/// docs](self) for the architecture, the pin-free read protocol, and the
/// consistency contract.
///
/// # Examples
///
/// ```
/// use skiptrie::{TieredSkipTrie, TieredSkipTrieConfig};
///
/// let tiered: TieredSkipTrie<u64> = TieredSkipTrie::from_sorted(
///     TieredSkipTrieConfig::for_universe_bits(32),
///     (0..1000u64).map(|k| (k * 3, k)),
/// );
/// assert_eq!(tiered.predecessor(10), Some((9, 3)));
/// assert!(tiered.insert(10, 99));
/// assert_eq!(tiered.predecessor(10), Some((10, 99)));
/// assert_eq!(tiered.remove(9), Some(3));
/// tiered.merge(); // fold the delta into a fresh frozen tier
/// assert_eq!(tiered.predecessor(9), Some((6, 2)));
/// ```
pub struct TieredSkipTrie<V>
where
    V: Clone + Send + Sync + 'static,
{
    inner: Arc<Inner<V>>,
    merger: Option<std::thread::JoinHandle<()>>,
}

impl<V> Default for TieredSkipTrie<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        TieredSkipTrie::new(TieredSkipTrieConfig::default())
    }
}

impl<V> TieredSkipTrie<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty tiered trie (an empty frozen tier plus an empty delta).
    ///
    /// # Panics
    ///
    /// Panics if `config.trie.universe_bits` is not in `1..=64`.
    pub fn new(config: TieredSkipTrieConfig) -> Self {
        Self::from_sorted(config, std::iter::empty())
    }

    /// Builds the frozen tier directly from a sorted, strictly increasing
    /// `(key, value)` sequence in `O(n)` — the delta starts empty, so reads are on
    /// the pin-free fast path immediately.
    ///
    /// # Panics
    ///
    /// Panics if keys are not strictly increasing or exceed the universe.
    pub fn from_sorted<I>(config: TieredSkipTrieConfig, entries: I) -> Self
    where
        I: IntoIterator<Item = (u64, V)>,
    {
        Self::from_sorted_spawn(config, entries, true)
    }

    /// [`TieredSkipTrie::from_sorted`] with control over the background merge
    /// thread. The forest engine passes `spawn_merger = false`: its shards share
    /// one coordinator thread (registered via the maintenance-waker hook) instead
    /// of spawning a thread per shard.
    pub(crate) fn from_sorted_spawn<I>(
        config: TieredSkipTrieConfig,
        entries: I,
        spawn_merger: bool,
    ) -> Self
    where
        I: IntoIterator<Item = (u64, V)>,
    {
        let top = max_key(config.trie.universe_bits);
        let mut last: Option<u64> = None;
        let sorted: Vec<(u64, V)> = entries
            .into_iter()
            .inspect(|&(key, _)| {
                assert!(key <= top, "key {key} exceeds the configured universe");
                assert!(
                    last.replace(key).is_none_or(|p| p < key),
                    "from_sorted requires strictly increasing keys"
                );
            })
            .collect();
        let net = sorted.len() as i64;
        let tiers = Tiers {
            frozen: Arc::new(FrozenTier::build_with(sorted, config.frozen_search)),
            live: Arc::new(SkipTrie::new(config.trie)),
            sealed: None,
        };
        let inner = Arc::new(Inner {
            config,
            domain: config.trie.domain.unwrap_or(0),
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            state: AtomicPtr::new(Arc::into_raw(Arc::new(tiers)).cast_mut()),
            gen: AtomicU64::new(0),
            merging: AtomicBool::new(false),
            net: AtomicI64::new(net),
            delta_writes: AtomicU64::new(0),
            merge_due: AtomicBool::new(false),
            watermark_override: AtomicUsize::new(0),
            total_delta_writes: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            waker: std::sync::Mutex::new(None),
            stop: AtomicBool::new(false),
        });
        let wants_thread = config.merge_every.is_some() || config.merge_watermark.is_some();
        let merger = (spawn_merger && wants_thread).then(|| {
            let worker = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("skiptrie-tier-merge".into())
                .spawn(move || {
                    while !worker.stop.load(Ordering::SeqCst) {
                        match worker.config.merge_every {
                            Some(every) => std::thread::park_timeout(every),
                            // Watermark-only mode: no timer at all — sleep until
                            // the write that crosses the watermark unparks us.
                            None => std::thread::park(),
                        }
                        if worker.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        worker.merge();
                    }
                })
                .expect("spawn tier-merge thread")
        });
        if let Some(handle) = &merger {
            // Registration happens before the constructor returns, i.e. before
            // any writer can cross the watermark: no wake can be missed.
            *inner.waker.lock().expect("merge waker lock") = Some(handle.thread().clone());
        }
        TieredSkipTrie { inner, merger }
    }

    /// The configuration this structure was built with.
    pub fn config(&self) -> TieredSkipTrieConfig {
        self.inner.config
    }

    /// Number of keys stored (net of inserts and removes; exact without same-key
    /// write races, see the module docs).
    pub fn len(&self) -> usize {
        self.inner.net.load(Ordering::SeqCst).max(0) as usize
    }

    /// True if no keys are stored (same caveat as [`TieredSkipTrie::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of keys currently buffered in the live delta (diagnostics).
    pub fn delta_len(&self) -> usize {
        self.inner.with_tiers(|t| t.live.len())
    }

    /// Number of entries in the published frozen tier (diagnostics).
    pub fn frozen_len(&self) -> usize {
        self.inner.with_tiers(|t| t.frozen.len())
    }

    /// The published generation: bumped on every tier swap (two per merge cycle).
    pub fn generation(&self) -> u64 {
        self.inner.gen.load(Ordering::SeqCst)
    }

    /// True while a merge is between its seal and publish swaps — a sealed
    /// delta exists that has not yet been folded into the frozen tier
    /// (diagnostics).
    pub fn mid_merge(&self) -> bool {
        self.inner.with_tiers(|t| t.sealed.is_some())
    }

    /// Returns a clone of the value stored under `key`.
    ///
    /// On the post-merge fast path (empty delta) this is a pin-free Eytzinger
    /// search of the frozen tier, recorded as
    /// [`Counter::TierHit`]; otherwise the delta
    /// is consulted first ([`Counter::TierMissDelta`]).
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn get(&self, key: u64) -> Option<V> {
        self.inner.check_key(key);
        self.inner.with_tiers(|t| {
            if t.delta_is_empty() {
                metrics::record(Counter::TierHit);
                t.frozen.get(key)
            } else {
                metrics::record(Counter::TierMissDelta);
                t.resolve(key)
            }
        })
    }

    /// True if `key` is present.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// The largest key `<= key` and its value, merged across tiers: delta values
    /// override frozen ones and tombstones hide them.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn predecessor(&self, key: u64) -> Option<(u64, V)> {
        self.inner.check_key(key);
        self.inner.with_tiers(|t| {
            if t.delta_is_empty() {
                metrics::record(Counter::TierHit);
                return t.frozen.predecessor(key);
            }
            metrics::record(Counter::TierMissDelta);
            let mut bound = key;
            loop {
                // Best candidate at or below `bound` from each tier, then resolve
                // the winner; a tombstoned winner steps the bound past it.
                let mut best = t.frozen.predecessor_key(bound);
                if let Some((k, _)) = t.live.predecessor(bound) {
                    best = Some(best.map_or(k, |b| b.max(k)));
                }
                if let Some(sealed) = &t.sealed {
                    if let Some((k, _)) = sealed.predecessor(bound) {
                        best = Some(best.map_or(k, |b| b.max(k)));
                    }
                }
                let candidate = best?;
                if let Some(v) = t.resolve(candidate) {
                    return Some((candidate, v));
                }
                bound = candidate.checked_sub(1)?;
            }
        })
    }

    /// The largest key strictly `< key`, if any.
    pub fn strict_predecessor(&self, key: u64) -> Option<(u64, V)> {
        self.predecessor(key.checked_sub(1)?)
    }

    /// The smallest key `>= key` and its value (tier-merged like
    /// [`TieredSkipTrie::predecessor`]).
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn successor(&self, key: u64) -> Option<(u64, V)> {
        self.inner.check_key(key);
        let top = max_key(self.inner.config.trie.universe_bits);
        self.inner.with_tiers(|t| {
            if t.delta_is_empty() {
                metrics::record(Counter::TierHit);
                return t.frozen.successor(key);
            }
            metrics::record(Counter::TierMissDelta);
            let mut bound = key;
            loop {
                let mut best = t.frozen.successor_key(bound);
                if let Some((k, _)) = t.live.successor(bound) {
                    best = Some(best.map_or(k, |b| b.min(k)));
                }
                if let Some(sealed) = &t.sealed {
                    if let Some((k, _)) = sealed.successor(bound) {
                        best = Some(best.map_or(k, |b| b.min(k)));
                    }
                }
                let candidate = best?;
                if let Some(v) = t.resolve(candidate) {
                    return Some((candidate, v));
                }
                if candidate >= top {
                    return None;
                }
                bound = candidate + 1;
            }
        })
    }

    /// Inserts `key -> value` if `key` is not visibly present; `true` if this call
    /// inserted. Exact if at most one writer touches `key` at a time (module docs).
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn insert(&self, key: u64, value: V) -> bool {
        let inner = &*self.inner;
        inner.check_key(key);
        // The pin spans (state read → delta write): the merge's grace period waits
        // for it, so a write into a just-sealed delta is never folded away.
        let _guard = inner.pin();
        inner.with_tiers(|t| inner.insert_in(t, key, &value))
    }

    /// Removes `key`, returning its visible value if this call performed the
    /// removal. A tombstone is left in the delta so the key stays dead even while
    /// older tiers still hold it. Exact if at most one writer touches `key` at a
    /// time (module docs).
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn remove(&self, key: u64) -> Option<V> {
        let inner = &*self.inner;
        inner.check_key(key);
        let _guard = inner.pin();
        inner.with_tiers(|t| inner.remove_in(t, key))
    }

    /// Batch [`TieredSkipTrie::insert`]: one epoch pin and **one** TLS
    /// tiers-generation resolution for the whole batch instead of one per key.
    /// Returns how many keys this call inserted.
    ///
    /// # Panics
    ///
    /// Panics if any key does not fit in the configured universe.
    pub fn insert_batch(&self, entries: &[(u64, V)]) -> usize {
        let inner = &*self.inner;
        for &(key, _) in entries {
            inner.check_key(key);
        }
        let _guard = inner.pin();
        inner.with_tiers(|t| {
            entries
                .iter()
                .filter(|(key, value)| inner.insert_in(t, *key, value))
                .count()
        })
    }

    /// Batch [`TieredSkipTrie::remove`] (same amortization as
    /// [`TieredSkipTrie::insert_batch`]). Returns how many keys were removed.
    ///
    /// # Panics
    ///
    /// Panics if any key does not fit in the configured universe.
    pub fn remove_batch(&self, keys: &[u64]) -> usize {
        let inner = &*self.inner;
        for &key in keys {
            inner.check_key(key);
        }
        let _guard = inner.pin();
        inner.with_tiers(|t| {
            keys.iter()
                .filter(|&&key| inner.remove_in(t, key).is_some())
                .count()
        })
    }

    /// Batch [`TieredSkipTrie::get`]: resolves the thread-local tiers cache once
    /// and answers every key against that one published triple (one tier-counter
    /// record per batch, not per key). `out[i]` answers `keys[i]`.
    ///
    /// # Panics
    ///
    /// Panics if any key does not fit in the configured universe, or if `out` is
    /// shorter than `keys`.
    pub fn get_batch_into(&self, keys: &[u64], out: &mut [Option<V>]) {
        assert!(out.len() >= keys.len(), "output buffer shorter than keys");
        let inner = &*self.inner;
        for &key in keys {
            inner.check_key(key);
        }
        inner.with_tiers(|t| {
            if t.delta_is_empty() {
                metrics::record(Counter::TierHit);
                for (slot, &key) in out.iter_mut().zip(keys) {
                    *slot = t.frozen.get(key);
                }
            } else {
                metrics::record(Counter::TierMissDelta);
                for (slot, &key) in out.iter_mut().zip(keys) {
                    *slot = t.resolve(key);
                }
            }
        });
    }

    /// Batch [`TieredSkipTrie::get`] returning a fresh vector; see
    /// [`TieredSkipTrie::get_batch_into`].
    pub fn get_batch(&self, keys: &[u64]) -> Vec<Option<V>> {
        let mut out = vec![None; keys.len()];
        self.get_batch_into(keys, &mut out);
        out
    }

    /// Insert of a shard's picked batch group (`order` indexes into `entries`,
    /// sorted by key): one pin + one tiers resolution for the group.
    pub(crate) fn insert_batch_picked(&self, entries: &[(u64, V)], order: &[usize]) -> usize {
        let inner = &*self.inner;
        for &i in order {
            inner.check_key(entries[i].0);
        }
        let _guard = inner.pin();
        inner.with_tiers(|t| {
            order
                .iter()
                .filter(|&&i| {
                    let (key, value) = &entries[i];
                    inner.insert_in(t, *key, value)
                })
                .count()
        })
    }

    /// [`TieredSkipTrie::insert_batch_picked`] with per-key outcomes: writes
    /// `out[i] = true` for each picked `i` this call inserted. The serving
    /// pipeline's coalescer uses this so a batched execution still answers
    /// every request individually.
    pub(crate) fn insert_batch_picked_flags(
        &self,
        entries: &[(u64, V)],
        order: &[usize],
        out: &mut [bool],
    ) {
        let inner = &*self.inner;
        for &i in order {
            inner.check_key(entries[i].0);
        }
        let _guard = inner.pin();
        inner.with_tiers(|t| {
            for &i in order {
                let (key, value) = &entries[i];
                out[i] = inner.insert_in(t, *key, value);
            }
        });
    }

    /// [`TieredSkipTrie::remove_batch_picked`] with per-key outcomes: writes
    /// `out[i]` to the value this call removed under `keys[i]` (`None` if
    /// absent) for each picked `i`.
    pub(crate) fn remove_batch_picked_values(
        &self,
        keys: &[u64],
        order: &[usize],
        out: &mut [Option<V>],
    ) {
        let inner = &*self.inner;
        for &i in order {
            inner.check_key(keys[i]);
        }
        let _guard = inner.pin();
        inner.with_tiers(|t| {
            for &i in order {
                out[i] = inner.remove_in(t, keys[i]);
            }
        });
    }

    /// Remove of a shard's picked batch group (see
    /// [`TieredSkipTrie::insert_batch_picked`]).
    pub(crate) fn remove_batch_picked(&self, keys: &[u64], order: &[usize]) -> usize {
        let inner = &*self.inner;
        for &i in order {
            inner.check_key(keys[i]);
        }
        let _guard = inner.pin();
        inner.with_tiers(|t| {
            order
                .iter()
                .filter(|&&i| inner.remove_in(t, keys[i]).is_some())
                .count()
        })
    }

    /// Lookup of a shard's picked batch group, answering `out[i]` for each picked
    /// `i` against one published tiers triple.
    pub(crate) fn get_batch_picked(&self, keys: &[u64], order: &[usize], out: &mut [Option<V>]) {
        let inner = &*self.inner;
        for &i in order {
            inner.check_key(keys[i]);
        }
        inner.with_tiers(|t| {
            if t.delta_is_empty() {
                metrics::record(Counter::TierHit);
                for &i in order {
                    out[i] = t.frozen.get(keys[i]);
                }
            } else {
                metrics::record(Counter::TierMissDelta);
                for &i in order {
                    out[i] = t.resolve(keys[i]);
                }
            }
        });
    }

    /// An ordered iterator over the entries whose keys lie in `range`, merged
    /// across tiers: frozen entries stream lazily; the (small) delta window is
    /// collected eagerly up front. Weakly consistent: the iterator serves one
    /// published tiers triple for its whole life (keys stable across the scan all
    /// appear; concurrent writes and merges may or may not).
    ///
    /// Unlike [`SkipTrie::range`], the iterator holds **no epoch pin** — it owns
    /// reference-counted tiers — so unbounded scans never stall reclamation.
    pub fn range(&self, range: impl RangeBounds<u64>) -> TieredRangeIter<V> {
        let Some((lo, hi)) = crate::resolve_bounds(&range) else {
            return TieredRangeIter::empty();
        };
        self.inner.with_tiers(|t| {
            if t.delta_is_empty() {
                metrics::record(Counter::TierHit);
            } else {
                metrics::record(Counter::TierMissDelta);
            }
            // Delta window: sealed first, live overrides, tombstones recorded as
            // None so they can hide frozen entries during the merge walk.
            let mut delta: Vec<(u64, Option<V>)> = Vec::new();
            if let Some(sealed) = &t.sealed {
                for (k, d) in sealed.range(lo..=hi) {
                    delta.push((
                        k,
                        match d {
                            Delta::Put(v) => Some(v),
                            Delta::Tombstone => None,
                        },
                    ));
                }
            }
            for (k, d) in t.live.range(lo..=hi) {
                let v = match d {
                    Delta::Put(v) => Some(v),
                    Delta::Tombstone => None,
                };
                match delta.binary_search_by_key(&k, |&(dk, _)| dk) {
                    Ok(i) => delta[i].1 = v,
                    Err(i) => delta.insert(i, (k, v)),
                }
            }
            let fi = t.frozen.lower_bound(lo);
            // One past the last frozen index in range.
            let fhi = t.frozen.lower_bound(hi.saturating_add(1)).max(fi);
            let fhi = if hi == u64::MAX { t.frozen.len() } else { fhi };
            TieredRangeIter {
                frozen: Some(Arc::clone(&t.frozen)),
                fi,
                fhi,
                delta,
                di: 0,
            }
        })
    }

    /// Exports the visible contents as a sorted `Vec<(u64, V)>` (same weak
    /// consistency as [`TieredSkipTrie::range`]).
    pub fn snapshot(&self) -> Vec<(u64, V)> {
        self.range(..).collect()
    }

    /// Removes and returns the entry with the smallest visible key. Weakly
    /// consistent under races with writers on the same keys.
    pub fn pop_first(&self) -> Option<(u64, V)> {
        loop {
            let (key, _) = self.successor(0)?;
            if let Some(value) = self.remove(key) {
                return Some((key, value));
            }
        }
    }

    /// Removes and returns the entry with the largest visible key (mirror of
    /// [`TieredSkipTrie::pop_first`]).
    pub fn pop_last(&self) -> Option<(u64, V)> {
        let top = max_key(self.inner.config.trie.universe_bits);
        loop {
            let (key, _) = self.predecessor(top)?;
            if let Some(value) = self.remove(key) {
                return Some((key, value));
            }
        }
    }

    /// Builds the frozen tier from a sorted, strictly increasing slice in `O(n)`
    /// — the tiered analogue of [`SkipTrie::bulk_load`]. Requires exclusive
    /// access to an empty structure; returns the number of entries loaded.
    ///
    /// # Panics
    ///
    /// Panics if the structure is not empty, or if keys are not strictly
    /// increasing / exceed the universe.
    pub fn bulk_load(&mut self, entries: &[(u64, V)]) -> usize {
        let inner = &*self.inner;
        assert!(
            inner.with_tiers(|t| t.delta_is_empty() && t.frozen.len() == 0),
            "bulk_load requires an empty TieredSkipTrie"
        );
        let top = max_key(inner.config.trie.universe_bits);
        for pair in entries.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "bulk_load requires strictly increasing keys"
            );
        }
        if let Some(&(last, _)) = entries.last() {
            assert!(last <= top, "key {last} exceeds the configured universe");
        }
        inner.net.store(entries.len() as i64, Ordering::SeqCst);
        inner.publish(Tiers {
            frozen: Arc::new(FrozenTier::build_with(
                entries.to_vec(),
                inner.config.frozen_search,
            )),
            live: Arc::new(SkipTrie::new(inner.config.trie)),
            sealed: None,
        });
        entries.len()
    }

    /// `(allocated, recycled, free)` node counts of the live delta (plus the
    /// sealed one mid-merge) — the frozen tier holds no pool nodes.
    pub fn allocation_stats(&self) -> (usize, usize, usize) {
        self.inner.with_tiers(|t| {
            let mut stats = t.live.allocation_stats();
            if let Some(sealed) = &t.sealed {
                let s = sealed.allocation_stats();
                stats = (stats.0 + s.0, stats.1 + s.1, stats.2 + s.2);
            }
            stats
        })
    }

    /// Approximate resident bytes: frozen-tier arrays plus delta skiplist nodes.
    pub fn approx_node_bytes(&self) -> usize {
        self.inner.with_tiers(|t| {
            let frozen = t.frozen.len()
                * (std::mem::size_of::<(u64, V)>()
                    + std::mem::size_of::<u64>()
                    + std::mem::size_of::<u32>());
            let mut bytes = frozen + t.live.approx_node_bytes();
            if let Some(sealed) = &t.sealed {
                bytes += sealed.approx_node_bytes();
            }
            bytes
        })
    }

    /// Audits the live delta's traversal integrity and the frozen tier's sort
    /// order; returns the number of entries checked. Panics on violation.
    pub fn check_traversal_integrity(&self) -> usize {
        self.inner.with_tiers(|t| {
            let mut checked = t.live.check_traversal_integrity();
            if let Some(sealed) = &t.sealed {
                checked += sealed.check_traversal_integrity();
            }
            for pair in t.frozen.sorted.windows(2) {
                assert!(
                    pair[0].0 < pair[1].0,
                    "frozen tier keys out of order: {} !< {}",
                    pair[0].0,
                    pair[1].0
                );
            }
            checked + t.frozen.len()
        })
    }

    /// True once the delta-size watermark has been crossed and a merge is owed
    /// (cleared when the next merge seals the delta). Always `false` without a
    /// configured watermark.
    pub fn merge_due(&self) -> bool {
        self.inner.merge_due.load(Ordering::SeqCst)
    }

    /// Delta writes accumulated since the last seal (diagnostics for the
    /// watermark policy).
    pub fn delta_writes(&self) -> u64 {
        self.inner.delta_writes.load(Ordering::SeqCst)
    }

    /// Cumulative delta writes over the structure's lifetime — unlike
    /// [`TieredSkipTrie::delta_writes`] this is **never reset** by a seal, so an
    /// adaptive coordinator can difference two samples to estimate this shard's
    /// share of recent write traffic. Only maintained when a watermark is
    /// configured (stays 0 otherwise).
    pub fn total_delta_writes(&self) -> u64 {
        self.inner.total_delta_writes.load(Ordering::Relaxed)
    }

    /// Completed folds over the structure's lifetime (merges that actually
    /// replaced the frozen tier; empty-delta no-op merges do not count).
    pub fn merge_count(&self) -> u64 {
        self.inner.merges.load(Ordering::SeqCst)
    }

    /// Installs (or with `None` clears) a live override of the configured merge
    /// watermark — the adaptive-watermark hook: a coordinator that sees this
    /// shard taking a disproportionate share of write traffic lowers its
    /// watermark so it folds sooner, and raises it back as traffic cools.
    ///
    /// Takes effect on subsequent delta writes; if the current delta has
    /// *already* crossed the new watermark, the merge-due latch is armed and
    /// the merge waker unparked immediately, so lowering the watermark never
    /// waits for one more write. A no-op unless the structure was configured
    /// with [`TieredSkipTrieConfig::with_merge_watermark`] (there is no
    /// watermark machinery to override otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `watermark` is `Some(0)`.
    pub fn set_merge_watermark(&self, watermark: Option<usize>) {
        let value = watermark.unwrap_or(0);
        assert!(
            watermark != Some(0),
            "merge watermark override must be positive (use None to clear)"
        );
        self.inner
            .watermark_override
            .store(value, Ordering::Relaxed);
        if self.inner.config.merge_watermark.is_some() {
            if let Some(new) = self.effective_merge_watermark() {
                if self.inner.delta_writes.load(Ordering::SeqCst) as usize >= new
                    && !self.inner.merge_due.swap(true, Ordering::SeqCst)
                {
                    self.inner.wake_merger();
                }
            }
        }
    }

    /// The watermark currently in force: the live override if one is installed,
    /// else the configured value (`None` when no watermark was configured —
    /// overrides do not apply then).
    pub fn effective_merge_watermark(&self) -> Option<usize> {
        let configured = self.inner.config.merge_watermark?;
        Some(
            match self.inner.watermark_override.load(Ordering::Relaxed) {
                0 => configured,
                adaptive => adaptive,
            },
        )
    }

    /// Registers `thread` to be unparked when the watermark trips, replacing the
    /// previous waker. The forest's merge coordinator registers itself here so
    /// one thread can serve every shard.
    pub(crate) fn set_merge_waker(&self, thread: std::thread::Thread) {
        *self.inner.waker.lock().expect("merge waker lock") = Some(thread);
    }

    /// Folds the delta into a fresh frozen tier and publishes it; returns `true`
    /// if a fold ran (`false` when the delta was empty or another merge was in
    /// flight).
    ///
    /// The cycle is: *seal* (swap in a fresh live delta, keep the old one readable
    /// as `sealed`), *grace* (wait out writers that raced the seal), *fold*
    /// (frozen + sealed → new sorted array, off to the side), *publish* (swap, no
    /// lock or pin held across it). Readers never block; they serve the previous
    /// state until the swap and the new one after. Blocks until in-flight writers
    /// unpin; do not call it while holding a guard of this structure's domain.
    pub fn merge(&self) -> bool {
        self.inner.merge()
    }

    /// Unparks whichever thread runs merges — the structure's own background
    /// thread or a registered forest coordinator — for an immediate pass.
    pub fn nudge_merger(&self) {
        self.inner.wake_merger();
    }
}

impl<V> Drop for TieredSkipTrie<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.merger.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
        // Free anything exited reader threads parked (see `TierCache`) while a
        // live thread is guaranteed to exist to do it.
        drain_tier_graveyard();
    }
}

/// Ordered merged iterator returned by [`TieredSkipTrie::range`]; owns its tiers
/// (no epoch pin, no borrow of the structure).
pub struct TieredRangeIter<V> {
    frozen: Option<Arc<FrozenTier<V>>>,
    fi: usize,
    fhi: usize,
    delta: Vec<(u64, Option<V>)>,
    di: usize,
}

impl<V: Clone> TieredRangeIter<V> {
    fn empty() -> Self {
        TieredRangeIter {
            frozen: None,
            fi: 0,
            fhi: 0,
            delta: Vec::new(),
            di: 0,
        }
    }

    /// Advances through at most `limit` entries, returning how many were yielded
    /// (the scan primitive of the E9/E13 experiments).
    pub fn count_up_to(&mut self, limit: usize) -> usize {
        let mut n = 0;
        while n < limit && self.next_key().is_some() {
            n += 1;
        }
        n
    }

    /// Advances and returns only the next key, skipping the value clone — the
    /// counting/stitching primitive the sharded router's scans use.
    pub fn next_key(&mut self) -> Option<u64> {
        let frozen = self.frozen.as_ref()?;
        loop {
            let fk = (self.fi < self.fhi).then(|| frozen.sorted[self.fi].0);
            let dk = self.delta.get(self.di).map(|&(k, _)| k);
            match (fk, dk) {
                (None, None) => return None,
                (Some(f), None) => {
                    self.fi += 1;
                    return Some(f);
                }
                (fk, Some(d)) => {
                    if let Some(f) = fk {
                        if f < d {
                            self.fi += 1;
                            return Some(f);
                        }
                        if f == d {
                            self.fi += 1; // shadowed by the delta
                        }
                    }
                    let tombstone = self.delta[self.di].1.is_none();
                    self.di += 1;
                    if !tombstone {
                        return Some(d);
                    }
                }
            }
        }
    }
}

impl<V: Clone> Iterator for TieredRangeIter<V> {
    type Item = (u64, V);

    fn next(&mut self) -> Option<(u64, V)> {
        let frozen = self.frozen.as_ref()?;
        loop {
            let fk = (self.fi < self.fhi).then(|| frozen.sorted[self.fi].0);
            let dk = self.delta.get(self.di).map(|&(k, _)| k);
            match (fk, dk) {
                (None, None) => return None,
                (Some(_), None) => {
                    let entry = frozen.sorted[self.fi].clone();
                    self.fi += 1;
                    return Some(entry);
                }
                (fk, Some(d)) => {
                    if let Some(f) = fk {
                        if f < d {
                            let entry = frozen.sorted[self.fi].clone();
                            self.fi += 1;
                            return Some(entry);
                        }
                        if f == d {
                            self.fi += 1; // shadowed by the delta
                        }
                    }
                    let (k, v) = self.delta[self.di].clone();
                    self.di += 1;
                    match v {
                        Some(v) => return Some((k, v)),
                        None => continue, // tombstone
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiered(entries: impl IntoIterator<Item = u64>) -> TieredSkipTrie<u64> {
        TieredSkipTrie::from_sorted(
            TieredSkipTrieConfig::for_universe_bits(32),
            entries.into_iter().map(|k| (k, k + 1)),
        )
    }

    #[test]
    fn frozen_tier_lower_bound_matches_binary_search() {
        for search in [FrozenSearch::Eytzinger, FrozenSearch::Interpolation] {
            for n in [0usize, 1, 2, 3, 7, 8, 64, 100, 1023] {
                let entries: Vec<(u64, u64)> = (0..n as u64).map(|i| (i * 3 + 1, i)).collect();
                let keys: Vec<u64> = entries.iter().map(|&(k, _)| k).collect();
                let tier = FrozenTier::build_with(entries, search);
                for probe in 0..(n as u64 * 3 + 4) {
                    assert_eq!(
                        tier.lower_bound(probe),
                        keys.partition_point(|&k| k < probe),
                        "{search:?} lower_bound({probe}) over {n} keys"
                    );
                }
            }
        }
    }

    #[test]
    fn interpolation_search_survives_skewed_keys() {
        // Clustered + extreme keys: interpolation's probe guesses are maximally
        // wrong here, so this exercises the bounded-convergence fallback.
        let mut keys: Vec<u64> = (0..512u64).collect();
        keys.extend((0..512u64).map(|i| u64::MAX - 1024 + i));
        keys.push(u64::MAX);
        let entries: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k ^ 7)).collect();
        let tier = FrozenTier::build_with(entries, FrozenSearch::Interpolation);
        for probe in [
            0u64,
            1,
            511,
            512,
            513,
            1 << 32,
            u64::MAX - 1025,
            u64::MAX - 1024,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(
                tier.lower_bound(probe),
                keys.partition_point(|&k| k < probe),
                "interpolated lower_bound({probe})"
            );
        }
    }

    #[test]
    fn watermark_arms_merge_due_and_explicit_merge_clears_it() {
        // No thread involvement: watermark accounting alone (the thread-driven
        // path is covered by `watermark_triggers_merge_without_timer`).
        let config = TieredSkipTrieConfig::for_universe_bits(32).with_merge_watermark(8);
        let t: TieredSkipTrie<u64> =
            TieredSkipTrie::from_sorted_spawn(config, std::iter::empty(), false);
        for k in 0..7u64 {
            t.insert(k, k);
        }
        assert!(!t.merge_due(), "below the watermark");
        assert_eq!(t.delta_writes(), 7);
        t.insert(7, 7);
        assert!(t.merge_due(), "the 8th delta write crosses the watermark");
        assert!(t.merge());
        assert!(!t.merge_due(), "seal re-arms the watermark");
        assert_eq!(t.delta_writes(), 0);
        assert_eq!(t.frozen_len(), 8);
    }

    #[test]
    fn watermark_triggers_merge_without_timer() {
        // No `merge_every`: the only way the background thread ever runs a merge
        // is the watermark-crossing writer unparking it.
        let config = TieredSkipTrieConfig::for_universe_bits(32).with_merge_watermark(32);
        let t: TieredSkipTrie<u64> = TieredSkipTrie::new(config);
        for k in 0..32u64 {
            t.insert(k, k);
        }
        for _ in 0..2000 {
            if t.frozen_len() == 32 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(t.frozen_len(), 32, "watermark merge never fired");
        assert_eq!(t.delta_len(), 0);
    }

    #[test]
    fn batch_ops_match_point_ops() {
        let t = tiered([10, 20, 30]);
        let inserted = t.insert_batch(&[(5, 50), (10, 99), (25, 250), (35, 350)]);
        assert_eq!(inserted, 3, "10 is already visible in the frozen tier");
        assert_eq!(t.remove_batch(&[5, 20, 7]), 2);
        assert_eq!(
            t.get_batch(&[5, 10, 20, 25, 30, 35]),
            vec![None, Some(11), None, Some(250), Some(31), Some(350)]
        );
        t.merge();
        assert_eq!(
            t.get_batch(&[5, 10, 20, 25, 30, 35]),
            vec![None, Some(11), None, Some(250), Some(31), Some(350)],
            "batch reads agree across the fold"
        );
    }

    #[test]
    fn pop_last_drains_in_reverse_order() {
        let t = tiered([3, 5, 9]);
        t.insert(1, 42);
        assert_eq!(t.pop_last(), Some((9, 10)));
        assert_eq!(t.pop_last(), Some((5, 6)));
        assert_eq!(t.pop_last(), Some((3, 4)));
        assert_eq!(t.pop_last(), Some((1, 42)));
        assert_eq!(t.pop_last(), None);
    }

    #[test]
    fn bulk_load_builds_the_frozen_tier() {
        let mut t: TieredSkipTrie<u64> =
            TieredSkipTrie::new(TieredSkipTrieConfig::for_universe_bits(32));
        let entries: Vec<(u64, u64)> = (0..100u64).map(|k| (k * 7, k)).collect();
        assert_eq!(t.bulk_load(&entries), 100);
        assert_eq!(t.frozen_len(), 100);
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(14), Some(2));
        assert_eq!(t.check_traversal_integrity(), 100);
    }

    #[test]
    fn reads_merge_frozen_and_delta() {
        let t = tiered([10, 20, 30]);
        assert_eq!(t.get(20), Some(21));
        assert_eq!(t.predecessor(25), Some((20, 21)));
        assert_eq!(t.successor(25), Some((30, 31)));

        // Delta insert shadows nothing, extends the view.
        assert!(t.insert(25, 99));
        assert!(!t.insert(25, 100), "insert-if-absent");
        assert!(!t.insert(20, 7), "frozen keys are visible to insert");
        assert_eq!(t.predecessor(26), Some((25, 99)));

        // Tombstone hides a frozen key from every read form.
        assert_eq!(t.remove(20), Some(21));
        assert_eq!(t.remove(20), None, "already dead");
        assert_eq!(t.get(20), None);
        assert_eq!(t.predecessor(22), Some((10, 11)));
        assert_eq!(t.successor(11), Some((25, 99)));
        assert_eq!(
            t.range(..).collect::<Vec<_>>(),
            vec![(10, 11), (25, 99), (30, 31)]
        );
        assert_eq!(t.len(), 3);

        // Revive the dead key through the tombstone.
        assert!(t.insert(20, 5));
        assert_eq!(t.get(20), Some(5));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn merge_folds_delta_and_restores_fast_path() {
        let t = tiered(0..100);
        for k in 0..50u64 {
            t.remove(k * 2);
        }
        assert!(t.insert(1000, 7));
        assert_eq!(t.delta_len(), 51, "50 tombstones + 1 insert buffered");

        assert!(t.merge());
        assert!(!t.merge(), "empty delta folds are skipped");
        assert_eq!(t.delta_len(), 0);
        assert_eq!(t.frozen_len(), 51, "odd keys plus the new insert");
        assert_eq!(t.generation(), 2, "seal swap + publish swap");

        let snap = t.snapshot();
        assert_eq!(snap.len(), 51);
        assert!(snap.iter().all(|&(k, _)| k == 1000 || k % 2 == 1));
        assert_eq!(t.get(4), None, "tombstoned keys stay dead across the fold");
        assert_eq!(t.predecessor(4), Some((3, 4)));
        assert_eq!(t.len(), 51);
    }

    #[test]
    fn range_limits_and_bounds() {
        let t = tiered((0..100).map(|k| k * 10));
        t.remove(500);
        t.insert(505, 1);
        let window: Vec<u64> = t.range(490..=510).map(|(k, _)| k).collect();
        assert_eq!(window, vec![490, 505, 510]);
        assert_eq!(t.range(..).count(), 100);
        assert_eq!(t.range(200..200).count(), 0);
        let mut iter = t.range(..);
        assert_eq!(iter.count_up_to(7), 7);
    }

    #[test]
    fn pop_first_drains_in_order() {
        let t = tiered(
            [5, 3, 9]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>(),
        );
        t.insert(1, 42);
        assert_eq!(t.pop_first(), Some((1, 42)));
        assert_eq!(t.pop_first(), Some((3, 4)));
        assert_eq!(t.pop_first(), Some((5, 6)));
        assert_eq!(t.pop_first(), Some((9, 10)));
        assert_eq!(t.pop_first(), None);
        assert!(t.is_empty());
    }

    #[test]
    fn background_merger_folds_without_explicit_calls() {
        let config =
            TieredSkipTrieConfig::for_universe_bits(32).with_merge_every(Duration::from_millis(5));
        let t: TieredSkipTrie<u64> = TieredSkipTrie::new(config);
        for k in 0..64u64 {
            t.insert(k, k);
        }
        t.nudge_merger();
        // `delta_len() == 0` alone is not quiescence: after the seal swap the live
        // delta is empty while the entries still sit in `sealed`, so wait for the
        // fold to land in the frozen tier.
        for _ in 0..1000 {
            if t.frozen_len() == 64 {
                break;
            }
            t.nudge_merger();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            t.frozen_len(),
            64,
            "background merger never folded the delta"
        );
        assert_eq!(t.delta_len(), 0);
    }
}
