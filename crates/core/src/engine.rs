//! The per-shard engine abstraction behind [`ShardedSkipTrie`](crate::ShardedSkipTrie).
//!
//! The forest router owns *where* a key lives (top-bits shard routing, cross-shard
//! predecessor/successor stepping, stitched range scans, two-ended pops, batch
//! grouping, parallel bulk load); a [`ShardEngine`] owns *how* one shard stores its
//! slice of the key space. [`SkipTrie`] is the default engine — a forest of plain
//! tries, behavior-identical to the pre-trait router. [`TieredSkipTrie`] is the
//! read-optimized engine — each shard a frozen Eytzinger array plus a live delta,
//! with merges staggered across shards by the
//! [`TieredForest`](crate::TieredForest) coordinator.
//!
//! The trait captures exactly the surface the router uses, nothing more:
//!
//! * **Point ops** — `insert`/`remove`/`get`/`contains`, linearizable per shard.
//! * **Ordered queries** — `predecessor`/`successor` within the shard's slice.
//! * **Level-0 cursor** — [`ShardEngine::range`] returns an ordered cursor over
//!   the shard implementing [`EngineRangeIter`]; the router stitches one cursor
//!   per shard, opened in shard (= key) order, so at most one shard's epoch pin
//!   (or tier reference) is live at a time.
//! * **Two-ended pops** — `pop_first`/`pop_last`, plus the `len`/`is_empty`
//!   occupancy hints the router's pop skip-scan reads.
//! * **Batch groups** — the `*_batch_picked` trio: the router groups a batch by
//!   shard and hands each engine its picked indices, already key-sorted, to
//!   execute under one pin / one tier resolution.
//! * **Bulk load** — single-owner `O(n)` construction of one shard's contiguous
//!   sub-slice; the router calls it from one worker thread per shard.
//! * **Maintenance hooks** — watermark-driven background work
//!   ([`ShardEngine::maintenance_due`] / [`ShardEngine::run_maintenance`] /
//!   [`ShardEngine::register_maintenance_waker`]); defaulted to no-ops for
//!   engines with nothing to do in the background (the plain [`SkipTrie`]).

use skiptrie_skiplist::RangeIter as SkipListRangeIter;

use crate::tiered::{FrozenSearch, TieredSkipTrie, TieredSkipTrieConfig};
use crate::{SkipTrie, SkipTrieConfig, TieredRangeIter};

/// Everything the forest resolves before constructing one shard: the fully
/// derived per-shard [`SkipTrieConfig`] (decorrelated seed, assigned epoch
/// domain, directory shape) plus the tiered-engine policy knobs, which plain
/// engines ignore.
#[derive(Debug, Clone, Copy)]
pub struct ShardSpec {
    /// Per-shard trie configuration (seed and epoch domain already assigned).
    pub trie: SkipTrieConfig,
    /// Delta-size merge watermark for tiered engines (`None` = no watermark).
    pub merge_watermark: Option<usize>,
    /// Frozen-tier search algorithm for tiered engines.
    pub frozen_search: FrozenSearch,
}

/// An ordered cursor over one shard's slice of the key space; what
/// [`ShardedRangeIter`](crate::ShardedRangeIter) stitches across shards.
pub trait EngineRangeIter<V>: Iterator<Item = (u64, V)> {
    /// Advances and returns only the next key, skipping the value clone — the
    /// counting fast path of `count_range`/`count_up_to`.
    fn next_key(&mut self) -> Option<u64>;
}

impl<V> EngineRangeIter<V> for SkipListRangeIter<'_, V>
where
    V: Clone + Send + Sync + 'static,
{
    fn next_key(&mut self) -> Option<u64> {
        SkipListRangeIter::next_key(self)
    }
}

impl<V> EngineRangeIter<V> for TieredRangeIter<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn next_key(&mut self) -> Option<u64> {
        TieredRangeIter::next_key(self)
    }
}

/// The storage engine of one forest shard — see the [module docs](self) for
/// the contract each method group carries. All methods take `&self` except
/// [`ShardEngine::bulk_load`] (single-owner construction); implementations must
/// be safe to share across the router's threads (`Send + Sync`).
pub trait ShardEngine<V>: Send + Sync + Sized + 'static
where
    V: Clone + Send + Sync + 'static,
{
    /// The cursor type [`ShardEngine::range`] returns.
    type RangeIter<'a>: EngineRangeIter<V>
    where
        Self: 'a;

    /// Constructs an empty shard from its resolved spec.
    fn build(spec: &ShardSpec) -> Self;

    /// Inserts `key -> value` if absent; `true` if this call inserted.
    fn insert(&self, key: u64, value: V) -> bool;

    /// Removes `key`, returning its value if this call removed it.
    fn remove(&self, key: u64) -> Option<V>;

    /// A clone of the value stored under `key`.
    fn get(&self, key: u64) -> Option<V>;

    /// True if `key` is present.
    fn contains(&self, key: u64) -> bool;

    /// The largest key `<= key` in this shard, with its value.
    fn predecessor(&self, key: u64) -> Option<(u64, V)>;

    /// The smallest key `>= key` in this shard, with its value.
    fn successor(&self, key: u64) -> Option<(u64, V)>;

    /// An ordered cursor over keys in `lo..=hi` (the router passes its global
    /// bounds straight through — a shard only holds keys of its own slice).
    fn range(&self, lo: u64, hi: u64) -> Self::RangeIter<'_>;

    /// Removes and returns the smallest entry.
    fn pop_first(&self) -> Option<(u64, V)>;

    /// Removes and returns the largest entry.
    fn pop_last(&self) -> Option<(u64, V)>;

    /// Number of keys stored — the router's pop occupancy hint; may be a racy
    /// counter (the pop falls back to real probes before trusting a 0).
    fn len(&self) -> usize;

    /// True if no keys are stored (same hint semantics as [`ShardEngine::len`]).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Executes one shard's slice of a batched insert: `order` indexes into
    /// `entries`, key-sorted, all routing to this shard. Returns how many keys
    /// this call inserted.
    fn insert_batch_picked(&self, entries: &[(u64, V)], order: &[usize]) -> usize;

    /// Executes one shard's slice of a batched remove (see
    /// [`ShardEngine::insert_batch_picked`]). Returns how many keys were removed.
    fn remove_batch_picked(&self, keys: &[u64], order: &[usize]) -> usize;

    /// Executes one shard's slice of a batched lookup, writing `out[i]` for each
    /// picked `i`.
    fn get_batch_picked(&self, keys: &[u64], order: &[usize], out: &mut [Option<V>]);

    /// [`ShardEngine::insert_batch_picked`] with per-key outcomes: writes
    /// `out[i] = true` for each picked `i` this call inserted. The serving
    /// pipeline coalesces a connection's queued inserts through this so a
    /// batched execution still answers every request individually. Defaults to
    /// a per-op loop; engines with hint-threading batch paths override it.
    fn insert_batch_picked_flags(&self, entries: &[(u64, V)], order: &[usize], out: &mut [bool]) {
        for &i in order {
            let (key, ref value) = entries[i];
            out[i] = self.insert(key, value.clone());
        }
    }

    /// [`ShardEngine::remove_batch_picked`] with per-key outcomes: writes
    /// `out[i]` to the value removed under `keys[i]` (`None` if absent) for
    /// each picked `i`. Defaults to a per-op loop.
    fn remove_batch_picked_values(&self, keys: &[u64], order: &[usize], out: &mut [Option<V>]) {
        for &i in order {
            out[i] = self.remove(keys[i]);
        }
    }

    /// Single-owner `O(n)` construction from this shard's sorted, strictly
    /// increasing sub-slice; the shard must be empty. Returns the entry count.
    fn bulk_load(&mut self, entries: &[(u64, V)]) -> usize;

    /// Snapshot of the shard's contents in key order (weakly consistent).
    fn to_vec(&self) -> Vec<(u64, V)>;

    /// Snapshot of the shard's keys in order (weakly consistent).
    fn keys(&self) -> Vec<u64> {
        self.to_vec().into_iter().map(|(k, _)| k).collect()
    }

    /// `(allocated, recycled, pooled)` node counts of the shard's pool(s).
    fn allocation_stats(&self) -> (usize, usize, usize);

    /// Approximate resident bytes of the shard's storage.
    fn approx_node_bytes(&self) -> usize;

    /// Audits the shard's structural invariants, panicking on violation;
    /// returns how many entries were examined.
    fn check_traversal_integrity(&self) -> usize;

    /// True when the engine has background work owed (e.g. a tiered shard whose
    /// delta crossed its merge watermark). Defaults to "never".
    fn maintenance_due(&self) -> bool {
        false
    }

    /// Runs one round of background maintenance (e.g. one tier fold); returns
    /// whether any work was performed. Defaults to a no-op.
    fn run_maintenance(&self) -> bool {
        false
    }

    /// Registers the thread to unpark when maintenance becomes due, replacing
    /// any previous registration. Defaults to a no-op for engines that never
    /// have background work.
    fn register_maintenance_waker(&self, waker: std::thread::Thread) {
        let _ = waker;
    }
}

impl<V> ShardEngine<V> for SkipTrie<V>
where
    V: Clone + Send + Sync + 'static,
{
    type RangeIter<'a>
        = SkipListRangeIter<'a, V>
    where
        Self: 'a;

    fn build(spec: &ShardSpec) -> Self {
        SkipTrie::new(spec.trie)
    }

    fn insert(&self, key: u64, value: V) -> bool {
        SkipTrie::insert(self, key, value)
    }

    fn remove(&self, key: u64) -> Option<V> {
        SkipTrie::remove(self, key)
    }

    fn get(&self, key: u64) -> Option<V> {
        SkipTrie::get(self, key)
    }

    fn contains(&self, key: u64) -> bool {
        SkipTrie::contains(self, key)
    }

    fn predecessor(&self, key: u64) -> Option<(u64, V)> {
        SkipTrie::predecessor(self, key)
    }

    fn successor(&self, key: u64) -> Option<(u64, V)> {
        SkipTrie::successor(self, key)
    }

    fn range(&self, lo: u64, hi: u64) -> Self::RangeIter<'_> {
        SkipTrie::range(self, lo..=hi)
    }

    fn pop_first(&self) -> Option<(u64, V)> {
        SkipTrie::pop_first(self)
    }

    fn pop_last(&self) -> Option<(u64, V)> {
        SkipTrie::pop_last(self)
    }

    fn len(&self) -> usize {
        SkipTrie::len(self)
    }

    fn is_empty(&self) -> bool {
        SkipTrie::is_empty(self)
    }

    fn insert_batch_picked(&self, entries: &[(u64, V)], order: &[usize]) -> usize {
        SkipTrie::insert_batch_picked(self, entries, order)
    }

    fn remove_batch_picked(&self, keys: &[u64], order: &[usize]) -> usize {
        SkipTrie::remove_batch_picked(self, keys, order)
    }

    fn get_batch_picked(&self, keys: &[u64], order: &[usize], out: &mut [Option<V>]) {
        SkipTrie::get_batch_picked(self, keys, order, out);
    }

    fn insert_batch_picked_flags(&self, entries: &[(u64, V)], order: &[usize], out: &mut [bool]) {
        SkipTrie::insert_batch_picked_flags(self, entries, order, out);
    }

    fn remove_batch_picked_values(&self, keys: &[u64], order: &[usize], out: &mut [Option<V>]) {
        SkipTrie::remove_batch_picked_values(self, keys, order, out);
    }

    fn bulk_load(&mut self, entries: &[(u64, V)]) -> usize {
        SkipTrie::bulk_load(self, entries.iter().cloned())
    }

    fn to_vec(&self) -> Vec<(u64, V)> {
        SkipTrie::to_vec(self)
    }

    fn keys(&self) -> Vec<u64> {
        SkipTrie::keys(self)
    }

    fn allocation_stats(&self) -> (usize, usize, usize) {
        SkipTrie::allocation_stats(self)
    }

    fn approx_node_bytes(&self) -> usize {
        SkipTrie::approx_node_bytes(self)
    }

    fn check_traversal_integrity(&self) -> usize {
        SkipTrie::check_traversal_integrity(self)
    }
}

impl<V> ShardEngine<V> for TieredSkipTrie<V>
where
    V: Clone + Send + Sync + 'static,
{
    type RangeIter<'a>
        = TieredRangeIter<V>
    where
        Self: 'a;

    fn build(spec: &ShardSpec) -> Self {
        let config = TieredSkipTrieConfig {
            trie: spec.trie,
            // No per-shard timer and no per-shard thread: merges are driven by
            // the watermark through the forest's single coordinator, which
            // registers itself via `register_maintenance_waker`.
            merge_every: None,
            merge_watermark: spec.merge_watermark,
            frozen_search: spec.frozen_search,
        };
        TieredSkipTrie::from_sorted_spawn(config, std::iter::empty(), false)
    }

    fn insert(&self, key: u64, value: V) -> bool {
        TieredSkipTrie::insert(self, key, value)
    }

    fn remove(&self, key: u64) -> Option<V> {
        TieredSkipTrie::remove(self, key)
    }

    fn get(&self, key: u64) -> Option<V> {
        TieredSkipTrie::get(self, key)
    }

    fn contains(&self, key: u64) -> bool {
        TieredSkipTrie::contains(self, key)
    }

    fn predecessor(&self, key: u64) -> Option<(u64, V)> {
        TieredSkipTrie::predecessor(self, key)
    }

    fn successor(&self, key: u64) -> Option<(u64, V)> {
        TieredSkipTrie::successor(self, key)
    }

    fn range(&self, lo: u64, hi: u64) -> Self::RangeIter<'_> {
        TieredSkipTrie::range(self, lo..=hi)
    }

    fn pop_first(&self) -> Option<(u64, V)> {
        TieredSkipTrie::pop_first(self)
    }

    fn pop_last(&self) -> Option<(u64, V)> {
        TieredSkipTrie::pop_last(self)
    }

    fn len(&self) -> usize {
        TieredSkipTrie::len(self)
    }

    fn is_empty(&self) -> bool {
        TieredSkipTrie::is_empty(self)
    }

    fn insert_batch_picked(&self, entries: &[(u64, V)], order: &[usize]) -> usize {
        TieredSkipTrie::insert_batch_picked(self, entries, order)
    }

    fn remove_batch_picked(&self, keys: &[u64], order: &[usize]) -> usize {
        TieredSkipTrie::remove_batch_picked(self, keys, order)
    }

    fn get_batch_picked(&self, keys: &[u64], order: &[usize], out: &mut [Option<V>]) {
        TieredSkipTrie::get_batch_picked(self, keys, order, out);
    }

    fn insert_batch_picked_flags(&self, entries: &[(u64, V)], order: &[usize], out: &mut [bool]) {
        TieredSkipTrie::insert_batch_picked_flags(self, entries, order, out);
    }

    fn remove_batch_picked_values(&self, keys: &[u64], order: &[usize], out: &mut [Option<V>]) {
        TieredSkipTrie::remove_batch_picked_values(self, keys, order, out);
    }

    fn bulk_load(&mut self, entries: &[(u64, V)]) -> usize {
        TieredSkipTrie::bulk_load(self, entries)
    }

    fn to_vec(&self) -> Vec<(u64, V)> {
        TieredSkipTrie::snapshot(self)
    }

    fn keys(&self) -> Vec<u64> {
        let mut iter = TieredSkipTrie::range(self, ..);
        let mut keys = Vec::new();
        while let Some(key) = iter.next_key() {
            keys.push(key);
        }
        keys
    }

    fn allocation_stats(&self) -> (usize, usize, usize) {
        TieredSkipTrie::allocation_stats(self)
    }

    fn approx_node_bytes(&self) -> usize {
        TieredSkipTrie::approx_node_bytes(self)
    }

    fn check_traversal_integrity(&self) -> usize {
        TieredSkipTrie::check_traversal_integrity(self)
    }

    fn maintenance_due(&self) -> bool {
        TieredSkipTrie::merge_due(self)
    }

    fn run_maintenance(&self) -> bool {
        TieredSkipTrie::merge(self)
    }

    fn register_maintenance_waker(&self, waker: std::thread::Thread) {
        TieredSkipTrie::set_merge_waker(self, waker);
    }
}
