//! A sharded SkipTrie forest: the key universe partitioned across independent
//! SkipTries by the top key bits.
//!
//! The SkipTrie's `O(log log u + c)` bound is per structure; at high thread counts
//! the remaining wall is cross-thread traffic on *one* trie — one prefix table, one
//! node pool, one epoch domain — so every operation, however disjoint its key, dirties
//! the same cache lines. [`ShardedSkipTrie`] removes that wall structurally:
//!
//! * **Routing.** `S = 2^shard_bits` shards; a key lives in the shard named by its
//!   top `shard_bits` bits, so each shard owns one contiguous slice of the key space
//!   and global key order equals (shard index, in-shard order). Point operations
//!   touch exactly one shard.
//! * **Isolation.** Every shard is a complete [`SkipTrie`] with its **own node pool**
//!   and — by default — its **own epoch domain**
//!   ([`crossbeam_epoch::pin_domain`]), so shards share no allocator free-list, no
//!   epoch counter, and no garbage queue on the hot path; a long scan of one shard
//!   stalls only that shard's reclamation.
//! * **Ordered queries compose.** [`predecessor`](ShardedSkipTrie::predecessor) /
//!   [`successor`](ShardedSkipTrie::successor) ask the key's home shard first and
//!   route to neighbouring shards only on a miss; [`range`](ShardedSkipTrie::range)
//!   stitches per-shard cursors in shard order; [`pop_first`](ShardedSkipTrie::pop_first)
//!   / [`pop_last`](ShardedSkipTrie::pop_last) walk shards from the respective end.
//! * **Batching.** [`insert_batch`](ShardedSkipTrie::insert_batch) /
//!   [`remove_batch`](ShardedSkipTrie::remove_batch) /
//!   [`get_batch`](ShardedSkipTrie::get_batch) group a slice of operations by shard,
//!   sort within each shard, and execute each group under a single epoch pin with
//!   predecessor hints threaded from one operation to the next.
//!
//! # Consistency
//!
//! Each *shard* is linearizable, and every point operation (insert / remove / get /
//! contains) touches exactly one shard, so point operations on the forest are
//! linearizable too. Operations that *combine* shards — cross-shard predecessor and
//! successor routing, stitched range scans, `pop_first` / `pop_last` — are **weakly
//! consistent**: each per-shard step is linearizable, shards are visited in key
//! order, and the composed answer was correct at some moment during the call, but a
//! concurrent update in a shard the operation has already passed may not be observed.
//! Range scans keep the cursor contract of the underlying tries: every key present
//! in the scanned range for the *whole* scan is yielded exactly once, in increasing
//! order (a key is in exactly one shard, and that shard's sub-scan covers the key's
//! whole sub-range). The quiescent behaviour is exact — see the model tests.

use std::ops::RangeBounds;

use crossbeam_epoch::Reclaimer;
use skiptrie_atomics::dcss::DcssMode;
use skiptrie_metrics::{self as metrics, Counter};
use skiptrie_skiplist::resolve_bounds;
use skiptrie_splitorder::DirectoryConfig;

use crate::engine::{EngineRangeIter, ShardEngine, ShardSpec};
use crate::tiered::FrozenSearch;
use crate::{prefix, SkipTrie, SkipTrieConfig};

/// First epoch domain handed to shards: domain 0 is the process-wide default and is
/// deliberately skipped so un-sharded structures never share a domain with a shard.
const SHARD_DOMAIN_BASE: usize = 1;

/// Configuration of a [`ShardedSkipTrie`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedSkipTrieConfig {
    /// Width of the key universe in bits (`1..=64`); keys must be `< 2^universe_bits`.
    pub universe_bits: u32,
    /// The forest has `2^shard_bits` shards, keyed by the top `shard_bits` key bits.
    /// Must not exceed `universe_bits` (or 16 — 65 536 shards is never useful).
    pub shard_bits: u32,
    /// How conditional pointer swings are performed in every shard.
    pub mode: DcssMode,
    /// Master height-sampler seed; shard `i` derives its own seed from it.
    pub seed: u64,
    /// Give every shard its own epoch domain (the default). Disable to run all
    /// shards in the process-wide default domain — useful only for apples-to-apples
    /// ablations of the domain isolation itself.
    pub isolate_epochs: bool,
    /// Shape of every shard's prefix-table bucket directory (unbounded growable
    /// segment tree by default); see [`SkipTrieConfig::with_hash_directory`].
    pub hash_dir: DirectoryConfig,
    /// Per-shard delta-size merge watermark, for tiered engines: once a shard's
    /// live delta accumulates this many writes, the writer that crosses the mark
    /// flags the shard and unparks the merge coordinator. Ignored by the plain
    /// [`SkipTrie`] engine. `None` (the default) disables the trigger.
    pub merge_watermark: Option<usize>,
    /// Frozen-tier search algorithm for tiered engines (ignored by the plain
    /// [`SkipTrie`] engine); see [`FrozenSearch`].
    pub frozen_search: FrozenSearch,
    /// Adapt each shard's merge watermark to its share of recent delta writes
    /// (tiered engines under a [`TieredForest`](crate::TieredForest)
    /// coordinator only): hot shards fold sooner, cold shards are left alone.
    /// `merge_watermark` becomes the *base* (and ceiling) watermark. Ignored
    /// without a configured watermark.
    pub adaptive_watermark: bool,
    /// Reclamation substrate for every shard's epoch domain; see
    /// [`SkipTrieConfig::with_reclaimer`].
    pub reclaimer: Reclaimer,
}

impl Default for ShardedSkipTrieConfig {
    fn default() -> Self {
        ShardedSkipTrieConfig::for_universe_bits(32)
    }
}

impl ShardedSkipTrieConfig {
    /// A forest over `universe_bits`-bit keys with the default of 8 shards
    /// (`shard_bits = 3`, clamped to the universe width).
    ///
    /// # Panics
    ///
    /// Panics if `universe_bits` is not in `1..=64`.
    pub fn for_universe_bits(universe_bits: u32) -> Self {
        assert!(
            (1..=64).contains(&universe_bits),
            "universe_bits must be between 1 and 64"
        );
        ShardedSkipTrieConfig {
            universe_bits,
            shard_bits: 3.min(universe_bits),
            mode: DcssMode::Descriptor,
            seed: 0x5eed_5eed_5eed_5eed,
            isolate_epochs: true,
            hash_dir: DirectoryConfig::default(),
            merge_watermark: None,
            frozen_search: FrozenSearch::Eytzinger,
            adaptive_watermark: false,
            reclaimer: Reclaimer::Ebr,
        }
    }

    /// Sets the shard count to `shards` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or not a power of two.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        self.shard_bits = shards.trailing_zeros();
        self
    }

    /// Overrides the DCSS mode of every shard.
    pub fn with_mode(mut self, mode: DcssMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the master height-sampler seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs every shard in the process-wide default epoch domain instead of one
    /// domain per shard (see [`ShardedSkipTrieConfig::isolate_epochs`]).
    pub fn with_shared_epoch(mut self) -> Self {
        self.isolate_epochs = false;
        self
    }

    /// Overrides the shape of every shard's prefix-table bucket directory — see
    /// [`DirectoryConfig`].
    pub fn with_hash_directory(mut self, hash_dir: DirectoryConfig) -> Self {
        self.hash_dir = hash_dir;
        self
    }

    /// Caps every shard's prefix-table directory at `cap` buckets (the legacy
    /// bounded mode); see [`SkipTrieConfig::with_hash_bucket_cap`].
    pub fn with_hash_bucket_cap(mut self, cap: usize) -> Self {
        self.hash_dir = self.hash_dir.with_bucket_cap(cap);
        self
    }

    /// Arms the per-shard delta-size merge watermark (tiered engines only); see
    /// [`ShardedSkipTrieConfig::merge_watermark`].
    ///
    /// # Panics
    ///
    /// Panics if `watermark` is zero.
    pub fn with_merge_watermark(mut self, watermark: usize) -> Self {
        assert!(watermark > 0, "merge watermark must be positive");
        self.merge_watermark = Some(watermark);
        self
    }

    /// Selects the frozen-tier search algorithm for tiered engines; see
    /// [`FrozenSearch`].
    pub fn with_frozen_search(mut self, search: FrozenSearch) -> Self {
        self.frozen_search = search;
        self
    }

    /// Enables adaptive per-shard merge watermarks (tiered engines under a
    /// forest coordinator only); see
    /// [`ShardedSkipTrieConfig::adaptive_watermark`].
    pub fn with_adaptive_watermark(mut self) -> Self {
        self.adaptive_watermark = true;
        self
    }

    /// Selects the reclamation substrate for every shard's epoch domain; see
    /// [`SkipTrieConfig::with_reclaimer`].
    pub fn with_reclaimer(mut self, reclaimer: Reclaimer) -> Self {
        self.reclaimer = reclaimer;
        self
    }
}

/// A lock-free ordered map over `universe_bits`-bit integer keys, partitioned across
/// `2^shard_bits` independent shards by the top `shard_bits` key bits.
///
/// Generic over the per-shard storage engine `E` (see
/// [`ShardEngine`]): the default `E = SkipTrie<V>` is a forest of plain tries;
/// `E = TieredSkipTrie<V>` (usually via [`TieredForest`](crate::TieredForest))
/// gives every shard a frozen read tier plus a live delta. The router — key
/// routing, cross-shard queries, stitched scans, pops, batching, parallel bulk
/// load — is engine-agnostic.
///
/// Exposes the full SkipTrie surface (point operations, predecessor/successor, range
/// scans, ordered extraction) plus batched entry points; see the [module docs](self)
/// for the sharding design and the cross-shard consistency contract.
///
/// # Examples
///
/// ```
/// use skiptrie::{ShardedSkipTrie, ShardedSkipTrieConfig};
///
/// let forest: ShardedSkipTrie<&str> =
///     ShardedSkipTrie::new(ShardedSkipTrieConfig::for_universe_bits(32).with_shards(8));
/// forest.insert(1, "low");
/// forest.insert(u32::MAX as u64, "high"); // lives in the last shard
///
/// // Ordered queries route across shard boundaries transparently:
/// assert_eq!(forest.predecessor(1 << 30), Some((1, "low")));
/// assert_eq!(forest.successor(2), Some((u32::MAX as u64, "high")));
/// assert_eq!(forest.range(..).count(), 2);
/// assert_eq!(forest.pop_first(), Some((1, "low")));
/// ```
pub struct ShardedSkipTrie<V, E = SkipTrie<V>> {
    config: ShardedSkipTrieConfig,
    shards: Box<[E]>,
    /// `key >> shard_shift` = shard index (`shard_shift = universe_bits - shard_bits`,
    /// or 64 for the single-shard degenerate case, where the shift is skipped).
    shard_shift: u32,
    /// The router never stores a bare `V`; shards do.
    _marker: std::marker::PhantomData<V>,
}

impl<V, E> Default for ShardedSkipTrie<V, E>
where
    V: Clone + Send + Sync + 'static,
    E: ShardEngine<V>,
{
    fn default() -> Self {
        ShardedSkipTrie::new(ShardedSkipTrieConfig::default())
    }
}

impl<V, E> ShardedSkipTrie<V, E>
where
    V: Clone + Send + Sync + 'static,
    E: ShardEngine<V>,
{
    /// Creates an empty forest.
    ///
    /// # Panics
    ///
    /// Panics if `config.universe_bits` is not in `1..=64`, or if `config.shard_bits`
    /// exceeds `universe_bits` or 16.
    pub fn new(config: ShardedSkipTrieConfig) -> Self {
        assert!(
            (1..=64).contains(&config.universe_bits),
            "universe_bits must be between 1 and 64"
        );
        assert!(
            config.shard_bits <= config.universe_bits,
            "shard_bits ({}) cannot exceed universe_bits ({})",
            config.shard_bits,
            config.universe_bits
        );
        assert!(
            config.shard_bits <= 16,
            "2^{} shards is never useful",
            config.shard_bits
        );
        let shard_count = 1usize << config.shard_bits;
        let shards: Vec<E> = (0..shard_count)
            .map(|i| {
                let mut shard_config = SkipTrieConfig::for_universe_bits(config.universe_bits)
                    .with_mode(config.mode)
                    .with_hash_directory(config.hash_dir)
                    .with_reclaimer(config.reclaimer)
                    // Decorrelate tower heights across shards.
                    .with_seed(
                        config
                            .seed
                            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                if config.isolate_epochs {
                    // Distinct domains for up to NUM_DOMAINS - 1 shards; beyond that
                    // they wrap (never onto the default domain 0).
                    shard_config = shard_config
                        .with_domain(SHARD_DOMAIN_BASE + i % (crossbeam_epoch::NUM_DOMAINS - 1));
                }
                E::build(&ShardSpec {
                    trie: shard_config,
                    merge_watermark: config.merge_watermark,
                    frozen_search: config.frozen_search,
                })
            })
            .collect();
        ShardedSkipTrie {
            shards: shards.into_boxed_slice(),
            shard_shift: config.universe_bits - config.shard_bits,
            config,
            _marker: std::marker::PhantomData,
        }
    }

    /// The configuration this forest was built with.
    pub fn config(&self) -> ShardedSkipTrieConfig {
        self.config
    }

    /// Number of shards (`2^shard_bits`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Width of the key universe in bits (`log u`).
    pub fn universe_bits(&self) -> u32 {
        self.config.universe_bits
    }

    /// The largest key this forest accepts.
    pub fn max_key(&self) -> u64 {
        prefix::max_key(self.config.universe_bits)
    }

    /// The shard a key routes to: its top `shard_bits` bits.
    pub fn shard_of(&self, key: u64) -> usize {
        if self.config.shard_bits == 0 {
            0
        } else {
            (key >> self.shard_shift) as usize
        }
    }

    /// Borrows shard `index`'s engine directly (diagnostics, tests, and the
    /// tiered forest's merge coordinator).
    ///
    /// # Panics
    ///
    /// Panics if `index >= shard_count()`.
    pub fn shard(&self, index: usize) -> &E {
        &self.shards[index]
    }

    /// Number of keys stored across all shards (quiescently accurate).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if no keys are stored (quiescently accurate).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    fn check_key(&self, key: u64) {
        assert!(
            key <= self.max_key(),
            "key {key} exceeds the configured universe of {} bits",
            self.config.universe_bits
        );
    }

    // ------------------------------------------------------------------
    // Point operations (single shard, linearizable)
    // ------------------------------------------------------------------

    /// Inserts `key -> value` into the key's shard. Returns `true` if the key was
    /// absent and is now present (see [`SkipTrie::insert`]).
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn insert(&self, key: u64, value: V) -> bool {
        self.check_key(key);
        self.shards[self.shard_of(key)].insert(key, value)
    }

    /// Removes `key` from its shard, returning its value if this call performed the
    /// removal (see [`SkipTrie::remove`]).
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn remove(&self, key: u64) -> Option<V> {
        self.check_key(key);
        self.shards[self.shard_of(key)].remove(key)
    }

    /// Returns a clone of the value stored under `key` (see [`SkipTrie::get`]).
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn get(&self, key: u64) -> Option<V> {
        self.check_key(key);
        self.shards[self.shard_of(key)].get(key)
    }

    /// True if `key` is present; clones no value.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn contains(&self, key: u64) -> bool {
        self.check_key(key);
        self.shards[self.shard_of(key)].contains(key)
    }

    // ------------------------------------------------------------------
    // Ordered queries (cross-shard routing)
    // ------------------------------------------------------------------

    /// The largest key `<= key` and its value: the key's home shard is queried
    /// first, and on a miss the scan routes through lower-indexed shards in
    /// descending order (every key of a lower shard is `< key`, so the first hit is
    /// the answer). See the [module docs](self) for the cross-shard consistency
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn predecessor(&self, key: u64) -> Option<(u64, V)> {
        self.check_key(key);
        let home = self.shard_of(key);
        if let Some(hit) = self.shards[home].predecessor(key) {
            return Some(hit);
        }
        self.shards[..home]
            .iter()
            .rev()
            .find_map(|shard| shard.predecessor(key))
    }

    /// The largest key strictly `< key`, if any.
    pub fn strict_predecessor(&self, key: u64) -> Option<(u64, V)> {
        if key == 0 {
            return None;
        }
        self.predecessor(key - 1)
    }

    /// The smallest key `>= key` and its value; the mirror image of
    /// [`ShardedSkipTrie::predecessor`], routing through higher-indexed shards on a
    /// home-shard miss.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn successor(&self, key: u64) -> Option<(u64, V)> {
        self.check_key(key);
        let home = self.shard_of(key);
        if let Some(hit) = self.shards[home].successor(key) {
            return Some(hit);
        }
        self.shards[home + 1..]
            .iter()
            .find_map(|shard| shard.successor(key))
    }

    /// The smallest key strictly `> key`, if any.
    pub fn strict_successor(&self, key: u64) -> Option<(u64, V)> {
        if key >= self.max_key() {
            return None;
        }
        self.successor(key + 1)
    }

    // ------------------------------------------------------------------
    // Range scans and ordered extraction
    // ------------------------------------------------------------------

    /// An ordered, weakly-consistent iterator over the entries whose keys lie in
    /// `range`, stitched across shard boundaries: per-shard cursors are opened in
    /// shard (= key) order, each holding its own shard's epoch pin only while that
    /// shard is being walked. Every key present in the range for the whole scan is
    /// yielded exactly once, in increasing order (the per-shard cursor contract —
    /// see [`SkipTrie::range`] — composes because each key belongs to exactly one
    /// shard). Bounds beyond the universe are tolerated.
    pub fn range(&self, range: impl RangeBounds<u64>) -> ShardedRangeIter<'_, V, E> {
        match resolve_bounds(&range) {
            Some((lo, hi)) if lo <= self.max_key() => {
                let last_shard = self.shard_of(hi.min(self.max_key()));
                ShardedRangeIter {
                    forest: self,
                    lo,
                    hi,
                    next_shard: self.shard_of(lo),
                    last_shard,
                    cur: None,
                    done: false,
                }
            }
            _ => ShardedRangeIter {
                forest: self,
                lo: 0,
                hi: 0,
                next_shard: 0,
                last_shard: 0,
                cur: None,
                done: true,
            },
        }
    }

    /// Number of keys in `range` (weakly consistent, counted without cloning any
    /// value).
    pub fn count_range(&self, range: impl RangeBounds<u64>) -> usize {
        let mut iter = self.range(range);
        let mut count = 0usize;
        while iter.next_key().is_some() {
            count += 1;
        }
        count
    }

    /// Removes and returns the entry with the smallest key, scanning shards in
    /// ascending order and popping the first shard that yields one. `None` if every
    /// shard was empty when visited. See the [module docs](self) for the cross-shard
    /// consistency contract.
    ///
    /// Shards whose occupancy counter ([`SkipTrie::len`]) reads 0 are **skipped
    /// without a probe** — over a mostly-drained forest the old per-pop re-probe of
    /// every empty shard made each pop `O(S)` searches instead of one. The counter
    /// is a hint, not a guard: an insertion linearizes (its node becomes reachable)
    /// an instant before the counter moves, so a racing 0 read can hide a present
    /// key — the pop therefore falls back to one real probe per shard before
    /// declaring the forest empty. Probes and skips are recorded as
    /// [`Counter::ShardPopProbe`] / [`Counter::ShardPopSkip`] when metrics are on.
    pub fn pop_first(&self) -> Option<(u64, V)> {
        self.pop_over(self.shards.iter(), false)
    }

    /// Removes and returns the entry with the largest key; the mirror image of
    /// [`ShardedSkipTrie::pop_first`], scanning shards in descending order, with the
    /// same empty-shard skip (worth even more here: each probe of an empty shard
    /// runs a full x-fast `LowestAncestor` search before discovering nothing).
    pub fn pop_last(&self) -> Option<(u64, V)> {
        self.pop_over(self.shards.iter().rev(), true)
    }

    /// Shared two-phase pop: an occupancy-hinted pass over `shards` that skips
    /// empty-reading ones, then — only if that pass found nothing — an
    /// unconditional probe pass that makes the `None` answer authoritative despite
    /// counter races. `shards` must visit shards from the end being popped
    /// (ascending for `from_back = false`, descending for `true`).
    fn pop_over<'a>(
        &'a self,
        mut shards: impl Iterator<Item = &'a E> + Clone,
        from_back: bool,
    ) -> Option<(u64, V)> {
        let pop = |shard: &E| {
            if from_back {
                shard.pop_last()
            } else {
                shard.pop_first()
            }
        };
        for shard in shards.clone() {
            if shard.is_empty() {
                metrics::record(Counter::ShardPopSkip);
                continue;
            }
            metrics::record(Counter::ShardPopProbe);
            if let Some(hit) = pop(shard) {
                return Some(hit);
            }
        }
        // Every shard read 0 (or lost its last key to a racing pop): re-scan with
        // real probes so a key whose insert linearized just before its counter
        // bump is still found.
        shards.find_map(|shard| {
            metrics::record(Counter::ShardPopProbe);
            pop(shard)
        })
    }

    // ------------------------------------------------------------------
    // Batched operations
    // ------------------------------------------------------------------

    /// Sorts `0..n` stably by `(shard, key(i))` and runs `per_group` once per
    /// maximal same-shard run — the shared grouping step of the batched entry
    /// points. Stability keeps earlier duplicates first, preserving sequential
    /// semantics.
    fn group_by_shard(
        &self,
        n: usize,
        key_of: impl Fn(usize) -> u64,
        mut per_group: impl FnMut(usize, &[usize]),
    ) {
        let mut order: Vec<usize> = (0..n).collect();
        // Keys route to shards by their top bits, so sorting by key alone also
        // sorts by shard; runs of one shard are contiguous.
        order.sort_by_key(|&i| key_of(i));
        let mut start = 0usize;
        while start < order.len() {
            let shard = self.shard_of(key_of(order[start]));
            let mut end = start + 1;
            while end < order.len() && self.shard_of(key_of(order[end])) == shard {
                end += 1;
            }
            per_group(shard, &order[start..end]);
            start = end;
        }
    }

    /// Inserts every `key -> value` pair of `entries`, returning how many keys were
    /// newly inserted. Entries are grouped by shard, sorted within each shard, and
    /// each shard's group executes under a single epoch pin with threaded
    /// predecessor hints (see [`SkipTrie::insert_batch`]). Equivalent to — but
    /// faster than — inserting one at a time; each insertion linearizes
    /// individually, and within-batch duplicates resolve in slice order.
    ///
    /// # Examples
    ///
    /// ```
    /// use skiptrie::{ShardedSkipTrie, ShardedSkipTrieConfig};
    ///
    /// let forest: ShardedSkipTrie<u64> =
    ///     ShardedSkipTrie::new(ShardedSkipTrieConfig::for_universe_bits(32));
    /// let batch: Vec<(u64, u64)> = (0..1_000).map(|k| (k * 4_294_967, k)).collect();
    /// assert_eq!(forest.insert_batch(&batch), 1_000);
    /// assert_eq!(forest.len(), 1_000);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if any key does not fit in the configured universe (checked up front).
    pub fn insert_batch(&self, entries: &[(u64, V)]) -> usize {
        for &(key, _) in entries {
            self.check_key(key);
        }
        let mut inserted = 0usize;
        self.group_by_shard(
            entries.len(),
            |i| entries[i].0,
            |shard, group| {
                inserted += self.shards[shard].insert_batch_picked(entries, group);
            },
        );
        inserted
    }

    /// Removes every key of `keys`, returning how many were present (and are now
    /// removed). Grouped and executed exactly like
    /// [`ShardedSkipTrie::insert_batch`].
    ///
    /// # Panics
    ///
    /// Panics if any key does not fit in the configured universe (checked up front).
    pub fn remove_batch(&self, keys: &[u64]) -> usize {
        for &key in keys {
            self.check_key(key);
        }
        let mut removed = 0usize;
        self.group_by_shard(
            keys.len(),
            |i| keys[i],
            |shard, group| {
                removed += self.shards[shard].remove_batch_picked(keys, group);
            },
        );
        removed
    }

    /// Looks up every key of `keys`, returning the values **in input order**
    /// (`None` for absent keys). Grouped and executed exactly like
    /// [`ShardedSkipTrie::insert_batch`].
    ///
    /// # Panics
    ///
    /// Panics if any key does not fit in the configured universe.
    pub fn get_batch(&self, keys: &[u64]) -> Vec<Option<V>> {
        for &key in keys {
            self.check_key(key);
        }
        let mut out: Vec<Option<V>> = Vec::new();
        out.resize_with(keys.len(), || None);
        self.group_by_shard(
            keys.len(),
            |i| keys[i],
            |shard, group| {
                self.shards[shard].get_batch_picked(keys, group, &mut out);
            },
        );
        out
    }

    /// [`ShardedSkipTrie::insert_batch`] with per-key outcomes: writes
    /// `out[i] = true` iff the call inserted `entries[i]` (within-batch
    /// duplicates resolve in slice order, exactly as sequentially). The serving
    /// pipeline's coalescer uses this so a batched execution still answers
    /// every request individually.
    ///
    /// # Panics
    ///
    /// Panics if any key does not fit in the configured universe, or if `out`
    /// is shorter than `entries`.
    pub fn insert_batch_flags(&self, entries: &[(u64, V)], out: &mut [bool]) {
        assert!(
            out.len() >= entries.len(),
            "output buffer shorter than batch"
        );
        for &(key, _) in entries {
            self.check_key(key);
        }
        self.group_by_shard(
            entries.len(),
            |i| entries[i].0,
            |shard, group| {
                self.shards[shard].insert_batch_picked_flags(entries, group, out);
            },
        );
    }

    /// [`ShardedSkipTrie::remove_batch`] with per-key outcomes: writes `out[i]`
    /// to the value this call removed under `keys[i]` (`None` if absent).
    ///
    /// # Panics
    ///
    /// Panics if any key does not fit in the configured universe, or if `out`
    /// is shorter than `keys`.
    pub fn remove_batch_values(&self, keys: &[u64], out: &mut [Option<V>]) {
        assert!(out.len() >= keys.len(), "output buffer shorter than batch");
        for &key in keys {
            self.check_key(key);
        }
        self.group_by_shard(
            keys.len(),
            |i| keys[i],
            |shard, group| {
                self.shards[shard].remove_batch_picked_values(keys, group, out);
            },
        );
    }

    // ------------------------------------------------------------------
    // Bulk load and snapshots (checkpoint / restore)
    // ------------------------------------------------------------------

    /// Builds a forest directly from a sorted, strictly increasing slice of
    /// `(key, value)` entries: [`ShardedSkipTrie::new`] followed by
    /// [`ShardedSkipTrie::bulk_load`].
    ///
    /// # Panics
    ///
    /// As [`ShardedSkipTrie::new`] and [`ShardedSkipTrie::bulk_load`].
    pub fn from_sorted(config: ShardedSkipTrieConfig, entries: &[(u64, V)]) -> Self {
        let mut forest = ShardedSkipTrie::new(config);
        forest.bulk_load(entries);
        forest
    }

    /// Single-owner bulk construction of the whole forest from a sorted, strictly
    /// increasing slice, returning the number of keys loaded.
    ///
    /// Shard routing is by top key bits, so a sorted slice decomposes into `S`
    /// contiguous sub-slices — one per shard — found with a single linear split.
    /// Each non-empty shard is then built **in parallel** by its own worker thread
    /// via [`SkipTrie::bulk_load`]: shards share no node pool and (by default) no
    /// epoch domain, so the workers proceed with zero cross-shard coordination —
    /// the construction-side payoff of the same isolation that keeps the serving
    /// path contention-free. Restore a checkpoint by feeding
    /// [`ShardedSkipTrie::snapshot`] back in.
    ///
    /// # Panics
    ///
    /// Panics if the forest is not empty, if keys are not strictly increasing, or
    /// if a key does not fit in the configured universe.
    ///
    /// # Examples
    ///
    /// ```
    /// use skiptrie::{ShardedSkipTrie, ShardedSkipTrieConfig};
    ///
    /// let entries: Vec<(u64, u64)> = (0..10_000u64).map(|k| (k * 421, k)).collect();
    /// let forest: ShardedSkipTrie<u64> = ShardedSkipTrie::from_sorted(
    ///     ShardedSkipTrieConfig::for_universe_bits(32).with_shards(8),
    ///     &entries,
    /// );
    /// assert_eq!(forest.len(), 10_000);
    /// assert_eq!(forest.snapshot(), entries);
    /// ```
    pub fn bulk_load(&mut self, entries: &[(u64, V)]) -> usize {
        assert!(self.is_empty(), "bulk_load requires an empty forest");
        let mut prev: Option<u64> = None;
        for &(key, _) in entries {
            self.check_key(key);
            assert!(
                prev.is_none_or(|p| p < key),
                "bulk_load requires strictly increasing keys (saw {key} after {prev:?})"
            );
            prev = Some(key);
        }
        // Split at shard boundaries: shard indices are non-decreasing over a sorted
        // slice, so each shard's share is one contiguous run.
        let mut slices: Vec<&[(u64, V)]> = vec![&[]; self.shards.len()];
        let mut start = 0usize;
        while start < entries.len() {
            let shard = self.shard_of(entries[start].0);
            let mut end = start + 1;
            while end < entries.len() && self.shard_of(entries[end].0) == shard {
                end += 1;
            }
            slices[shard] = &entries[start..end];
            start = end;
        }
        std::thread::scope(|scope| {
            for (shard, slice) in self.shards.iter_mut().zip(slices) {
                if slice.is_empty() {
                    continue;
                }
                scope.spawn(move || ShardEngine::bulk_load(shard, slice));
            }
        });
        entries.len()
    }

    /// Exports the contents as a sorted, duplicate-free `Vec<(u64, V)>` — the
    /// checkpoint half of the checkpoint/restore pair (restore with
    /// [`ShardedSkipTrie::from_sorted`] / [`ShardedSkipTrie::bulk_load`]).
    ///
    /// Stitches the per-shard range cursors in shard (= key) order, holding **one
    /// epoch pin at a time** — the shard currently being walked — so a snapshot of
    /// a large forest never stalls reclamation in the shards it has finished with.
    /// Inherits the cursor contract: every key present in its shard for the whole
    /// per-shard sub-scan appears exactly once, in increasing order; keys updated
    /// concurrently may or may not appear.
    pub fn snapshot(&self) -> Vec<(u64, V)> {
        self.range(..).collect()
    }

    // ------------------------------------------------------------------
    // Snapshots and diagnostics
    // ------------------------------------------------------------------

    /// A (non-linearizable) snapshot of the contents in key order (shard snapshots
    /// concatenated in shard order).
    pub fn to_vec(&self) -> Vec<(u64, V)> {
        self.shards.iter().flat_map(|s| s.to_vec()).collect()
    }

    /// A (non-linearizable) snapshot of the keys in order.
    pub fn keys(&self) -> Vec<u64> {
        self.shards.iter().flat_map(|s| s.keys()).collect()
    }

    /// Per-shard key counts, in shard order (load-balance diagnostics).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Summed `(nodes_allocated, nodes_recycled, nodes_pooled)` across every shard's
    /// node pool.
    pub fn allocation_stats(&self) -> (usize, usize, usize) {
        self.shards
            .iter()
            .map(|s| s.allocation_stats())
            .fold((0, 0, 0), |acc, s| (acc.0 + s.0, acc.1 + s.1, acc.2 + s.2))
    }

    /// Approximate resident bytes for skiplist nodes across all shards.
    pub fn approx_node_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.approx_node_bytes()).sum()
    }

    /// Audits every shard under its own pin (see
    /// [`SkipTrie::check_traversal_integrity`]); returns total nodes examined.
    pub fn check_traversal_integrity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.check_traversal_integrity())
            .sum()
    }
}

/// A bounded, weakly-consistent range iterator over a [`ShardedSkipTrie`], stitching
/// per-shard cursors in shard order (see [`ShardedSkipTrie::range`]). At most one
/// shard's cursor is live at a time — an epoch pin for the plain engine, an owned
/// tiers reference for the tiered one — so a long stitched scan never stalls more
/// than the shard currently being walked.
pub struct ShardedRangeIter<'a, V, E = SkipTrie<V>>
where
    V: Clone + Send + Sync + 'static,
    E: ShardEngine<V>,
{
    forest: &'a ShardedSkipTrie<V, E>,
    /// Resolved inclusive bounds of the whole scan.
    lo: u64,
    hi: u64,
    /// Next shard index to open a cursor on.
    next_shard: usize,
    /// Last shard index intersecting the range.
    last_shard: usize,
    /// Cursor over the shard currently being walked.
    cur: Option<E::RangeIter<'a>>,
    done: bool,
}

impl<'a, V, E> ShardedRangeIter<'a, V, E>
where
    V: Clone + Send + Sync + 'static,
    E: ShardEngine<V>,
{
    /// Opens the next shard's cursor, or marks the scan done. Returns `false` once
    /// exhausted.
    fn open_next_shard(&mut self) -> bool {
        self.cur = None;
        if self.next_shard > self.last_shard {
            self.done = true;
            return false;
        }
        // Global bounds are passed straight through: a shard only contains keys of
        // its own slice, so no per-shard clamping is needed, and the engine's
        // seeded descent positions the cursor at the first in-range key.
        self.cur = Some(self.forest.shards[self.next_shard].range(self.lo, self.hi));
        self.next_shard += 1;
        true
    }

    /// Advances without cloning the value — the counting fast path.
    pub fn next_key(&mut self) -> Option<u64> {
        while !self.done {
            if let Some(cur) = self.cur.as_mut() {
                if let Some(key) = cur.next_key() {
                    return Some(key);
                }
            }
            if !self.open_next_shard() {
                break;
            }
        }
        None
    }

    /// Visits up to `limit` further entries without cloning values, returning how
    /// many were visited — the bounded-scan primitive the workload drivers share.
    pub fn count_up_to(&mut self, limit: usize) -> usize {
        let mut seen = 0usize;
        while seen < limit && self.next_key().is_some() {
            seen += 1;
        }
        seen
    }
}

impl<'a, V, E> Iterator for ShardedRangeIter<'a, V, E>
where
    V: Clone + Send + Sync + 'static,
    E: ShardEngine<V>,
{
    type Item = (u64, V);

    fn next(&mut self) -> Option<(u64, V)> {
        while !self.done {
            if let Some(cur) = self.cur.as_mut() {
                if let Some(entry) = cur.next() {
                    return Some(entry);
                }
            }
            if !self.open_next_shard() {
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn forest(bits: u32, shards: usize) -> ShardedSkipTrie<u64> {
        ShardedSkipTrie::new(
            ShardedSkipTrieConfig::for_universe_bits(bits)
                .with_shards(shards)
                .with_seed(7),
        )
    }

    #[test]
    fn empty_forest() {
        let f = forest(16, 8);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert_eq!(f.shard_count(), 8);
        assert_eq!(f.predecessor(100), None);
        assert_eq!(f.successor(100), None);
        assert_eq!(f.pop_first(), None);
        assert_eq!(f.pop_last(), None);
        assert_eq!(f.range(..).count(), 0);
        assert_eq!(f.shard_lens(), vec![0; 8]);
    }

    #[test]
    fn routing_by_top_bits() {
        let f = forest(16, 8);
        // 16-bit universe, 8 shards: shard = top 3 bits, slices of 2^13 keys.
        assert_eq!(f.shard_of(0), 0);
        assert_eq!(f.shard_of((1 << 13) - 1), 0);
        assert_eq!(f.shard_of(1 << 13), 1);
        assert_eq!(f.shard_of(f.max_key()), 7);
        f.insert(0, 1);
        f.insert(1 << 13, 2);
        f.insert(f.max_key(), 3);
        assert_eq!(f.shard(0).len(), 1);
        assert_eq!(f.shard(1).len(), 1);
        assert_eq!(f.shard(7).len(), 1);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn forest_matches_btreemap_model_across_shard_counts() {
        for shards in [1usize, 2, 8] {
            let f = forest(16, shards);
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let mut state = 0xfee1_f00d_u64 ^ shards as u64;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..4_000 {
                let key = next() % (1 << 16);
                match next() % 5 {
                    0 | 1 => {
                        let fresh = !model.contains_key(&key);
                        if fresh {
                            model.insert(key, key * 3);
                        }
                        assert_eq!(f.insert(key, key * 3), fresh, "insert {key}");
                    }
                    2 => {
                        assert_eq!(f.remove(key), model.remove(&key), "remove {key}");
                    }
                    3 => {
                        let pred = model.range(..=key).next_back().map(|(k, v)| (*k, *v));
                        assert_eq!(f.predecessor(key), pred, "predecessor {key}");
                        let succ = model.range(key..).next().map(|(k, v)| (*k, *v));
                        assert_eq!(f.successor(key), succ, "successor {key}");
                    }
                    _ => {
                        assert_eq!(f.get(key), model.get(&key).copied(), "get {key}");
                        assert_eq!(f.contains(key), model.contains_key(&key));
                    }
                }
            }
            assert_eq!(f.len(), model.len(), "{shards} shards");
            let snapshot: Vec<(u64, u64)> = model.into_iter().collect();
            assert_eq!(f.to_vec(), snapshot, "{shards} shards");
        }
    }

    #[test]
    fn cross_shard_predecessor_and_successor_route_over_empty_shards() {
        let f = forest(16, 16);
        // Only the first and last shards are populated; the 14 in between are empty.
        f.insert(5, 50);
        f.insert(f.max_key() - 5, 990);
        assert_eq!(f.predecessor(f.max_key() - 6), Some((5, 50)));
        assert_eq!(f.predecessor(f.max_key()), Some((f.max_key() - 5, 990)));
        assert_eq!(f.successor(6), Some((f.max_key() - 5, 990)));
        assert_eq!(f.strict_predecessor(5), None);
        assert_eq!(f.strict_successor(f.max_key() - 5), None);
        assert_eq!(f.strict_successor(5), Some((f.max_key() - 5, 990)));
    }

    #[test]
    fn stitched_range_matches_model() {
        let f = forest(16, 8);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut state = 0xabc_1234_u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..3_000 {
            let key = next() % (1 << 16);
            if next() % 3 == 0 {
                f.remove(key);
                model.remove(&key);
            } else if let std::collections::btree_map::Entry::Vacant(e) = model.entry(key) {
                f.insert(key, key * 2);
                e.insert(key * 2);
            }
            if model.len().is_multiple_of(64) {
                // Windows sized to straddle multiple 2^13-key shard slices.
                let lo = next() % (1 << 16);
                let hi = lo.saturating_add(next() % (3 << 13)).min((1 << 16) - 1);
                let got: Vec<(u64, u64)> = f.range(lo..=hi).collect();
                let want: Vec<(u64, u64)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, want, "range {lo}..={hi}");
                assert_eq!(f.count_range(lo..=hi), want.len());
            }
        }
        let got: Vec<(u64, u64)> = f.range(..).collect();
        let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
        assert_eq!(f.count_range(..), model.len());
        assert_eq!(f.keys(), model.keys().copied().collect::<Vec<_>>());
    }

    #[test]
    fn range_bounds_beyond_universe_are_tolerated() {
        let f = forest(8, 4);
        f.insert(10, 1);
        f.insert(200, 2);
        assert_eq!(f.range(0..=u64::MAX).count(), 2);
        assert_eq!(f.range(1_000..).count(), 0);
        assert_eq!(f.count_range(..), 2);
        assert_eq!(f.count_range(11..200), 0);
        assert_eq!(f.range(200..200).count(), 0);
    }

    #[test]
    fn pops_drain_in_global_order_across_shards() {
        let f = forest(16, 8);
        let keys: Vec<u64> = (0..2_000u64).map(|i| i * 31 % 60_000).collect();
        let mut model = BTreeMap::new();
        for &k in &keys {
            if model.insert(k, k + 1).is_none() {
                assert!(f.insert(k, k + 1));
            }
        }
        let mut from_front = true;
        while !model.is_empty() {
            if from_front {
                let (k, v) = model.iter().next().map(|(k, v)| (*k, *v)).unwrap();
                assert_eq!(f.pop_first(), Some((k, v)));
                model.remove(&k);
            } else {
                let (k, v) = model.iter().next_back().map(|(k, v)| (*k, *v)).unwrap();
                assert_eq!(f.pop_last(), Some((k, v)));
                model.remove(&k);
            }
            from_front = !from_front;
        }
        assert!(f.is_empty());
        assert_eq!(f.pop_first(), None);
    }

    #[test]
    fn batched_ops_match_sequential_application() {
        let batched = forest(16, 8);
        let sequential = forest(16, 8);
        let mut state = 0xbeef_5eed_u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..20 {
            let entries: Vec<(u64, u64)> = (0..96)
                .map(|_| {
                    let k = next() % (1 << 16);
                    (k, k.wrapping_mul(5))
                })
                .collect();
            let seq = entries
                .iter()
                .filter(|&&(k, v)| sequential.insert(k, v))
                .count();
            assert_eq!(batched.insert_batch(&entries), seq, "round {round}");
            let keys: Vec<u64> = (0..64).map(|_| next() % (1 << 16)).collect();
            assert_eq!(
                batched.get_batch(&keys),
                keys.iter().map(|&k| sequential.get(k)).collect::<Vec<_>>(),
                "round {round}"
            );
            let victims: Vec<u64> = (0..48).map(|_| next() % (1 << 16)).collect();
            let seq = victims
                .iter()
                .filter(|&&k| sequential.remove(k).is_some())
                .count();
            assert_eq!(batched.remove_batch(&victims), seq, "round {round}");
        }
        assert_eq!(batched.to_vec(), sequential.to_vec());
    }

    #[test]
    fn bulk_load_matches_sequential_inserts_observationally() {
        let entries: Vec<(u64, u64)> = (0..5_000u64).map(|k| (k * 13, k + 7)).collect();
        let mut bulk = forest(16, 8);
        assert_eq!(bulk.bulk_load(&entries), entries.len());
        let seq = forest(16, 8);
        for &(k, v) in &entries {
            assert!(seq.insert(k, v));
        }
        assert_eq!(bulk.len(), seq.len());
        assert_eq!(bulk.shard_lens(), seq.shard_lens());
        assert_eq!(bulk.to_vec(), seq.to_vec());
        for probe in (0..65_000u64).step_by(53) {
            assert_eq!(bulk.predecessor(probe), seq.predecessor(probe), "{probe}");
            assert_eq!(bulk.successor(probe), seq.successor(probe), "{probe}");
            assert_eq!(bulk.get(probe), seq.get(probe), "{probe}");
        }
        let got: Vec<(u64, u64)> = bulk.range(10_000..=50_000).collect();
        let want: Vec<(u64, u64)> = seq.range(10_000..=50_000).collect();
        assert_eq!(got, want, "stitched ranges agree");
        bulk.check_traversal_integrity();
        // Pops and mutation still run the concurrent protocol.
        assert_eq!(bulk.pop_first(), Some((0, 7)));
        assert_eq!(bulk.pop_last(), Some((4_999 * 13, 5_006)));
        assert!(bulk.insert(1, 1));
        assert_eq!(bulk.len(), seq.len() - 1);
    }

    #[test]
    fn from_sorted_snapshot_round_trip_across_shards() {
        let entries: Vec<(u64, u64)> = (0..3_000u64).map(|k| (k * 21 + 1, k)).collect();
        let original: ShardedSkipTrie<u64> = ShardedSkipTrie::from_sorted(
            ShardedSkipTrieConfig::for_universe_bits(16)
                .with_shards(16)
                .with_seed(5),
            &entries,
        );
        let checkpoint = original.snapshot();
        assert_eq!(checkpoint, entries, "snapshot is sorted and complete");
        // Restore into a *different* forest geometry: the checkpoint format is
        // geometry-independent (just sorted pairs).
        let restored: ShardedSkipTrie<u64> = ShardedSkipTrie::from_sorted(
            ShardedSkipTrieConfig::for_universe_bits(16)
                .with_shards(4)
                .with_seed(9),
            &checkpoint,
        );
        assert_eq!(restored.to_vec(), original.to_vec());
        assert_eq!(restored.len(), original.len());
    }

    #[test]
    fn bulk_load_handles_sparse_and_empty_shards() {
        // All keys in the last shard: 15 workers idle, one builds.
        let base = 15u64 << 12; // shard 15 of 16 (slices of 2^12 keys)
        let hi: Vec<(u64, u64)> = (base..base + 1_000).map(|k| (k, k)).collect();
        let mut f = forest(16, 16);
        assert_eq!(f.bulk_load(&hi), 1_000);
        assert_eq!(f.shard(15).len(), 1_000);
        assert!((0..15).all(|i| f.shard(i).is_empty()));
        assert_eq!(f.pop_first(), Some((base, base)));
        // Empty load.
        let mut f = forest(16, 4);
        assert_eq!(f.bulk_load(&[]), 0);
        assert!(f.is_empty());
        assert!(f.insert(3, 3));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bulk_load_rejects_unsorted_input() {
        let mut f = forest(16, 4);
        let _ = f.bulk_load(&[(5, 5), (4, 4)]);
    }

    #[test]
    #[should_panic(expected = "requires an empty forest")]
    fn bulk_load_rejects_non_empty_forest() {
        let mut f = forest(16, 4);
        f.insert(1, 1);
        let _ = f.bulk_load(&[(2, 2)]);
    }

    #[test]
    fn one_hot_forest_pops_drain_correctly() {
        // Occupancy-hinted pops over a one-hot forest (the probe-count regression
        // itself lives in tests/forest_occupancy.rs, alone in its process so the
        // process-wide metrics counters are not shared with concurrent tests).
        let f = forest(16, 16);
        let base = 8 << 12; // shard 8 of 16 (slices of 2^12 keys)
        for k in 0..200u64 {
            assert!(f.insert(base + k, k));
        }
        for k in 0..100u64 {
            assert_eq!(f.pop_first(), Some((base + k, k)));
        }
        for k in (100..200u64).rev() {
            assert_eq!(f.pop_last(), Some((base + k, k)));
        }
        assert_eq!(f.pop_first(), None);
        assert_eq!(f.pop_last(), None);
        assert!(f.is_empty());
    }

    #[test]
    fn single_shard_forest_degenerates_to_one_trie() {
        let f: ShardedSkipTrie<u64> = ShardedSkipTrie::new(
            ShardedSkipTrieConfig::for_universe_bits(16)
                .with_shards(1)
                .with_seed(3),
        );
        assert_eq!(f.shard_count(), 1);
        for k in 0..500u64 {
            assert!(f.insert(k * 100, k));
        }
        assert_eq!(f.shard(0).len(), 500);
        assert_eq!(f.predecessor(99), Some((0, 0)));
        assert_eq!(f.range(..).count(), 500);
    }

    #[test]
    fn works_on_full_64_bit_universe() {
        let f: ShardedSkipTrie<u64> = ShardedSkipTrie::new(
            ShardedSkipTrieConfig::for_universe_bits(64)
                .with_shards(8)
                .with_seed(3),
        );
        for key in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1] {
            assert!(f.insert(key, key));
        }
        assert_eq!(f.shard_of(u64::MAX), 7);
        assert_eq!(f.shard_of(1 << 63), 4);
        assert_eq!(f.predecessor(u64::MAX), Some((u64::MAX, u64::MAX)));
        assert_eq!(f.predecessor((1 << 63) + 5), Some((1 << 63, 1 << 63)));
        assert_eq!(f.successor(2), Some(((1 << 63) - 1, (1 << 63) - 1)));
        assert_eq!(f.pop_last(), Some((u64::MAX, u64::MAX)));
        assert_eq!(f.pop_first(), Some((0, 0)));
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn shards_use_isolated_epoch_domains_by_default() {
        let f = forest(16, 8);
        assert!(f.config().isolate_epochs);
        for i in 0..8 {
            let domain = f.shard(i).config().domain;
            assert!(domain.is_some_and(|d| d >= SHARD_DOMAIN_BASE), "shard {i}");
        }
        let domains: std::collections::HashSet<_> =
            (0..8).map(|i| f.shard(i).config().domain).collect();
        assert_eq!(domains.len(), 8, "8 shards get 8 distinct domains");
        let shared = ShardedSkipTrie::<u64>::new(
            ShardedSkipTrieConfig::for_universe_bits(16)
                .with_shards(4)
                .with_shared_epoch(),
        );
        assert!((0..4).all(|i| shared.shard(i).config().domain.is_none()));
    }

    #[test]
    #[should_panic(expected = "exceeds the configured universe")]
    fn oversized_key_panics() {
        let f = forest(8, 4);
        f.insert(256, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shard_count_panics() {
        let _ = ShardedSkipTrieConfig::for_universe_bits(16).with_shards(6);
    }
}
