//! Tiered sharded forest: a [`ShardedSkipTrie`] whose per-shard engine is the
//! frozen-tier [`TieredSkipTrie`], plus a single background coordinator that
//! folds shard deltas with **staggered** merges.
//!
//! # Why a separate wrapper
//!
//! `ShardedSkipTrie<V, TieredSkipTrie<V>>` already works as a passive
//! structure: every shard is a frozen Eytzinger (or interpolation) array plus
//! a live skip-trie delta, and the router stitches scans and pops across them.
//! What the plain router cannot do is *react* to delta growth — a shard whose
//! delta crosses its `merge_watermark` latches a `merge_due` flag and unparks
//! a waker, but somebody has to own that waker. [`TieredForest`] is that
//! somebody: one coordinator thread registered as the waker for **every**
//! shard, parking until any shard trips its watermark and then folding the
//! due shards in stripes of at most `merge_stripe` concurrent folds.
//!
//! # Staggering and the exactly-once contract
//!
//! Each shard folds with the same seal→grace→fold→publish protocol as the
//! unsharded [`TieredSkipTrie`], entirely inside its own epoch domain.
//! Readers stitching a `range` across the forest hold at most one shard
//! cursor (and therefore at most one pinned domain) at a time, and the tiered
//! cursor itself resolves its `Arc<Tiers>` snapshot once — so a fold in shard
//! `i` can never block or tear a scan that is currently draining shard `j`.
//! Because every key lives in exactly one shard, the per-shard exactly-once
//! guarantee (a key is observed in the frozen tier xor the delta, never both,
//! never neither) composes directly to the stitched scan. Capping the number
//! of concurrent folds at `merge_stripe` keeps the remaining shards' read
//! paths completely undisturbed: a fold is shard-local, so at most
//! `merge_stripe / shard_count` of the key space is mid-fold at any instant.

use std::ops::Deref;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::forest::{ShardedSkipTrie, ShardedSkipTrieConfig};
use crate::tiered::TieredSkipTrie;

/// How often the adaptive coordinator re-weights per-shard watermarks. A
/// watermark crossing still unparks the coordinator immediately — the timeout
/// only bounds how stale the write-share estimate can get.
const ADAPT_INTERVAL: Duration = Duration::from_millis(1);

/// EWMA smoothing factor per re-weighting pass (weight of the newest sample).
const ADAPT_ALPHA: f64 = 0.5;

/// Write-share tracking behind adaptive per-shard watermarks (see
/// [`ShardedSkipTrieConfig::adaptive_watermark`]): the coordinator samples each
/// shard's cumulative delta-write counter, maintains an EWMA of its share of
/// recent write traffic, and scales the shard's watermark to
/// `base * fair_share / share` — a shard drawing exactly its fair `1/S` of the
/// writes keeps the configured base; a shard drawing everything folds at
/// `base / S`; cold shards clamp at the base (adaptivity only ever *lowers*
/// a watermark below the configured value, never raises it above).
struct AdaptState {
    base: usize,
    last_totals: Vec<u64>,
    share: Vec<f64>,
}

impl AdaptState {
    fn new<V: Clone + Send + Sync + 'static>(
        forest: &ShardedSkipTrie<V, TieredSkipTrie<V>>,
        base: usize,
    ) -> Self {
        let shards = forest.shard_count();
        AdaptState {
            base,
            last_totals: (0..shards)
                .map(|i| forest.shard(i).total_delta_writes())
                .collect(),
            share: vec![0.0; shards],
        }
    }

    /// One re-weighting pass. Installing a lower watermark on a shard whose
    /// delta has already crossed it latches that shard's merge-due flag
    /// immediately (see [`TieredSkipTrie::set_merge_watermark`]), so the
    /// `fold_due` sweep that follows this call picks it up in the same pass.
    fn rebalance<V: Clone + Send + Sync + 'static>(
        &mut self,
        forest: &ShardedSkipTrie<V, TieredSkipTrie<V>>,
    ) {
        let shards = forest.shard_count();
        let mut deltas = vec![0u64; shards];
        let mut window = 0u64;
        for (i, delta) in deltas.iter_mut().enumerate() {
            let total = forest.shard(i).total_delta_writes();
            *delta = total - self.last_totals[i];
            self.last_totals[i] = total;
            window += *delta;
        }
        if window == 0 {
            // No writes since the last pass: keep the current estimate and
            // overrides rather than decaying toward "everything is cold".
            return;
        }
        let fair = 1.0 / shards as f64;
        // Never below 1/4 of the perfectly-hot watermark: the estimate is an
        // EWMA of finite samples, and a floor keeps a noise spike from folding
        // a shard on every handful of writes.
        let floor = ((self.base as f64 * fair / 4.0) as usize).max(1);
        for (i, &delta) in deltas.iter().enumerate() {
            let sample = delta as f64 / window as f64;
            self.share[i] = (1.0 - ADAPT_ALPHA) * self.share[i] + ADAPT_ALPHA * sample;
            let shard = forest.shard(i);
            if self.share[i] <= fair {
                shard.set_merge_watermark(None);
            } else {
                let scaled = (self.base as f64 * fair / self.share[i]) as usize;
                shard.set_merge_watermark(Some(scaled.clamp(floor, self.base)));
            }
        }
    }
}

/// A sharded forest of tiered (frozen + delta) engines with one background
/// merge coordinator.
///
/// Dereferences to [`ShardedSkipTrie<V, TieredSkipTrie<V>>`], so the whole
/// router surface (point ops, predecessor/successor, stitched `range`,
/// two-ended pops, batch groups) is available directly:
///
/// ```
/// use skiptrie::{ShardedSkipTrieConfig, TieredForest};
///
/// let config = ShardedSkipTrieConfig::for_universe_bits(16)
///     .with_shards(4)
///     .with_merge_watermark(64);
/// let forest = TieredForest::new(config);
/// forest.insert(7, "seven");
/// assert_eq!(forest.predecessor(100), Some((7, "seven")));
/// ```
///
/// Writers never fold: crossing the watermark only latches a flag and unparks
/// the coordinator, so the writer-path cost is one relaxed counter bump.
/// Dropping the forest stops and joins the coordinator.
pub struct TieredForest<V: Clone + Send + Sync + 'static> {
    forest: Arc<ShardedSkipTrie<V, TieredSkipTrie<V>>>,
    stop: Arc<AtomicBool>,
    coordinator: Option<JoinHandle<()>>,
}

impl<V: Clone + Send + Sync + 'static> TieredForest<V> {
    /// Builds an empty tiered forest and spawns its merge coordinator.
    ///
    /// `config.merge_watermark` governs when shards request a fold; without
    /// it the coordinator only runs folds requested via [`Self::merge_all`].
    pub fn new(config: ShardedSkipTrieConfig) -> Self {
        Self::with_stripe(config, 1)
    }

    /// Like [`Self::new`] but folds up to `merge_stripe` due shards
    /// concurrently (each in its own scoped thread). `merge_stripe = 1` is
    /// the fully staggered default: at most one shard is ever mid-fold.
    pub fn with_stripe(config: ShardedSkipTrieConfig, merge_stripe: usize) -> Self {
        assert!(merge_stripe > 0, "merge_stripe must be positive");
        Self::from_forest(ShardedSkipTrie::new(config), merge_stripe)
    }

    /// Builds a tiered forest whose frozen tiers are bulk-loaded from a
    /// strictly increasing sorted slice, then spawns the coordinator.
    ///
    /// This is the preferred way to seed a large read-mostly forest: every
    /// key starts in its shard's frozen array and the deltas start empty.
    pub fn from_sorted(config: ShardedSkipTrieConfig, entries: &[(u64, V)]) -> Self {
        Self::from_sorted_with_stripe(config, entries, 1)
    }

    /// [`Self::from_sorted`] with an explicit merge stripe width.
    pub fn from_sorted_with_stripe(
        config: ShardedSkipTrieConfig,
        entries: &[(u64, V)],
        merge_stripe: usize,
    ) -> Self {
        assert!(merge_stripe > 0, "merge_stripe must be positive");
        Self::from_forest(ShardedSkipTrie::from_sorted(config, entries), merge_stripe)
    }

    /// Wraps a fully built forest, spawns the coordinator, and registers it
    /// as every shard's merge waker *before* returning, so a watermark
    /// crossed by the very first writer is never lost.
    fn from_forest(forest: ShardedSkipTrie<V, TieredSkipTrie<V>>, merge_stripe: usize) -> Self {
        let forest = Arc::new(forest);
        let stop = Arc::new(AtomicBool::new(false));
        let worker_forest = Arc::clone(&forest);
        let worker_stop = Arc::clone(&stop);
        let adaptive_base = forest
            .config()
            .adaptive_watermark
            .then_some(forest.config().merge_watermark)
            .flatten();
        let handle = std::thread::Builder::new()
            .name("tiered-forest-coordinator".into())
            .spawn(move || {
                let mut adapt =
                    adaptive_base.map(|base| AdaptState::new(worker_forest.as_ref(), base));
                while !worker_stop.load(Ordering::SeqCst) {
                    match &adapt {
                        // Watermark crossings unpark us either way; the adaptive
                        // mode additionally wakes on a timer so write-share
                        // estimates stay fresh even while no shard is due.
                        None => std::thread::park(),
                        Some(_) => std::thread::park_timeout(ADAPT_INTERVAL),
                    }
                    if worker_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Some(state) = adapt.as_mut() {
                        // Rebalance first: a lowered watermark that the shard's
                        // delta has already crossed latches merge-due, and the
                        // fold sweep right below picks it up in the same pass.
                        state.rebalance(worker_forest.as_ref());
                    }
                    Self::fold_due(&worker_forest, merge_stripe);
                }
            })
            .expect("spawn tiered-forest coordinator");
        // Register the waker on every shard before the constructor returns.
        // `unpark` stores a token even if the coordinator is not parked yet,
        // so there is no window where a watermark crossing can be missed.
        for i in 0..forest.shard_count() {
            forest.shard(i).set_merge_waker(handle.thread().clone());
        }
        Self {
            forest,
            stop,
            coordinator: Some(handle),
        }
    }

    /// Folds every shard whose watermark latch is set, at most `stripe`
    /// shards concurrently.
    fn fold_due(forest: &ShardedSkipTrie<V, TieredSkipTrie<V>>, stripe: usize) {
        let due: Vec<usize> = (0..forest.shard_count())
            .filter(|&i| forest.shard(i).merge_due())
            .collect();
        for chunk in due.chunks(stripe) {
            if chunk.len() == 1 {
                forest.shard(chunk[0]).merge();
            } else {
                std::thread::scope(|scope| {
                    for &i in chunk {
                        let shard = forest.shard(i);
                        scope.spawn(move || {
                            shard.merge();
                        });
                    }
                });
            }
        }
    }

    /// Shared handle to the underlying router, for workloads that need an
    /// owned `Arc` (e.g. spawning reader threads).
    pub fn router(&self) -> Arc<ShardedSkipTrie<V, TieredSkipTrie<V>>> {
        Arc::clone(&self.forest)
    }

    /// Synchronously folds every shard's delta into its frozen tier,
    /// regardless of watermarks. Returns the number of shards that actually
    /// had a delta to fold.
    pub fn merge_all(&self) -> usize {
        (0..self.forest.shard_count())
            .filter(|&i| self.forest.shard(i).merge())
            .count()
    }

    /// Unparks the coordinator so it re-scans the watermark latches now.
    pub fn nudge(&self) {
        if let Some(handle) = &self.coordinator {
            handle.thread().unpark();
        }
    }

    /// Blocks until every shard's delta is empty and no shard is mid-fold,
    /// folding on the caller's thread as needed. After this returns (and
    /// before the next write), every point read is a pure frozen-tier hit.
    pub fn quiesce(&self) {
        for i in 0..self.forest.shard_count() {
            let shard = self.forest.shard(i);
            while shard.delta_len() > 0 || shard.mid_merge() {
                shard.merge();
                std::thread::yield_now();
            }
        }
    }

    /// True when every shard's delta is empty and no fold is in flight —
    /// i.e. the state [`Self::quiesce`] establishes.
    pub fn is_quiesced(&self) -> bool {
        (0..self.forest.shard_count()).all(|i| {
            let shard = self.forest.shard(i);
            shard.delta_len() == 0 && !shard.mid_merge()
        })
    }

    /// Sum of per-shard frozen-tier lengths.
    pub fn frozen_len(&self) -> usize {
        (0..self.forest.shard_count())
            .map(|i| self.forest.shard(i).frozen_len())
            .sum()
    }

    /// Sum of per-shard live-delta lengths (inserts + tombstones).
    pub fn delta_len(&self) -> usize {
        (0..self.forest.shard_count())
            .map(|i| self.forest.shard(i).delta_len())
            .sum()
    }
}

impl<V: Clone + Send + Sync + 'static> Deref for TieredForest<V> {
    type Target = ShardedSkipTrie<V, TieredSkipTrie<V>>;

    fn deref(&self) -> &Self::Target {
        &self.forest
    }
}

impl<V: Clone + Send + Sync + 'static> Drop for TieredForest<V> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.coordinator.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl<V: Clone + Send + Sync + 'static> std::fmt::Debug for TieredForest<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredForest")
            .field("shards", &self.forest.shard_count())
            .field("len", &self.forest.len())
            .field("frozen_len", &self.frozen_len())
            .field("delta_len", &self.delta_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ShardedSkipTrieConfig {
        ShardedSkipTrieConfig::for_universe_bits(16).with_shards(4)
    }

    #[test]
    fn point_ops_round_trip_through_the_tiered_router() {
        let forest: TieredForest<u64> = TieredForest::new(config());
        for k in 0..200u64 {
            assert!(forest.insert(k * 7 % 65_536, k));
        }
        assert_eq!(forest.len(), 200);
        assert_eq!(forest.get(7), Some(1));
        assert_eq!(forest.remove(7), Some(1));
        assert_eq!(forest.get(7), None);
        assert_eq!(forest.len(), 199);
    }

    #[test]
    fn from_sorted_seeds_every_frozen_tier_and_quiesces() {
        let entries: Vec<(u64, u64)> = (0..512u64).map(|k| (k * 13 % 65_536, k)).collect();
        let mut sorted = entries.clone();
        sorted.sort_unstable();
        let forest = TieredForest::from_sorted(config(), &sorted);
        assert!(forest.is_quiesced());
        assert_eq!(forest.frozen_len(), sorted.len());
        assert_eq!(forest.delta_len(), 0);
        for &(k, v) in &sorted {
            assert_eq!(forest.get(k), Some(v));
        }
    }

    #[test]
    fn coordinator_folds_from_the_watermark_with_no_timer() {
        let forest: TieredForest<u64> =
            TieredForest::new(config().with_merge_watermark(16).with_shards(2));
        // Drive one shard past its watermark; the coordinator (no timer
        // configured anywhere) must fold it on its own.
        for k in 0..64u64 {
            forest.insert(k, k);
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while forest.delta_len() > 16 {
            assert!(
                std::time::Instant::now() < deadline,
                "coordinator never folded: delta_len={} frozen_len={}",
                forest.delta_len(),
                forest.frozen_len()
            );
            std::thread::yield_now();
        }
        forest.quiesce();
        assert_eq!(forest.frozen_len(), 64);
        for k in 0..64u64 {
            assert_eq!(forest.get(k), Some(k));
        }
    }

    #[test]
    fn merge_all_and_stitched_range_compose() {
        let forest: TieredForest<u64> = TieredForest::with_stripe(config(), 2);
        for k in 0..300u64 {
            forest.insert(k * 11 % 65_536, k);
        }
        forest.merge_all();
        forest.quiesce();
        let scanned: Vec<u64> = forest.range(..).map(|(k, _)| k).collect();
        assert_eq!(scanned.len(), forest.len());
        assert!(scanned.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn adaptive_watermark_folds_hot_shard_sooner() {
        // Base watermark 100k: with 60k hot-shard writes no shard would EVER
        // fold without adaptation. The adaptive coordinator must observe the
        // skew (hot shard takes ~98% of writes vs a fair share of 25%), lower
        // the hot shard's watermark toward base/S = 25k, and fold it — while
        // the cold shards stay clamped at the base and never fold.
        let config = ShardedSkipTrieConfig::for_universe_bits(16)
            .with_shards(4)
            .with_merge_watermark(100_000)
            .with_adaptive_watermark();
        let forest: TieredForest<u64> = TieredForest::new(config);
        let shard_span = 1u64 << 14; // universe 16 bits, 4 shards
                                     // Cold traffic: 300 writes into each of shards 1..=3.
        for shard in 1..4u64 {
            for k in 0..300u64 {
                forest.insert(shard * shard_span + (k % shard_span), k);
            }
        }
        // Hot traffic: 60k delta writes into shard 0 (inserts + removes both
        // count), spread over time so the 1ms re-weighting timer gets samples.
        for k in 0..30_000u64 {
            let key = k % shard_span;
            forest.insert(key, k);
            forest.remove(key);
        }
        let hot = forest.shard(0);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        while hot.merge_count() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "adaptive coordinator never folded the hot shard: \
                 effective watermark {:?}, delta_writes {}",
                hot.effective_merge_watermark(),
                hot.delta_writes()
            );
            std::thread::yield_now();
        }
        let hot_watermark = hot.effective_merge_watermark().unwrap();
        assert!(
            hot_watermark < 100_000,
            "hot shard's watermark must drop below the base, got {hot_watermark}"
        );
        assert!(
            hot_watermark >= 6_250,
            "the floor (base/(4S)) bounds how far adaptation can drop, got {hot_watermark}"
        );
        for shard in 1..4 {
            let cold = forest.shard(shard);
            assert_eq!(
                cold.merge_count(),
                0,
                "cold shard {shard} (300 writes, watermark >= base/…) must not fold"
            );
            assert_eq!(
                cold.effective_merge_watermark(),
                Some(100_000),
                "cold shard {shard} stays at the configured base"
            );
        }
    }

    #[test]
    fn drop_joins_the_coordinator() {
        let forest: TieredForest<u64> = TieredForest::new(config().with_merge_watermark(4));
        for k in 0..32u64 {
            forest.insert(k, k);
        }
        drop(forest); // must not hang or panic
    }
}
