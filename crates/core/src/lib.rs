//! # SkipTrie — low-depth concurrent search without rebalancing
//!
//! A from-scratch Rust implementation of the **SkipTrie** of Oshman & Shavit
//! (PODC 2013): a lock-free, linearizable ordered map over an integer key universe
//! `[u]` that supports predecessor queries in expected amortized
//! `O(log log u + c)` shared-memory steps (`c` = contention), insertions and
//! deletions in expected amortized `O(log log u + c)`, and `O(m)` space for `m` keys.
//!
//! ## How it works
//!
//! The SkipTrie is a probabilistically balanced y-fast trie:
//!
//! 1. Every key lives in a **truncated lock-free skiplist** of only `log log u`
//!    levels ([`skiptrie_skiplist`]).
//! 2. A key whose geometric tower height reaches the top level (probability
//!    `≈ 1/log u`) becomes a *top-level key*: top-level nodes are additionally linked
//!    backwards (`prev` guides) into a doubly-linked list, and **all of the key's
//!    prefixes are published in a concurrent x-fast trie** — a lock-free hash table
//!    ([`skiptrie_splitorder`]) mapping prefixes to pairs of pointers into the top
//!    level.
//! 3. A predecessor query binary-searches the prefix table (`O(log log u)` hash
//!    probes) to land on a nearby top-level node, walks guide pointers to a node with
//!    key `<= x`, and then descends the truncated skiplist (`O(log log u)` expected
//!    steps) to the exact predecessor.
//!
//! Because which keys enter the trie is decided by coin flips rather than bucket
//! sizes, no rebalancing (bucket splitting/merging) is ever needed — this is the
//! paper's central idea.
//!
//! ## Example
//!
//! ```
//! use skiptrie::{SkipTrie, SkipTrieConfig};
//!
//! // A SkipTrie over 32-bit keys (u = 2^32, so log log u = 5 skiplist levels).
//! let trie: SkipTrie<&'static str> = SkipTrie::new(SkipTrieConfig::for_universe_bits(32));
//!
//! assert!(trie.insert(1_000, "a"));
//! assert!(trie.insert(2_000, "b"));
//! assert!(trie.insert(u32::MAX as u64, "z"));
//!
//! // Predecessor = largest key <= query (the paper's predecessor query).
//! assert_eq!(trie.predecessor(1_999), Some((1_000, "a")));
//! assert_eq!(trie.predecessor(2_000), Some((2_000, "b")));
//! assert_eq!(trie.successor(2_001), Some((u32::MAX as u64, "z")));
//! assert_eq!(trie.get(1_000), Some("a"));
//!
//! assert_eq!(trie.remove(1_000), Some("a"));
//! assert_eq!(trie.predecessor(1_999), None);
//! ```
//!
//! ## Concurrency
//!
//! Every operation is lock-free and linearizable and may be called from any number of
//! threads; see `DESIGN.md` at the repository root for the proof sketch mapping and
//! the memory-reclamation discipline (epoch-based reclamation plus a type-stable node
//! pool).

#![warn(missing_docs)]

pub mod engine;
pub mod forest;
mod prefix;
pub mod tiered;
pub mod tiered_forest;
mod xfast;

pub use crossbeam_epoch::{GarbageStats, Reclaimer};
pub use engine::{EngineRangeIter, ShardEngine, ShardSpec};
pub use forest::{ShardedRangeIter, ShardedSkipTrie, ShardedSkipTrieConfig};
pub use prefix::{key_bit, lcp_len, max_key, Prefix};
pub use skiptrie_atomics::dcss::DcssMode;
pub use skiptrie_skiplist::{
    levels_for_universe_bits, resolve_bounds, Cursor, NodeRef, RangeIter, SkipList, SkipListConfig,
};
pub use skiptrie_splitorder::DirectoryConfig;
pub use tiered::{FrozenSearch, TieredRangeIter, TieredSkipTrie, TieredSkipTrieConfig};
pub use tiered_forest::TieredForest;

use std::ops::RangeBounds;

use skiptrie_splitorder::SplitOrderedMap;
use xfast::{TrieNode, TrieNodePtr};

use crossbeam_epoch::Guard;

/// Configuration of a [`SkipTrie`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipTrieConfig {
    /// Width of the key universe in bits (`1..=64`); keys must be `< 2^universe_bits`.
    pub universe_bits: u32,
    /// How conditional pointer swings are performed (software DCSS descriptors, the
    /// default, or the paper's CAS fallback).
    pub mode: DcssMode,
    /// Seed of the geometric height sampler (fix it for reproducible structure).
    pub seed: u64,
    /// Epoch domain this trie pins and retires in (`None` = the process-wide default
    /// domain). Set by [`ShardedSkipTrie`] so each shard reclaims independently; see
    /// [`SkipTrieConfig::with_domain`].
    pub domain: Option<usize>,
    /// Shape of the prefix table's bucket directory. The default is the unbounded
    /// growable segment tree, which keeps every `LowestAncestor` hash probe `O(1)`
    /// expected at any size; see [`SkipTrieConfig::with_hash_bucket_cap`] for the
    /// legacy bounded mode.
    pub hash_dir: DirectoryConfig,
    /// Reclamation substrate for the trie's epoch domain — EBR (the throughput
    /// default) or the hazard substrate, whose garbage stays bounded under stalled
    /// readers; see [`SkipTrieConfig::with_reclaimer`] and [`Reclaimer`].
    pub reclaimer: Reclaimer,
}

impl Default for SkipTrieConfig {
    fn default() -> Self {
        SkipTrieConfig::for_universe_bits(32)
    }
}

impl SkipTrieConfig {
    /// A SkipTrie over `universe_bits`-bit keys with the paper's default parameters.
    ///
    /// # Panics
    ///
    /// Panics if `universe_bits` is not in `1..=64`.
    pub fn for_universe_bits(universe_bits: u32) -> Self {
        assert!(
            (1..=64).contains(&universe_bits),
            "universe_bits must be between 1 and 64"
        );
        SkipTrieConfig {
            universe_bits,
            mode: DcssMode::Descriptor,
            seed: 0x5eed_5eed_5eed_5eed,
            domain: None,
            hash_dir: DirectoryConfig::default(),
            reclaimer: Reclaimer::Ebr,
        }
    }

    /// Overrides the DCSS mode (experiment E6 ablation).
    pub fn with_mode(mut self, mode: DcssMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the height-sampler seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins this trie in epoch domain `domain` (modulo
    /// [`crossbeam_epoch::NUM_DOMAINS`]) instead of the process-wide default.
    ///
    /// Every operation on the trie — skiplist traversals, x-fast-trie node
    /// retirement, cursors, *and* the split-ordered hash table backing the prefix
    /// map — then pins and retires in that domain, so a long scan of a
    /// domain-isolated trie never stalls reclamation of tries in other domains
    /// (and a reader parked in another domain never stalls this trie's prefix-table
    /// garbage).
    pub fn with_domain(mut self, domain: usize) -> Self {
        self.domain = Some(domain);
        self
    }

    /// Selects the reclamation substrate for this trie's epoch domain.
    ///
    /// [`Reclaimer::Ebr`] (the default) reclaims fastest but lets one stalled
    /// reader pin unbounded garbage; [`Reclaimer::Hazard`] bounds the garbage a
    /// stalled reader can hold at the cost of per-read validation. Every pin and
    /// every retirement of the trie — skiplist nodes, x-fast trie nodes, the
    /// prefix table's chain nodes — routes through the selected substrate, so a
    /// domain must not mix substrates across structures that share it (pair this
    /// knob with [`SkipTrieConfig::with_domain`]).
    pub fn with_reclaimer(mut self, reclaimer: Reclaimer) -> Self {
        self.reclaimer = reclaimer;
        self
    }

    /// Overrides the full shape of the prefix table's bucket directory (fanout for
    /// growth-at-test-scale, optional cap) — see [`DirectoryConfig`].
    pub fn with_hash_directory(mut self, hash_dir: DirectoryConfig) -> Self {
        self.hash_dir = hash_dir;
        self
    }

    /// Caps the prefix table's bucket directory at `cap` buckets — the legacy
    /// *bounded* hash-directory mode.
    ///
    /// Past the cap, prefix probes stay correct but their expected cost grows
    /// linearly with the number of stored prefixes, and each capped insert records
    /// [`skiptrie_metrics::Counter::HashSaturated`]. This knob exists for A/B
    /// experiments against the unbounded default (E12) and for saturation tests; it
    /// is never what a production configuration wants.
    pub fn with_hash_bucket_cap(mut self, cap: usize) -> Self {
        self.hash_dir = self.hash_dir.with_bucket_cap(cap);
        self
    }
}

/// A lock-free, linearizable ordered map over `universe_bits`-bit integer keys with
/// `O(log log u + c)` expected amortized predecessor queries — the paper's SkipTrie.
///
/// See the crate-level documentation for the construction and an example, and
/// [`SkipTrieConfig`] for configuration.
pub struct SkipTrie<V> {
    config: SkipTrieConfig,
    skiplist: SkipList<V>,
    /// The x-fast trie's prefix table (the paper's `prefixes`).
    prefixes: SplitOrderedMap<Prefix, TrieNodePtr>,
}

impl<V> Default for SkipTrie<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        SkipTrie::new(SkipTrieConfig::default())
    }
}

impl<V> SkipTrie<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty SkipTrie.
    ///
    /// # Panics
    ///
    /// Panics if `config.universe_bits` is not in `1..=64`.
    pub fn new(config: SkipTrieConfig) -> Self {
        assert!(
            (1..=64).contains(&config.universe_bits),
            "universe_bits must be between 1 and 64"
        );
        let mut list_config = SkipListConfig::for_universe_bits(config.universe_bits)
            .with_mode(config.mode)
            .with_seed(config.seed)
            .with_reclaimer(config.reclaimer);
        list_config.domain = config.domain;
        let skiplist = SkipList::new(list_config);
        // The prefix table pins and retires in the trie's own domain: routing it
        // through the global domain would let one stalled global-domain reader block
        // every shard's prefix-table reclamation.
        let prefixes = SplitOrderedMap::with_directory_in_domain(
            config.hash_dir,
            config.domain,
            config.reclaimer,
        );
        // The empty prefix ε is permanent (Algorithm 3 line 4 starts from it).
        prefixes.insert(
            Prefix::EMPTY,
            TrieNodePtr::from_box(Box::new(TrieNode::new(0))),
        );
        SkipTrie {
            config,
            skiplist,
            prefixes,
        }
    }

    /// The configuration this SkipTrie was built with.
    pub fn config(&self) -> SkipTrieConfig {
        self.config
    }

    /// Width of the key universe in bits (`log u`).
    pub fn universe_bits(&self) -> u32 {
        self.config.universe_bits
    }

    /// The largest key this SkipTrie accepts.
    pub fn max_key(&self) -> u64 {
        prefix::max_key(self.config.universe_bits)
    }

    pub(crate) fn mode(&self) -> DcssMode {
        self.config.mode
    }

    pub(crate) fn skiplist(&self) -> &SkipList<V> {
        &self.skiplist
    }

    /// Number of keys currently stored (quiescently accurate).
    pub fn len(&self) -> usize {
        self.skiplist.len()
    }

    /// True if no keys are stored (quiescently accurate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current height of the prefix table's bucket-directory segment tree —
    /// diagnostics for growth tests and the E12 experiment. Grows as the number of
    /// published prefixes crosses each `fanout^height` capacity.
    pub fn prefix_directory_height(&self) -> u32 {
        self.prefixes.directory_height()
    }

    /// True once the prefix table has stopped resizing — possible only in the legacy
    /// bounded mode ([`SkipTrieConfig::with_hash_bucket_cap`]); the unbounded
    /// default never saturates.
    pub fn prefix_table_saturated(&self) -> bool {
        self.prefixes.is_saturated()
    }

    fn check_key(&self, key: u64) {
        assert!(
            key <= self.max_key(),
            "key {key} exceeds the configured universe of {} bits",
            self.config.universe_bits
        );
    }

    /// Inserts `key -> value`. Returns `true` if the key was absent and is now
    /// present, `false` if it was already present (the existing value is kept).
    ///
    /// The insertion is linearized when the key's skiplist node becomes reachable; if
    /// the key's tower reaches the top level, its prefixes are then published in the
    /// x-fast trie (Algorithm 6).
    ///
    /// # Examples
    ///
    /// ```
    /// use skiptrie::{SkipTrie, SkipTrieConfig};
    ///
    /// let trie: SkipTrie<&str> = SkipTrie::new(SkipTrieConfig::for_universe_bits(32));
    /// assert!(trie.insert(7, "seven"));
    /// assert!(!trie.insert(7, "again"), "duplicate keys are rejected");
    /// assert_eq!(trie.get(7), Some("seven"), "the first value is kept");
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn insert(&self, key: u64, value: V) -> bool {
        self.check_key(key);
        let guard = self.skiplist.pin();
        let start = self.xfast_pred(key, &guard);
        match self.skiplist.insert_from(key, value, Some(start), &guard) {
            skiptrie_skiplist::InsertOutcome::AlreadyPresent => false,
            skiptrie_skiplist::InsertOutcome::Inserted { top_node } => {
                if let Some(node) = top_node {
                    self.insert_prefixes(key, node, &guard);
                }
                true
            }
        }
    }

    /// Removes `key`, returning its value if this call performed the removal
    /// (Algorithm 7: skiplist deletion, then x-fast-trie cleanup).
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn remove(&self, key: u64) -> Option<V> {
        self.check_key(key);
        let guard = self.skiplist.pin();
        let start = self.xfast_pred(key, &guard);
        self.try_remove_exact(key, Some(start), &guard)
    }

    /// The largest key `<= key` and its value — the paper's predecessor query
    /// (Algorithm 5: `LowestAncestor` binary search, guide walk, skiplist descent),
    /// in expected amortized `O(log log u + c)` steps.
    ///
    /// # Examples
    ///
    /// ```
    /// use skiptrie::{SkipTrie, SkipTrieConfig};
    ///
    /// let trie: SkipTrie<&str> = SkipTrie::new(SkipTrieConfig::for_universe_bits(32));
    /// trie.insert(10, "ten");
    /// trie.insert(20, "twenty");
    /// assert_eq!(trie.predecessor(15), Some((10, "ten")));
    /// assert_eq!(trie.predecessor(20), Some((20, "twenty")), "inclusive");
    /// assert_eq!(trie.predecessor(9), None);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn predecessor(&self, key: u64) -> Option<(u64, V)> {
        self.check_key(key);
        let guard = self.skiplist.pin();
        let start = self.xfast_pred(key, &guard);
        self.skiplist.predecessor_from(key, Some(start), &guard)
    }

    /// The largest key strictly `< key`, if any.
    pub fn strict_predecessor(&self, key: u64) -> Option<(u64, V)> {
        if key == 0 {
            return None;
        }
        self.predecessor(key - 1)
    }

    /// The smallest key `>= key` and its value.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn successor(&self, key: u64) -> Option<(u64, V)> {
        self.check_key(key);
        let guard = self.skiplist.pin();
        let start = self.xfast_pred(key, &guard);
        self.skiplist.successor_from(key, Some(start), &guard)
    }

    /// The smallest key strictly `> key`, if any.
    pub fn strict_successor(&self, key: u64) -> Option<(u64, V)> {
        if key >= self.max_key() {
            return None;
        }
        self.successor(key + 1)
    }

    /// Returns a clone of the value stored under `key`.
    ///
    /// An *exact-match* search: the x-fast hint seeds a descent that exits at the
    /// first skiplist level where the key's tower appears, and nothing is cloned on a
    /// miss (previously this ran the full predecessor query and cloned the
    /// predecessor's value even when `key` was absent).
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn get(&self, key: u64) -> Option<V> {
        self.check_key(key);
        let guard = self.skiplist.pin();
        let start = self.xfast_pred(key, &guard);
        self.skiplist.get_from(key, Some(start), &guard)
    }

    /// True if `key` is present. Clones no value (see [`SkipTrie::get`]).
    ///
    /// # Panics
    ///
    /// Panics if `key` does not fit in the configured universe.
    pub fn contains(&self, key: u64) -> bool {
        self.check_key(key);
        let guard = self.skiplist.pin();
        let start = self.xfast_pred(key, &guard);
        self.skiplist.contains_from(key, Some(start), &guard)
    }

    // ------------------------------------------------------------------
    // Range scans and ordered extraction
    // ------------------------------------------------------------------

    /// An ordered, weakly-consistent iterator over the entries whose keys lie in
    /// `range`: one `O(log log u)` x-fast-seeded descent to the start of the range,
    /// then one level-0 hop per entry — `O(log log u + k)` for `k` yielded keys,
    /// versus `O(k · log log u)` for `k` chained [`SkipTrie::successor`] calls.
    ///
    /// Every key present for the whole scan is yielded exactly once, in increasing
    /// order; keys inserted or removed concurrently may or may not appear (see the
    /// `skiptrie_skiplist` cursor docs for the validation protocol). Bounds beyond
    /// the configured universe are allowed and simply match nothing above
    /// [`SkipTrie::max_key`]. The iterator holds an epoch pin for its lifetime, so
    /// chunk unbounded scans if reclamation latency matters.
    ///
    /// # Examples
    ///
    /// ```
    /// use skiptrie::{SkipTrie, SkipTrieConfig};
    ///
    /// let trie: SkipTrie<u64> = SkipTrie::new(SkipTrieConfig::for_universe_bits(32));
    /// for k in [5u64, 15, 25, 35] {
    ///     trie.insert(k, k * 10);
    /// }
    /// let window: Vec<(u64, u64)> = trie.range(10..=30).collect();
    /// assert_eq!(window, vec![(15, 150), (25, 250)]);
    /// assert_eq!(trie.count_range(..), 4);
    /// ```
    pub fn range(&self, range: impl RangeBounds<u64>) -> RangeIter<'_, V> {
        let bounds = resolve_bounds(&range);
        let mut iter = self.skiplist.range(range);
        if let Some((lo, _)) = bounds {
            // The hint is only that — clamp to the universe so the prefix math stays
            // in bounds even for out-of-universe range starts.
            let hint = self
                .xfast_pred(lo.min(self.max_key()), iter.guard())
                .packed();
            // SAFETY: a packed top-level node of this trie's skiplist, obtained under
            // the iterator's own pin.
            unsafe { iter.seed_from_packed(hint) };
        }
        iter
    }

    /// Number of keys in `range` (weakly consistent, counted without cloning any
    /// value): `O(log log u + k)` for `k` counted keys.
    pub fn count_range(&self, range: impl RangeBounds<u64>) -> usize {
        let mut iter = self.range(range);
        let mut count = 0usize;
        while iter.next_key().is_some() {
            count += 1;
        }
        count
    }

    /// Removes and returns the entry with the smallest key, or `None` if the trie is
    /// empty at the linearization point.
    ///
    /// One level-0 search locates the minimum (the head *is* the minimum's
    /// predecessor on every level, so no x-fast hint can beat it) and the regular
    /// CAS-remove protocol deletes it under the same pin — replacing the
    /// `successor`-then-`remove` loop consumers previously hand-rolled, which re-ran
    /// the x-fast binary search on every attempt and re-searched for the key it had
    /// just found. Lost races retry on the new minimum.
    ///
    /// # Examples
    ///
    /// ```
    /// use skiptrie::{SkipTrie, SkipTrieConfig};
    ///
    /// let queue: SkipTrie<&str> = SkipTrie::new(SkipTrieConfig::for_universe_bits(32));
    /// queue.insert(30, "later");
    /// queue.insert(10, "now");
    /// assert_eq!(queue.pop_first(), Some((10, "now")), "extract-min");
    /// assert_eq!(queue.pop_first(), Some((30, "later")));
    /// assert_eq!(queue.pop_first(), None);
    /// ```
    pub fn pop_first(&self) -> Option<(u64, V)> {
        let guard = self.skiplist.pin();
        loop {
            let key = self.skiplist.first_key(&guard)?;
            if let Some(value) = self.try_remove_exact(key, None, &guard) {
                return Some((key, value));
            }
        }
    }

    /// Removes and returns the entry with the largest key, or `None` if the trie is
    /// empty at the linearization point. The x-fast `LowestAncestor` search for
    /// [`SkipTrie::max_key`] seeds both the locate and the delete of each attempt.
    pub fn pop_last(&self) -> Option<(u64, V)> {
        let guard = self.skiplist.pin();
        loop {
            let start = self.xfast_pred(self.max_key(), &guard);
            let key = self.skiplist.last_key_from(Some(start), &guard)?;
            if let Some(value) = self.try_remove_exact(key, Some(start), &guard) {
                return Some((key, value));
            }
        }
    }

    /// One delete attempt for `key` under an existing pin, including the x-fast-trie
    /// cleanup and top-node retirement duties (same discipline as [`SkipTrie::remove`]).
    /// Returns the value if this call performed the removal.
    fn try_remove_exact<'g>(
        &'g self,
        key: u64,
        start: Option<NodeRef<'g, V>>,
        guard: &'g Guard,
    ) -> Option<V> {
        let outcome = self.skiplist.delete_from(key, start, guard);
        if outcome.root_was_top || outcome.top_to_retire.is_some() {
            // The deleted tower was (or may have been) published in the trie: make
            // sure no prefix pointer still references it.
            self.cleanup_prefixes(key, guard);
        }
        if let Some(top) = outcome.top_to_retire {
            // Only after the trie cleanup can the unlinked top-level node be retired.
            // SAFETY: this call won the node's removal; it is unlinked and no longer
            // referenced by the trie.
            unsafe { self.skiplist.retire_node(top, guard) };
        }
        if outcome.removed {
            outcome.value
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Batched operations (one pin per batch, hints threaded op to op)
    // ------------------------------------------------------------------

    /// Picks the better of the carried hint and a fresh `LowestAncestor` result as
    /// the start of the next search in a key-sorted batch: both are top-level nodes
    /// with keys `<= key`, so the one with the larger key is strictly closer. The
    /// carried hint is typically the previous op's start (or the top node the
    /// previous insert just published, whose key is the previous — smaller — batch
    /// key), so it never outruns `key`.
    fn batch_start<'g>(
        &'g self,
        carried: Option<NodeRef<'g, V>>,
        key: u64,
        guard: &'g Guard,
    ) -> NodeRef<'g, V> {
        let fresh = self.xfast_pred(key, guard);
        match carried {
            Some(h) if !h.is_stopped() && h.key() >= fresh.key() => h,
            _ => fresh,
        }
    }

    /// Inserts every `key -> value` pair of `entries`, returning how many keys were
    /// newly inserted (duplicates of already-present keys — and later duplicates
    /// within the batch — are rejected exactly as by [`SkipTrie::insert`]).
    ///
    /// The batch is sorted by key and executed under **one** epoch pin, threading a
    /// predecessor hint from each insertion to the next (the previous start, or the
    /// top-level node the previous insertion just published), refreshed against a
    /// fresh x-fast `LowestAncestor` probe per key. The outcome equals applying the
    /// entries one at a time in slice order; each insertion still linearizes
    /// individually — the batch as a whole is *not* atomic, and concurrent readers
    /// may observe any prefix of it.
    ///
    /// # Examples
    ///
    /// ```
    /// use skiptrie::{SkipTrie, SkipTrieConfig};
    ///
    /// let trie: SkipTrie<u64> = SkipTrie::new(SkipTrieConfig::for_universe_bits(32));
    /// assert_eq!(trie.insert_batch(&[(3, 30), (1, 10), (3, 99)]), 2);
    /// assert_eq!(trie.get(3), Some(30), "first duplicate wins, as sequentially");
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if any key does not fit in the configured universe (checked up front,
    /// before anything is inserted).
    pub fn insert_batch(&self, entries: &[(u64, V)]) -> usize {
        for &(key, _) in entries {
            self.check_key(key);
        }
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by_key(|&i| entries[i].0);
        self.insert_batch_picked(entries, &order)
    }

    /// [`SkipTrie::insert_batch`] over a pre-sorted index selection: `order` indexes
    /// into `entries`, sorted by key (stably, so earlier duplicates win). Keys must
    /// already be checked. The sharded forest calls this once per shard group.
    pub(crate) fn insert_batch_picked(&self, entries: &[(u64, V)], order: &[usize]) -> usize {
        let guard = self.skiplist.pin();
        let mut hint: Option<NodeRef<'_, V>> = None;
        let mut inserted = 0usize;
        for &i in order {
            let (key, ref value) = entries[i];
            let start = self.batch_start(hint, key, &guard);
            match self
                .skiplist
                .insert_from(key, value.clone(), Some(start), &guard)
            {
                skiptrie_skiplist::InsertOutcome::AlreadyPresent => {
                    hint = Some(start);
                }
                skiptrie_skiplist::InsertOutcome::Inserted { top_node } => {
                    inserted += 1;
                    if let Some(node) = top_node {
                        self.insert_prefixes(key, node, &guard);
                        hint = Some(node);
                    } else {
                        hint = Some(start);
                    }
                }
            }
        }
        inserted
    }

    /// [`SkipTrie::insert_batch_picked`] with per-key outcomes: writes
    /// `out[i] = true` for each picked `i` this call inserted (slots of unpicked
    /// indices are left untouched). The serving pipeline's coalescer uses this so
    /// a batched execution still answers every request individually.
    pub(crate) fn insert_batch_picked_flags(
        &self,
        entries: &[(u64, V)],
        order: &[usize],
        out: &mut [bool],
    ) {
        let guard = self.skiplist.pin();
        let mut hint: Option<NodeRef<'_, V>> = None;
        for &i in order {
            let (key, ref value) = entries[i];
            let start = self.batch_start(hint, key, &guard);
            match self
                .skiplist
                .insert_from(key, value.clone(), Some(start), &guard)
            {
                skiptrie_skiplist::InsertOutcome::AlreadyPresent => {
                    out[i] = false;
                    hint = Some(start);
                }
                skiptrie_skiplist::InsertOutcome::Inserted { top_node } => {
                    out[i] = true;
                    if let Some(node) = top_node {
                        self.insert_prefixes(key, node, &guard);
                        hint = Some(node);
                    } else {
                        hint = Some(start);
                    }
                }
            }
        }
    }

    /// Removes every key of `keys`, returning how many were present (and are now
    /// removed). Sorted and executed under one pin with threaded hints, exactly like
    /// [`SkipTrie::insert_batch`]; equivalent to — but faster than — calling
    /// [`SkipTrie::remove`] per key, with each removal linearizing individually.
    ///
    /// # Panics
    ///
    /// Panics if any key does not fit in the configured universe (checked up front,
    /// before anything is removed).
    pub fn remove_batch(&self, keys: &[u64]) -> usize {
        for &key in keys {
            self.check_key(key);
        }
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_unstable_by_key(|&i| keys[i]);
        self.remove_batch_picked(keys, &order)
    }

    /// [`SkipTrie::remove_batch`] over a pre-sorted index selection (see
    /// [`SkipTrie::insert_batch_picked`]).
    pub(crate) fn remove_batch_picked(&self, keys: &[u64], order: &[usize]) -> usize {
        let guard = self.skiplist.pin();
        let mut hint: Option<NodeRef<'_, V>> = None;
        let mut removed = 0usize;
        for &i in order {
            let key = keys[i];
            let start = self.batch_start(hint, key, &guard);
            if self.try_remove_exact(key, Some(start), &guard).is_some() {
                removed += 1;
            }
            hint = Some(start);
        }
        removed
    }

    /// [`SkipTrie::remove_batch_picked`] with per-key outcomes: writes `out[i]`
    /// to the value this call removed under `keys[i]` (`None` if absent) for
    /// each picked `i`.
    pub(crate) fn remove_batch_picked_values(
        &self,
        keys: &[u64],
        order: &[usize],
        out: &mut [Option<V>],
    ) {
        let guard = self.skiplist.pin();
        let mut hint: Option<NodeRef<'_, V>> = None;
        for &i in order {
            let key = keys[i];
            let start = self.batch_start(hint, key, &guard);
            out[i] = self.try_remove_exact(key, Some(start), &guard);
            hint = Some(start);
        }
    }

    /// Looks up every key of `keys`, returning the values **in input order**
    /// (`None` for absent keys). Internally sorted and executed under one pin with
    /// threaded hints; equivalent to calling [`SkipTrie::get`] per key.
    ///
    /// # Panics
    ///
    /// Panics if any key does not fit in the configured universe.
    pub fn get_batch(&self, keys: &[u64]) -> Vec<Option<V>> {
        for &key in keys {
            self.check_key(key);
        }
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        let mut out: Vec<Option<V>> = Vec::new();
        out.resize_with(keys.len(), || None);
        self.get_batch_picked(keys, &order, &mut out);
        out
    }

    /// [`SkipTrie::get_batch`] over a pre-sorted index selection, writing each result
    /// to `out[i]` for input index `i` (see [`SkipTrie::insert_batch_picked`]).
    pub(crate) fn get_batch_picked(&self, keys: &[u64], order: &[usize], out: &mut [Option<V>]) {
        let guard = self.skiplist.pin();
        let mut hint: Option<NodeRef<'_, V>> = None;
        for &i in order {
            let key = keys[i];
            let start = self.batch_start(hint, key, &guard);
            out[i] = self.skiplist.get_from(key, Some(start), &guard);
            hint = Some(start);
        }
    }

    // ------------------------------------------------------------------
    // Bulk load and snapshots (checkpoint / restore)
    // ------------------------------------------------------------------

    /// Builds a SkipTrie directly from a sorted, strictly increasing `(key, value)`
    /// sequence: [`SkipTrie::new`] followed by [`SkipTrie::bulk_load`].
    ///
    /// # Panics
    ///
    /// As [`SkipTrie::new`] and [`SkipTrie::bulk_load`].
    ///
    /// # Examples
    ///
    /// ```
    /// use skiptrie::{SkipTrie, SkipTrieConfig};
    ///
    /// let trie: SkipTrie<u64> = SkipTrie::from_sorted(
    ///     SkipTrieConfig::for_universe_bits(32),
    ///     (0..10_000u64).map(|k| (k * 5, k)),
    /// );
    /// assert_eq!(trie.len(), 10_000);
    /// assert_eq!(trie.predecessor(11), Some((10, 2)));
    /// ```
    pub fn from_sorted<I>(config: SkipTrieConfig, entries: I) -> Self
    where
        I: IntoIterator<Item = (u64, V)>,
    {
        let mut trie = SkipTrie::new(config);
        trie.bulk_load(entries);
        trie
    }

    /// Single-owner `O(n)` construction from a sorted, strictly increasing
    /// `(key, value)` sequence, returning the number of keys loaded.
    ///
    /// A cold start (checkpoint restore, sorted-file ingest) through `n`
    /// [`SkipTrie::insert`] calls pays, per key, an x-fast binary search, a
    /// multi-level skiplist descent, CAS retry loops, DCSS-guarded tower raises and
    /// prefix swings — machinery that exists solely to survive concurrent threads.
    /// `&mut self` proves there are none: towers are laid out with plain appends
    /// ([`SkipList::bulk_load_sorted`]) and the prefix table is populated bottom-up
    /// with plain stores, one pass over the top-level keys in order. The result is
    /// observationally identical to sequential inserts of the same entries; in
    /// debug builds both integrity audits ([`SkipTrie::check_traversal_integrity`]
    /// and [`SkipTrie::check_trie_integrity`]) verify that claim on every load.
    ///
    /// Typical restore pairing: feed a [`SkipTrie::snapshot`] back in.
    ///
    /// # Panics
    ///
    /// Panics if the trie is not empty, if keys are not strictly increasing, or if a
    /// key does not fit in the configured universe. Keys are validated as the
    /// iterator yields them (the input need not be materialized), so a mid-input
    /// violation panics after earlier entries were already linked — the trie stays
    /// consistent (every linked key is counted and queryable; the x-fast table,
    /// populated last, is a performance hint whose absence queries tolerate), but a
    /// caller that catches the unwind holds a partial load, not an empty trie.
    pub fn bulk_load<I>(&mut self, entries: I) -> usize
    where
        I: IntoIterator<Item = (u64, V)>,
    {
        assert!(self.is_empty(), "bulk_load requires an empty trie");
        let max_key = self.max_key();
        let universe_bits = self.config.universe_bits;
        let checked = entries.into_iter().inspect(move |&(key, _)| {
            assert!(
                key <= max_key,
                "key {key} exceeds the configured universe of {universe_bits} bits"
            );
        });
        let report = self.skiplist.bulk_load_sorted(checked);
        if !report.tops.is_empty() {
            let guard = self.skiplist.pin();
            self.bulk_publish_prefixes(&report.tops, &guard);
        }
        if cfg!(debug_assertions) {
            self.check_traversal_integrity();
            self.check_trie_integrity();
        }
        report.keys
    }

    /// Exports the contents as a sorted, duplicate-free `Vec<(u64, V)>` — the
    /// checkpoint half of the checkpoint/restore pair (restore with
    /// [`SkipTrie::from_sorted`] / [`SkipTrie::bulk_load`]).
    ///
    /// Runs over the range cursor under a single epoch pin, so it inherits the
    /// cursor's weak-consistency contract: every key present for the whole call
    /// appears exactly once, in increasing order; concurrently inserted or removed
    /// keys may or may not appear. (Unlike [`SkipTrie::to_vec`], whose raw level-0
    /// walk is only meaningful quiescently, a snapshot is safe to take under
    /// churn.)
    pub fn snapshot(&self) -> Vec<(u64, V)> {
        self.range(..).collect()
    }

    /// A (non-linearizable) snapshot of the contents in key order.
    pub fn to_vec(&self) -> Vec<(u64, V)> {
        self.skiplist.to_vec()
    }

    /// A (non-linearizable) snapshot of the keys in order.
    pub fn keys(&self) -> Vec<u64> {
        self.skiplist.keys()
    }

    /// Pins the current thread (for repeated low-level calls in benchmarks).
    pub fn pin(&self) -> Guard {
        self.skiplist.pin()
    }

    // ------------------------------------------------------------------
    // Structural statistics (experiments F1 / E5)
    // ------------------------------------------------------------------

    /// Number of (unmarked) data nodes per skiplist level, bottom to top.
    pub fn level_lengths(&self) -> Vec<usize> {
        self.skiplist.level_lengths()
    }

    /// The keys currently published at the skiplist's top level — i.e. the keys whose
    /// prefixes populate the x-fast trie.
    pub fn top_level_keys(&self) -> Vec<u64> {
        self.skiplist.top_level_keys()
    }

    /// `(nodes_allocated, nodes_recycled, nodes_pooled)` of the skiplist node pool.
    pub fn allocation_stats(&self) -> (usize, usize, usize) {
        self.skiplist.allocation_stats()
    }

    /// Approximate resident bytes for skiplist nodes (experiment E5).
    pub fn approx_node_bytes(&self) -> usize {
        self.skiplist.approx_node_bytes()
    }

    /// Audits every skiplist level under one pin, panicking if a reclamation-safety
    /// invariant is violated (poisoned node on a live path, incarnation bump while a
    /// pinned traversal examines a node, stale recycle); returns nodes examined. See
    /// [`SkipList::check_traversal_integrity`](skiptrie_skiplist::SkipList::check_traversal_integrity).
    pub fn check_traversal_integrity(&self) -> usize {
        self.skiplist.check_traversal_integrity()
    }
}

impl<V> Drop for SkipTrie<V> {
    fn drop(&mut self) {
        // Free all trie nodes still referenced by the prefix table; the table itself
        // frees its own hash nodes, and the skiplist frees its towers.
        let mut ptrs: Vec<u64> = Vec::new();
        self.prefixes.for_each(|_, tnp| ptrs.push(tnp.0));
        for raw in ptrs {
            // SAFETY: exclusive access at drop time; each trie node is referenced by
            // exactly one live prefix entry.
            unsafe { drop(Box::from_raw(raw as *mut TrieNode)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn trie(bits: u32) -> SkipTrie<u64> {
        SkipTrie::new(SkipTrieConfig::for_universe_bits(bits).with_seed(7))
    }

    #[test]
    fn empty_trie() {
        let t = trie(16);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.predecessor(100), None);
        assert_eq!(t.successor(100), None);
        assert_eq!(t.get(0), None);
        assert_eq!(t.remove(5), None);
        assert_eq!(t.prefix_count(), 1, "only the permanent ε entry");
    }

    #[test]
    fn basic_roundtrip_and_duplicates() {
        let t = trie(32);
        assert!(t.insert(10, 100));
        assert!(!t.insert(10, 999), "duplicate insert is rejected");
        assert_eq!(t.get(10), Some(100), "original value kept");
        assert!(t.insert(20, 200));
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(10), Some(100));
        assert_eq!(t.remove(10), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn predecessor_successor_match_btreemap_model() {
        let t = trie(16);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut state = 0xfeed_f00d_u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..6_000 {
            let key = next() % (1 << 16);
            match next() % 4 {
                0 | 1 => {
                    let fresh = !model.contains_key(&key);
                    if fresh {
                        model.insert(key, key * 3);
                    }
                    assert_eq!(t.insert(key, key * 3), fresh, "insert {key}");
                }
                2 => {
                    assert_eq!(t.remove(key), model.remove(&key), "remove {key}");
                }
                _ => {
                    let pred = model.range(..=key).next_back().map(|(k, v)| (*k, *v));
                    assert_eq!(t.predecessor(key), pred, "predecessor {key}");
                    let succ = model.range(key..).next().map(|(k, v)| (*k, *v));
                    assert_eq!(t.successor(key), succ, "successor {key}");
                }
            }
        }
        assert_eq!(t.len(), model.len());
        let snapshot: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(t.to_vec(), snapshot);
    }

    #[test]
    fn strict_variants() {
        let t = trie(16);
        t.insert(5, 1);
        t.insert(10, 2);
        assert_eq!(t.strict_predecessor(10), Some((5, 1)));
        assert_eq!(t.strict_predecessor(5), None);
        assert_eq!(t.strict_predecessor(0), None);
        assert_eq!(t.strict_successor(5), Some((10, 2)));
        assert_eq!(t.strict_successor(10), None);
        assert_eq!(t.strict_successor(t.max_key()), None);
    }

    #[test]
    fn universe_boundaries() {
        let t = trie(8);
        assert_eq!(t.max_key(), 255);
        assert!(t.insert(0, 0));
        assert!(t.insert(255, 255));
        assert_eq!(t.predecessor(255), Some((255, 255)));
        assert_eq!(t.predecessor(254), Some((0, 0)));
        assert_eq!(t.successor(1), Some((255, 255)));
        assert_eq!(t.successor(0), Some((0, 0)));
    }

    #[test]
    #[should_panic(expected = "exceeds the configured universe")]
    fn oversized_key_panics() {
        let t = trie(8);
        t.insert(256, 0);
    }

    #[test]
    fn trie_population_tracks_top_level_keys() {
        let t = trie(16);
        for key in 0..5_000u64 {
            t.insert(key, key);
        }
        let top_keys = t.top_level_keys();
        // With 4 levels (16-bit universe), about 1/8 of keys reach the top.
        assert!(
            top_keys.len() > 200 && top_keys.len() < 1_600,
            "unexpected top-level population: {}",
            top_keys.len()
        );
        // Each top-level key contributes at most (universe_bits - 1) new prefixes,
        // plus the permanent ε.
        let prefixes = t.prefix_count();
        assert!(prefixes > top_keys.len(), "prefixes: {prefixes}");
        assert!(
            prefixes <= top_keys.len() * 15 + 1,
            "prefixes: {prefixes} for {} top keys",
            top_keys.len()
        );
        // Removing everything shrinks the trie back to (almost) nothing.
        for key in 0..5_000u64 {
            t.remove(key);
        }
        assert!(t.is_empty());
        assert_eq!(t.top_level_keys(), Vec::<u64>::new());
        assert_eq!(t.prefix_count(), 1, "only ε remains after a full drain");
    }

    #[test]
    fn works_on_full_64_bit_universe() {
        let t: SkipTrie<u64> = SkipTrie::new(SkipTrieConfig::for_universe_bits(64).with_seed(3));
        for key in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1] {
            assert!(t.insert(key, key));
        }
        assert_eq!(t.predecessor(u64::MAX), Some((u64::MAX, u64::MAX)));
        assert_eq!(t.predecessor((1 << 63) + 5), Some((1 << 63, 1 << 63)));
        assert_eq!(t.successor(2), Some(((1 << 63) - 1, (1 << 63) - 1)));
        assert_eq!(t.strict_successor(u64::MAX), None);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn reinsertion_after_removal_of_top_keys() {
        let t = trie(16);
        for key in (0..2_000u64).step_by(2) {
            t.insert(key, key);
        }
        // Remove and re-insert everything twice to exercise trie cleanup + recycling.
        for _ in 0..2 {
            for key in (0..2_000u64).step_by(2) {
                assert_eq!(t.remove(key), Some(key));
            }
            assert!(t.is_empty());
            for key in (0..2_000u64).step_by(2) {
                assert!(t.insert(key, key));
            }
        }
        assert_eq!(t.len(), 1_000);
        for key in (0..2_000u64).step_by(2) {
            assert_eq!(t.predecessor(key + 1), Some((key, key)));
        }
    }

    #[test]
    fn range_matches_btreemap_model() {
        let t = trie(16);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut state = 0xabcd_1234_u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..3_000 {
            let key = next() % (1 << 16);
            if next() % 3 == 0 {
                t.remove(key);
                model.remove(&key);
            } else if let std::collections::btree_map::Entry::Vacant(e) = model.entry(key) {
                t.insert(key, key * 2);
                e.insert(key * 2);
            }
            if model.len().is_multiple_of(64) {
                let lo = next() % (1 << 16);
                let hi = lo.saturating_add(next() % 4_096).min((1 << 16) - 1);
                let got: Vec<(u64, u64)> = t.range(lo..=hi).collect();
                let want: Vec<(u64, u64)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, want, "range {lo}..={hi}");
                assert_eq!(t.count_range(lo..=hi), want.len());
            }
        }
        let got: Vec<(u64, u64)> = t.range(..).collect();
        let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
        assert_eq!(t.count_range(..), model.len());
    }

    #[test]
    fn range_bounds_beyond_universe_are_tolerated() {
        let t = trie(8);
        t.insert(10, 1);
        t.insert(200, 2);
        assert_eq!(t.range(0..=u64::MAX).count(), 2);
        assert_eq!(t.range(1_000..).count(), 0);
        assert_eq!(t.count_range(..), 2);
        assert_eq!(t.count_range(11..200), 0);
    }

    #[test]
    fn pop_first_and_last_drain_in_order() {
        let t = trie(16);
        assert_eq!(t.pop_first(), None);
        assert_eq!(t.pop_last(), None);
        let keys: Vec<u64> = (0..2_000u64).map(|i| i * 13 % 60_000).collect();
        let mut model = BTreeMap::new();
        for &k in &keys {
            if model.insert(k, k + 1).is_none() {
                assert!(t.insert(k, k + 1));
            }
        }
        // Alternate popping from both ends; every pop must match the model exactly.
        let mut from_front = true;
        while !model.is_empty() {
            if from_front {
                let (k, v) = *model.iter().next().map(|(k, v)| (*k, *v)).as_ref().unwrap();
                assert_eq!(t.pop_first(), Some((k, v)));
                model.remove(&k);
            } else {
                let (k, v) = *model
                    .iter()
                    .next_back()
                    .map(|(k, v)| (*k, *v))
                    .as_ref()
                    .unwrap();
                assert_eq!(t.pop_last(), Some((k, v)));
                model.remove(&k);
            }
            from_front = !from_front;
        }
        assert!(t.is_empty());
        assert_eq!(t.pop_first(), None);
        assert_eq!(t.prefix_count(), 1, "only ε remains after a pop drain");
    }

    #[test]
    fn exact_match_get_agrees_with_membership() {
        let t = trie(16);
        for k in (0..4_000u64).step_by(3) {
            t.insert(k, k ^ 0x5555);
        }
        for k in 0..4_000u64 {
            let present = k % 3 == 0;
            assert_eq!(t.contains(k), present, "contains {k}");
            assert_eq!(t.get(k), present.then_some(k ^ 0x5555), "get {k}");
        }
        // Exact match still works after deletions force remnant-handling paths.
        for k in (0..4_000u64).step_by(6) {
            t.remove(k);
        }
        for k in (0..4_000u64).step_by(3) {
            assert_eq!(t.contains(k), k % 6 != 0, "contains after remove {k}");
        }
    }

    #[test]
    fn batched_ops_match_sequential_application() {
        let batched = trie(16);
        let sequential = trie(16);
        let mut state = 0x00ba_7c4e_d00d_u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..30 {
            let entries: Vec<(u64, u64)> = (0..64)
                .map(|_| {
                    let k = next() % (1 << 16);
                    (k, k.wrapping_mul(3))
                })
                .collect();
            let seq_inserted = entries
                .iter()
                .filter(|&&(k, v)| sequential.insert(k, v))
                .count();
            assert_eq!(
                batched.insert_batch(&entries),
                seq_inserted,
                "round {round}: insert counts diverge"
            );
            let keys: Vec<u64> = (0..48).map(|_| next() % (1 << 16)).collect();
            assert_eq!(
                batched.get_batch(&keys),
                keys.iter().map(|&k| sequential.get(k)).collect::<Vec<_>>(),
                "round {round}: get_batch diverges (input order)"
            );
            let victims: Vec<u64> = (0..32).map(|_| next() % (1 << 16)).collect();
            let seq_removed = victims
                .iter()
                .filter(|&&k| sequential.remove(k).is_some())
                .count();
            assert_eq!(
                batched.remove_batch(&victims),
                seq_removed,
                "round {round}: remove counts diverge"
            );
            assert_eq!(batched.len(), sequential.len(), "round {round}");
        }
        assert_eq!(batched.to_vec(), sequential.to_vec());
    }

    #[test]
    fn empty_and_duplicate_batches() {
        let t = trie(16);
        assert_eq!(t.insert_batch(&[]), 0);
        assert_eq!(t.remove_batch(&[]), 0);
        assert_eq!(t.get_batch(&[]), Vec::<Option<u64>>::new());
        // Within-batch duplicates: the first occurrence wins, as sequentially.
        assert_eq!(t.insert_batch(&[(7, 70), (7, 71), (7, 72)]), 1);
        assert_eq!(t.get(7), Some(70));
        assert_eq!(t.remove_batch(&[7, 7, 7]), 1);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds the configured universe")]
    fn batched_oversized_key_panics_before_mutating() {
        let t = trie(8);
        let _ = t.insert_batch(&[(1, 1), (256, 0)]);
    }

    #[test]
    fn bulk_load_matches_sequential_inserts_observationally() {
        let entries: Vec<(u64, u64)> = (0..4_000u64).map(|k| (k * 13, k ^ 0xfff)).collect();
        let mut bulk = trie(16);
        assert_eq!(bulk.bulk_load(entries.iter().copied()), entries.len());
        let seq = trie(16);
        for &(k, v) in &entries {
            assert!(seq.insert(k, v));
        }
        assert_eq!(bulk.len(), seq.len());
        assert_eq!(bulk.to_vec(), seq.to_vec());
        for probe in (0..60_000u64).step_by(61) {
            assert_eq!(bulk.predecessor(probe), seq.predecessor(probe), "{probe}");
            assert_eq!(bulk.successor(probe), seq.successor(probe), "{probe}");
            assert_eq!(bulk.get(probe), seq.get(probe), "{probe}");
            assert_eq!(bulk.contains(probe), seq.contains(probe), "{probe}");
        }
        let window: Vec<(u64, u64)> = bulk.range(1_000..=9_000).collect();
        let seq_window: Vec<(u64, u64)> = seq.range(1_000..=9_000).collect();
        assert_eq!(window, seq_window);
        // Both audits hold on both construction paths.
        assert!(bulk.check_traversal_integrity() >= bulk.len());
        assert!(bulk.check_trie_integrity() > 0);
        assert!(seq.check_trie_integrity() > 0);
        // Mutation after a bulk load uses the regular concurrent protocol.
        assert!(!bulk.insert(0, 1), "0 already present");
        assert_eq!(bulk.pop_first(), Some((0, 0xfff)));
        assert_eq!(bulk.pop_last(), Some((3_999 * 13, 3_999 ^ 0xfff)));
        assert_eq!(bulk.remove(13), Some(1 ^ 0xfff));
        assert_eq!(bulk.len(), seq.len() - 3);
    }

    #[test]
    fn from_sorted_snapshot_round_trip() {
        let entries: Vec<(u64, u64)> = (0..2_500u64).map(|k| (k * 19 + 3, k)).collect();
        let original: SkipTrie<u64> = SkipTrie::from_sorted(
            SkipTrieConfig::for_universe_bits(16).with_seed(7),
            entries.iter().copied(),
        );
        let checkpoint = original.snapshot();
        assert_eq!(checkpoint, entries, "snapshot is sorted and complete");
        let restored: SkipTrie<u64> = SkipTrie::from_sorted(
            SkipTrieConfig::for_universe_bits(16).with_seed(8),
            checkpoint,
        );
        assert_eq!(restored.to_vec(), original.to_vec());
        assert_eq!(restored.len(), original.len());
        assert_eq!(restored.predecessor(40_000), original.predecessor(40_000));
    }

    #[test]
    fn bulk_load_small_and_single_level_universes() {
        // universe_bits = 2 → a single skiplist level, no prefixes ever published.
        let mut t = trie(2);
        assert_eq!(t.bulk_load([(0u64, 10u64), (2, 12), (3, 13)]), 3);
        assert_eq!(t.prefix_count(), 1, "only ε, as with sequential inserts");
        assert_eq!(t.predecessor(1), Some((0, 10)));
        assert_eq!(t.pop_last(), Some((3, 13)));
        // Empty load is a no-op.
        let mut empty = trie(16);
        assert_eq!(empty.bulk_load(std::iter::empty()), 0);
        assert!(empty.is_empty());
        assert!(empty.insert(5, 5));
    }

    #[test]
    #[should_panic(expected = "requires an empty trie")]
    fn bulk_load_rejects_non_empty_trie() {
        let mut t = trie(16);
        t.insert(1, 1);
        let _ = t.bulk_load([(2u64, 2u64)]);
    }

    #[test]
    #[should_panic(expected = "exceeds the configured universe")]
    fn bulk_load_rejects_oversized_keys() {
        let mut t = trie(8);
        let _ = t.bulk_load([(0u64, 0u64), (256, 1)]);
    }

    #[test]
    fn small_universe_single_level() {
        // universe_bits = 2 → 1 skiplist level: every key is a top-level key and the
        // trie holds prefixes of length 0..=1.
        let t = trie(2);
        for key in 0..4u64 {
            assert!(t.insert(key, key + 10));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.predecessor(3), Some((3, 13)));
        assert_eq!(t.remove(3), Some(13));
        assert_eq!(t.predecessor(3), Some((2, 12)));
        assert_eq!(t.remove(0), Some(10));
        assert_eq!(t.successor(0), Some((1, 11)));
    }

    #[test]
    fn bounded_prefix_table_still_saturates_observably() {
        use skiptrie_metrics::Counter;

        // The legacy bounded mode (PR 5 semantics) survives behind the knob: a
        // 4-bucket prefix directory saturates after a handful of published
        // prefixes, and says so.
        let config = SkipTrieConfig::for_universe_bits(16)
            .with_seed(7)
            .with_hash_bucket_cap(4);
        assert_eq!(config.hash_dir.bucket_cap, Some(4));
        let t: SkipTrie<u64> = SkipTrie::new(config);
        assert!(!t.prefix_table_saturated());
        let ((), delta) = skiptrie_metrics::measure(|| {
            for key in 0..2_000u64 {
                t.insert(key * 31 % (1 << 16), key);
            }
        });
        assert!(t.prefix_table_saturated());
        assert!(
            delta.get(Counter::HashSaturated) > 0,
            "capped prefix inserts must record saturation"
        );
        // Correctness survives saturation; only the chains are long.
        assert_eq!(t.get(31), Some(1));
        assert!(t.predecessor(1 << 15).is_some());
    }

    #[test]
    fn default_prefix_directory_grows_instead_of_saturating() {
        // Fanout 16 puts root growth within unit-test reach: enough published
        // prefixes push the directory through several heights, and the default
        // (unbounded) mode never reports saturation.
        let config = SkipTrieConfig::for_universe_bits(32)
            .with_seed(7)
            .with_hash_directory(DirectoryConfig::default().with_segment_bits(4));
        let t: SkipTrie<u64> = SkipTrie::new(config);
        assert_eq!(t.prefix_directory_height(), 1);
        for key in 0..6_000u64 {
            t.insert(key * 2_654_435_761 % (1 << 32), key);
        }
        assert!(
            t.prefix_directory_height() >= 3,
            "prefix growth crossed at least two tree capacities, height {}",
            t.prefix_directory_height()
        );
        assert!(!t.prefix_table_saturated());
        assert!(t.check_trie_integrity() > 0);
    }

    #[test]
    fn forest_passes_the_hash_directory_knob_to_every_shard() {
        let hash_dir = DirectoryConfig::default()
            .with_segment_bits(4)
            .with_bucket_cap(64);
        let config = ShardedSkipTrieConfig::for_universe_bits(32)
            .with_shards(4)
            .with_hash_directory(hash_dir);
        let forest: ShardedSkipTrie<u64> = ShardedSkipTrie::new(config);
        for i in 0..forest.shard_count() {
            assert_eq!(forest.shard(i).config().hash_dir, hash_dir);
        }
        // And the cap-only convenience knob composes with the default fanout.
        let capped = ShardedSkipTrieConfig::for_universe_bits(32).with_hash_bucket_cap(128);
        assert_eq!(capped.hash_dir.bucket_cap, Some(128));
        assert_eq!(
            capped.hash_dir.segment_bits,
            DirectoryConfig::default().segment_bits
        );
    }
}
