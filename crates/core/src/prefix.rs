//! Key prefixes of the x-fast trie.
//!
//! Keys are `universe_bits`-bit integers (stored in `u64`). The x-fast trie's hash
//! table maps every *proper* prefix of every top-level key to a trie node. A prefix is
//! identified by its length (`0..universe_bits`) and its bits, right-aligned. The
//! empty prefix ε (`len == 0`) is the root of the conceptual prefix tree and is always
//! present in the table.

/// A proper prefix of a key in a `universe_bits`-bit universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    /// Number of bits in the prefix (`0` = the empty prefix ε).
    pub len: u8,
    /// The prefix bits, right-aligned (0 when `len == 0`).
    pub bits: u64,
}

impl Prefix {
    /// The empty prefix ε.
    pub const EMPTY: Prefix = Prefix { len: 0, bits: 0 };

    /// The length-`len` prefix of `key` in a `universe_bits`-bit universe.
    ///
    /// # Panics
    ///
    /// Panics if `len >= universe_bits` (only proper prefixes exist in the trie) or if
    /// `universe_bits` is not in `1..=64`.
    pub fn of(key: u64, len: u8, universe_bits: u32) -> Prefix {
        assert!(
            (1..=64).contains(&universe_bits),
            "universe_bits must be 1..=64"
        );
        assert!(
            (len as u32) < universe_bits,
            "prefix length {len} must be shorter than the key width {universe_bits}"
        );
        if len == 0 {
            Prefix::EMPTY
        } else {
            Prefix {
                len,
                bits: key >> (universe_bits - len as u32),
            }
        }
    }

    /// True if `self` is a prefix of `key` (in a `universe_bits`-bit universe).
    pub fn is_prefix_of(&self, key: u64, universe_bits: u32) -> bool {
        Prefix::of(key, self.len, universe_bits) == *self
    }

    /// The child prefix `self · direction`. Only meaningful while it remains proper
    /// (`self.len + 1 < universe_bits`) or for subtree-membership tests.
    pub fn child(&self, direction: u8) -> Prefix {
        debug_assert!(direction <= 1);
        Prefix {
            len: self.len + 1,
            bits: (self.bits << 1) | direction as u64,
        }
    }
}

/// Bit `index` of `key` (0 = most significant of the `universe_bits`-bit
/// representation). This is the paper's "direction of a key under a prefix" when
/// `index` equals the prefix length.
pub fn key_bit(key: u64, index: u8, universe_bits: u32) -> u8 {
    debug_assert!((index as u32) < universe_bits);
    ((key >> (universe_bits - 1 - index as u32)) & 1) as u8
}

/// True if `key` lies in the `direction`-subtree of `prefix`, i.e. `prefix · direction`
/// is a prefix of `key`.
pub fn in_subtree(prefix: Prefix, direction: u8, key: u64, universe_bits: u32) -> bool {
    let child_len = prefix.len + 1;
    if child_len as u32 > universe_bits {
        return false;
    }
    let child_bits = (prefix.bits << 1) | direction as u64;
    if child_len as u32 == universe_bits {
        key == child_bits
    } else {
        (key >> (universe_bits - child_len as u32)) == child_bits
    }
}

/// Length of the longest common prefix of `a` and `b` within `universe_bits` bits.
pub fn lcp_len(a: u64, b: u64, universe_bits: u32) -> u32 {
    if a == b {
        return universe_bits;
    }
    let diff = a ^ b;
    let highest_diff_bit = 63 - diff.leading_zeros();
    // Bits above the highest differing bit agree; translate to prefix length.
    (universe_bits - 1).saturating_sub(highest_diff_bit)
}

/// The largest key representable in a `universe_bits`-bit universe.
pub fn max_key(universe_bits: u32) -> u64 {
    if universe_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << universe_bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_of_extracts_leading_bits() {
        let key = 0b1011_0110u64; // universe_bits = 8
        assert_eq!(Prefix::of(key, 0, 8), Prefix::EMPTY);
        assert_eq!(Prefix::of(key, 1, 8), Prefix { len: 1, bits: 0b1 });
        assert_eq!(
            Prefix::of(key, 4, 8),
            Prefix {
                len: 4,
                bits: 0b1011
            }
        );
        assert_eq!(
            Prefix::of(key, 7, 8),
            Prefix {
                len: 7,
                bits: 0b101_1011
            }
        );
    }

    #[test]
    #[should_panic(expected = "must be shorter")]
    fn full_length_prefix_is_rejected() {
        let _ = Prefix::of(3, 8, 8);
    }

    #[test]
    fn key_bit_is_msb_first() {
        let key = 0b1000_0001u64;
        assert_eq!(key_bit(key, 0, 8), 1);
        assert_eq!(key_bit(key, 1, 8), 0);
        assert_eq!(key_bit(key, 6, 8), 0);
        assert_eq!(key_bit(key, 7, 8), 1);
    }

    #[test]
    fn subtree_membership() {
        let p = Prefix::of(0b1011_0000, 4, 8); // 1011
        assert!(in_subtree(p, 0, 0b1011_0111, 8));
        assert!(!in_subtree(p, 1, 0b1011_0111, 8));
        assert!(in_subtree(p, 1, 0b1011_1000, 8));
        assert!(!in_subtree(p, 0, 0b1111_0000, 8));
        // ε's subtrees partition the universe by the top bit.
        assert!(in_subtree(Prefix::EMPTY, 1, 0b1000_0000, 8));
        assert!(in_subtree(Prefix::EMPTY, 0, 0b0111_1111, 8));
    }

    #[test]
    fn prefix_is_prefix_of_and_child() {
        let key = 0xdead_beefu64;
        for len in 0..32u8 {
            assert!(Prefix::of(key, len, 32).is_prefix_of(key, 32));
        }
        let p = Prefix::of(key, 5, 32);
        let d = key_bit(key, 5, 32);
        assert_eq!(p.child(d), Prefix::of(key, 6, 32));
    }

    #[test]
    fn lcp_len_counts_shared_leading_bits() {
        assert_eq!(lcp_len(0b1010, 0b1010, 8), 8);
        assert_eq!(lcp_len(0b1010_0000, 0b1011_0000, 8), 3);
        assert_eq!(lcp_len(0x8000_0000, 0x0000_0000, 32), 0);
        assert_eq!(lcp_len(0xffff_0000, 0xffff_8000, 32), 16);
    }

    #[test]
    fn max_key_bounds() {
        assert_eq!(max_key(1), 1);
        assert_eq!(max_key(8), 255);
        assert_eq!(max_key(32), u32::MAX as u64);
        assert_eq!(max_key(64), u64::MAX);
    }
}
