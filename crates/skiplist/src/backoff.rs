//! Bounded exponential backoff for CAS/DCSS retry loops.
//!
//! Under write contention a failed CAS means another thread just made progress
//! on the same cache line; retrying immediately only re-contends the line and
//! burns coherence bandwidth for every other writer. Each retry loop in
//! [`crate::ops`] therefore carries one [`Backoff`] instance and calls
//! [`Backoff::spin`] on every failure arm: the first retry is free (the common
//! sporadic-conflict case stays latency-optimal), and each subsequent failure
//! doubles a `spin_loop` window up to a fixed cap — bounded, so a loop can
//! never be parked out of its lock-free progress guarantee, and purely local,
//! so it adds no shared-memory traffic of its own.
//!
//! Every `spin` records [`Counter::CasRetry`]; the calls that actually spun
//! also record [`Counter::CasBackoff`]. The pair makes writer-side contention
//! directly observable: `cas_backoff / cas_retry` is the fraction of retries
//! that hit *sustained* (not sporadic) conflicts.

use skiptrie_metrics::{self as metrics, Counter};

/// Largest backoff exponent: the spin window is capped at `1 << MAX_SHIFT`
/// iterations of [`std::hint::spin_loop`] (~a few hundred ns), far below any
/// scheduling quantum.
const MAX_SHIFT: u32 = 7;

/// Per-retry-loop bounded exponential backoff state.
///
/// Construct one `Backoff` per retry *loop* (not per operation), and call
/// [`Backoff::spin`] in each failure arm before going around again.
pub(crate) struct Backoff {
    shift: u32,
}

impl Backoff {
    /// A fresh backoff with an empty first-retry window.
    pub(crate) fn new() -> Self {
        Backoff { shift: 0 }
    }

    /// Notes one failed attempt: records [`Counter::CasRetry`], spins for the
    /// current window (recording [`Counter::CasBackoff`] if that window is
    /// non-empty), then doubles the window up to the cap.
    pub(crate) fn spin(&mut self) {
        metrics::record(Counter::CasRetry);
        if self.shift > 0 {
            metrics::record(Counter::CasBackoff);
            for _ in 0..(1u32 << self.shift) {
                std::hint::spin_loop();
            }
        }
        if self.shift < MAX_SHIFT {
            self.shift += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_retry_is_backoff_free_and_window_is_capped() {
        let mut b = Backoff::new();
        assert_eq!(b.shift, 0);
        b.spin();
        assert_eq!(b.shift, 1, "first failure arms the window");
        for _ in 0..32 {
            b.spin();
        }
        assert_eq!(b.shift, MAX_SHIFT, "window growth is bounded");
    }

    #[test]
    fn spin_records_retry_and_backoff_counters() {
        let (_, delta) = metrics::measure(|| {
            let mut b = Backoff::new();
            b.spin(); // retry only: window still empty
            b.spin(); // retry + backoff
            b.spin(); // retry + backoff
        });
        // `>=` not `==`: other tests in this binary may record concurrently.
        assert!(delta.get(Counter::CasRetry) >= 3);
        assert!(delta.get(Counter::CasBackoff) >= 2);
        assert!(delta.get(Counter::CasBackoff) <= delta.get(Counter::CasRetry));
    }
}
