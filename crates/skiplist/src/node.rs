//! Skiplist nodes, their packed status words, and the borrowed [`NodeRef`] handle.
//!
//! Following the paper, every level of a tower is a separate node linked downward by
//! `down` pointers (Section 2). A node's mutable links are tagged `u64` words (see
//! [`skiptrie_atomics::tagged`]); its *status* word packs the STOP flag used to halt
//! tower raises (Section 2: "a Boolean flag, stop, which is set to 1 when an operation
//! begins deleting the node's tower") together with an incarnation sequence number
//! that is bumped every time the node's memory is recycled by the
//! [pool](crate::pool::NodePool). The status word is the guard of every DCSS in the
//! SkipTrie.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_epoch::Guard;
use skiptrie_atomics::dcss::read_resolved;
use skiptrie_atomics::tagged;

/// STOP bit of the status word: the deletion of this node (or of the tower whose root
/// it is) has begun.
pub const STATUS_STOP: u64 = 1;
/// Increment that bumps the incarnation sequence number of a status word.
pub const STATUS_SEQ_UNIT: u64 = 2;

/// What role a node plays in its level's list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A regular key-carrying node.
    Data,
    /// The per-level `-∞` sentinel; never marked, never removed.
    Head,
    /// The per-level `+∞` sentinel; never marked, never removed.
    Tail,
}

impl NodeKind {
    fn to_bits(self) -> u64 {
        match self {
            NodeKind::Data => 0,
            NodeKind::Head => 1,
            NodeKind::Tail => 2,
        }
    }

    fn from_bits(bits: u64) -> Self {
        match bits & 0b11 {
            1 => NodeKind::Head,
            2 => NodeKind::Tail,
            _ => NodeKind::Data,
        }
    }
}

/// One skiplist node (one level of one tower).
///
/// Every field that can be read concurrently is an atomic so that reads of recycled
/// nodes (possible only through *stale hints*, which the algorithms treat defensively)
/// are still well-defined. The value is only ever read through verified level-0
/// traversals and only dropped after epoch quiescence, so an [`UnsafeCell`] suffices.
pub(crate) struct Node<V> {
    /// The key (meaningless for sentinels; poisoned to `u64::MAX` while pooled).
    pub(crate) key: AtomicU64,
    /// Packed `kind | level << 2 | orig_height << 12`.
    pub(crate) meta: AtomicU64,
    /// Packed `seq << 1 | STOP`. The DCSS guard word for this node.
    pub(crate) status: AtomicU64,
    /// Tagged successor pointer on this node's level (MARK = logically deleted).
    pub(crate) next: AtomicU64,
    /// Backtracking hint set just before the node is marked (Section 2 `back`).
    pub(crate) back: AtomicU64,
    /// Top-level only: the doubly-linked-list guide pointer (Section 3 `prev`).
    pub(crate) prev: AtomicU64,
    /// Top-level only: 1 once `prev` has been set for the first time (Section 3 `ready`).
    pub(crate) ready: AtomicU64,
    /// Pointer to the same tower's node one level below (null at level 0).
    pub(crate) down: AtomicU64,
    /// Pointer to the tower's level-0 node (self at level 0).
    pub(crate) root: AtomicU64,
    /// Era-clock value when this incarnation was published (hazard substrate
    /// only; see [`crossbeam_epoch::Guard::current_era`]). Stamped on the insert
    /// path before the publishing CAS; a stale (older) stamp from a previous
    /// incarnation is sound — it only makes the hazard scan more conservative.
    pub(crate) birth: AtomicU64,
    /// The value, stored only in the level-0 (root) node.
    pub(crate) value: UnsafeCell<Option<V>>,
}

// SAFETY: all concurrently accessed fields are atomics; `value` is written only before
// publication or after epoch quiescence and read only from nodes reached through
// verified live traversals while pinned.
unsafe impl<V: Send + Sync> Send for Node<V> {}
unsafe impl<V: Send + Sync> Sync for Node<V> {}

pub(crate) fn pack_meta(kind: NodeKind, level: u8, orig_height: u8) -> u64 {
    kind.to_bits() | ((level as u64) << 2) | ((orig_height as u64) << 12)
}

impl<V> Node<V> {
    /// Allocates a brand-new node with sequence number zero and empty fields; the pool
    /// initializes the rest.
    pub(crate) fn empty() -> Box<Self> {
        Box::new(Node {
            key: AtomicU64::new(u64::MAX),
            meta: AtomicU64::new(pack_meta(NodeKind::Data, 0, 0)),
            status: AtomicU64::new(0),
            next: AtomicU64::new(tagged::with_mark(tagged::NULL)),
            back: AtomicU64::new(tagged::NULL),
            prev: AtomicU64::new(tagged::NULL),
            ready: AtomicU64::new(0),
            down: AtomicU64::new(tagged::NULL),
            root: AtomicU64::new(tagged::NULL),
            birth: AtomicU64::new(0),
            value: UnsafeCell::new(None),
        })
    }

    pub(crate) fn kind(&self) -> NodeKind {
        NodeKind::from_bits(self.meta.load(Ordering::Relaxed))
    }

    pub(crate) fn level(&self) -> u8 {
        ((self.meta.load(Ordering::Relaxed) >> 2) & 0xff) as u8
    }

    pub(crate) fn orig_height(&self) -> u8 {
        ((self.meta.load(Ordering::Relaxed) >> 12) & 0xff) as u8
    }

    pub(crate) fn key_value(&self) -> u64 {
        self.key.load(Ordering::Relaxed)
    }

    pub(crate) fn is_data(&self) -> bool {
        self.kind() == NodeKind::Data
    }

    pub(crate) fn is_head(&self) -> bool {
        self.kind() == NodeKind::Head
    }

    pub(crate) fn is_tail(&self) -> bool {
        self.kind() == NodeKind::Tail
    }

    /// Current packed status (seq + STOP).
    pub(crate) fn status_word(&self) -> u64 {
        self.status.load(Ordering::SeqCst)
    }

    pub(crate) fn is_stopped(&self) -> bool {
        self.status_word() & STATUS_STOP != 0
    }

    /// Sets the STOP flag, returning the previous status word.
    pub(crate) fn set_stop(&self) -> u64 {
        self.status.fetch_or(STATUS_STOP, Ordering::SeqCst)
    }

    /// True if this node is logically deleted (its `next` word carries the mark).
    pub(crate) fn is_marked(&self, guard: &Guard) -> bool {
        tagged::is_marked(read_resolved(&self.next, guard))
    }

    /// "Is `self.key < x`", treating head as `-∞` and tail as `+∞`.
    pub(crate) fn key_lt(&self, x: u64) -> bool {
        match self.kind() {
            NodeKind::Head => true,
            NodeKind::Tail => false,
            NodeKind::Data => self.key_value() < x,
        }
    }

    /// "Is `self.key >= x`", treating head as `-∞` and tail as `+∞`.
    pub(crate) fn key_ge(&self, x: u64) -> bool {
        !self.key_lt(x)
    }
}

/// A borrowed, copyable handle to a skiplist node, valid for the lifetime `'g` of the
/// epoch pin (or of the owning structure for sentinels).
///
/// This is the currency of the low-level API consumed by the `skiptrie` crate: the
/// x-fast trie stores packed node words in its prefix table and turns them back into
/// `NodeRef`s while pinned.
pub struct NodeRef<'g, V> {
    pub(crate) node: &'g Node<V>,
}

impl<V> Clone for NodeRef<'_, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for NodeRef<'_, V> {}

impl<V> std::fmt::Debug for NodeRef<'_, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRef")
            .field("key", &self.node.key_value())
            .field("kind", &self.node.kind())
            .field("level", &self.node.level())
            .finish()
    }
}

impl<V> PartialEq for NodeRef<'_, V> {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.node, other.node)
    }
}
impl<V> Eq for NodeRef<'_, V> {}

impl<'g, V> NodeRef<'g, V> {
    pub(crate) fn new(node: &'g Node<V>) -> Self {
        NodeRef { node }
    }

    /// Reconstructs a reference from a packed word previously obtained from
    /// [`NodeRef::packed`] (or read from a structure link).
    ///
    /// # Safety
    ///
    /// The word must contain a pointer to a node belonging to a structure whose node
    /// pool outlives `'g`, and the caller must be pinned for `'g`.
    pub unsafe fn from_packed(word: u64, _witness: &'g Guard) -> Option<Self> {
        if tagged::is_null(word) {
            None
        } else {
            Some(NodeRef {
                node: &*tagged::unpack::<Node<V>>(word),
            })
        }
    }

    /// The pointer word (no tag bits) identifying this node; what gets stored in the
    /// x-fast trie and in `prev`/`back` guides.
    pub fn packed(&self) -> u64 {
        tagged::pack(self.node as *const Node<V>)
    }

    /// The node's key. Meaningful only for data nodes.
    pub fn key(&self) -> u64 {
        self.node.key_value()
    }

    /// The level of this node within its tower.
    pub fn level(&self) -> u8 {
        self.node.level()
    }

    /// The height this node's tower was assigned at insertion (capped at the top
    /// level).
    pub fn orig_height(&self) -> u8 {
        self.node.orig_height()
    }

    /// True for regular key-carrying nodes.
    pub fn is_data(&self) -> bool {
        self.node.is_data()
    }

    /// True for the `-∞` sentinel.
    pub fn is_head(&self) -> bool {
        self.node.is_head()
    }

    /// True for the `+∞` sentinel.
    pub fn is_tail(&self) -> bool {
        self.node.is_tail()
    }

    /// Snapshot of the packed status word (incarnation sequence + STOP flag). Use as
    /// the expected-guard value of a DCSS conditioned on this node staying alive.
    pub fn status(&self) -> u64 {
        self.node.status_word()
    }

    /// True if deletion of this node (or its tower) has begun.
    pub fn is_stopped(&self) -> bool {
        self.node.is_stopped()
    }

    /// True if the node is logically deleted on its level.
    pub fn is_marked(&self, guard: &Guard) -> bool {
        self.node.is_marked(guard)
    }

    /// Raw pointer to the status word, for use as a DCSS guard.
    pub fn status_word_ptr(&self) -> *const AtomicU64 {
        &self.node.status as *const AtomicU64
    }

    /// True once the node's `prev` pointer has been set at least once (top level
    /// only) — the paper's `ready` flag.
    pub fn is_ready(&self) -> bool {
        self.node.ready.load(Ordering::SeqCst) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrip() {
        for kind in [NodeKind::Data, NodeKind::Head, NodeKind::Tail] {
            for level in [0u8, 1, 5, 31] {
                for h in [0u8, 3, 31] {
                    let m = pack_meta(kind, level, h);
                    assert_eq!(NodeKind::from_bits(m), kind);
                    assert_eq!(((m >> 2) & 0xff) as u8, level);
                    assert_eq!(((m >> 12) & 0xff) as u8, h);
                }
            }
        }
    }

    #[test]
    fn key_comparisons_respect_sentinels() {
        let node = Node::<u64>::empty();
        node.meta
            .store(pack_meta(NodeKind::Head, 0, 0), Ordering::Relaxed);
        assert!(node.key_lt(0));
        assert!(!node.key_ge(0));
        node.meta
            .store(pack_meta(NodeKind::Tail, 0, 0), Ordering::Relaxed);
        assert!(!node.key_lt(u64::MAX));
        assert!(node.key_ge(0));
        node.meta
            .store(pack_meta(NodeKind::Data, 0, 0), Ordering::Relaxed);
        node.key.store(10, Ordering::Relaxed);
        assert!(node.key_lt(11));
        assert!(node.key_ge(10));
        assert!(!node.key_lt(10));
    }

    #[test]
    fn status_stop_and_seq() {
        let node = Node::<u64>::empty();
        assert!(!node.is_stopped());
        let before = node.status_word();
        node.set_stop();
        assert!(node.is_stopped());
        assert_eq!(node.status_word(), before | STATUS_STOP);
    }

    #[test]
    fn fresh_nodes_are_poisoned_as_pooled() {
        let node = Node::<u64>::empty();
        // A node that has not been initialized yet looks marked with a poisoned key,
        // which is exactly what defensive traversals expect of pooled memory.
        assert!(tagged::is_marked(node.next.load(Ordering::SeqCst)));
        assert_eq!(node.key_value(), u64::MAX);
    }
}
