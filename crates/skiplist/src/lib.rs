//! A truncated, lock-free concurrent skiplist with back pointers and a doubly-linked
//! top level — the substrate beneath the SkipTrie (Oshman & Shavit, PODC 2013,
//! Sections 2–3).
//!
//! # What is special about this skiplist
//!
//! * **Truncated height.** The list has only `levels ≈ log log u` levels. Keys whose
//!   geometric height reaches the top level are *top-level keys*; in the SkipTrie they
//!   are additionally linked backwards (`prev` guides) and published in the x-fast
//!   trie. Expected spacing between top-level keys is `2^(levels-1) ≈ log u`, which is
//!   how the SkipTrie replaces the y-fast trie's bucket rebalancing.
//! * **Logical deletion with back pointers.** Deletion marks a node's `next` word
//!   (Harris scheme), records a `back` hint for traversals that get stranded on the
//!   node, and uses a per-tower `stop` flag so that racing inserts stop raising the
//!   tower (Section 2).
//! * **Doubly-linked top level.** Top-level nodes carry `prev` guide pointers
//!   maintained by `fixPrev` (Section 3, Algorithm 1); linearizability relies only on
//!   the forward direction, and transient gaps are tolerated exactly as the paper
//!   describes (Figure 2).
//! * **DCSS-guarded pointer swings.** Tower raises and `prev` updates are conditioned
//!   on the target tower's packed status word (incarnation + STOP) using the software
//!   DCSS from [`skiptrie_atomics`], or plain CAS in the fallback mode.
//! * **Type-stable node pool.** Nodes are recycled, never freed, while the structure
//!   is alive, which keeps every racy dereference well-defined (see
//!   [`skiptrie_atomics::dcss`] for why this matters).
//!
//! The crate doubles as the paper's *baseline*: configured with more levels (e.g. 24)
//! and used standalone it is a conventional `Θ(log m)`-depth lock-free skiplist, which
//! is exactly the class of structure the paper's introduction compares against.
//!
//! # Examples
//!
//! ```
//! use skiptrie_skiplist::{SkipList, SkipListConfig};
//!
//! // A truncated skiplist sized for a 32-bit universe: ceil(log2 32) = 5 levels.
//! let list: SkipList<&'static str> = SkipList::new(SkipListConfig::for_universe_bits(32));
//! assert!(list.insert(20, "twenty"));
//! assert!(list.insert(40, "forty"));
//! assert!(!list.insert(20, "dup"));
//! assert_eq!(list.get(20), Some("twenty"));
//! assert_eq!(list.predecessor(39), Some((20, "twenty")));
//! assert_eq!(list.predecessor(40), Some((40, "forty")));
//! assert_eq!(list.successor(21), Some((40, "forty")));
//! assert_eq!(list.remove(20), Some("twenty"));
//! assert_eq!(list.predecessor(39), None);
//! ```

#![warn(missing_docs)]

mod backoff;
pub mod bulk;
pub mod height;
pub mod iter;
mod node;
mod ops;
mod pool;
mod search;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Guard, Reclaimer};
use skiptrie_atomics::dcss::DcssMode;
use skiptrie_atomics::tagged;

pub use bulk::BulkLoadReport;
pub use iter::{resolve_bounds, Cursor, RangeIter};
pub use node::NodeRef;
pub use ops::{DeleteOutcome, InsertOutcome};

use node::{pack_meta, Node, NodeKind, STATUS_STOP};
use pool::NodePool;

/// Configuration of a [`SkipList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipListConfig {
    /// Number of levels (`>= 1`). The SkipTrie uses `ceil(log2(universe_bits))`; the
    /// full-height baseline uses a large constant (e.g. 24).
    pub levels: u8,
    /// How guarded pointer swings are performed (DCSS descriptors or plain CAS).
    pub mode: DcssMode,
    /// Seed for the per-thread geometric height sampler (deterministic workloads use
    /// a fixed seed).
    pub seed: u64,
    /// Epoch domain this list pins and retires in (`None` = the process-wide default
    /// domain). The sharded SkipTrie forest gives every shard its own domain so a
    /// long scan of one shard stalls only that shard's reclamation; see
    /// [`crossbeam_epoch::pin_domain`]. **All** access to a list goes through
    /// [`SkipList::pin`], so the domain is applied uniformly.
    pub domain: Option<usize>,
    /// Which reclamation substrate this list's domain uses (see
    /// [`crossbeam_epoch::Reclaimer`]): epoch-based (the throughput default) or
    /// hazard-era (bounded garbage under stalled readers). Applied uniformly for
    /// the same reason as `domain` — every pin and retirement routes through
    /// [`SkipList::pin`]'s guard.
    pub reclaimer: Reclaimer,
}

impl Default for SkipListConfig {
    fn default() -> Self {
        SkipListConfig::for_universe_bits(32)
    }
}

impl SkipListConfig {
    /// The paper's sizing rule: a truncated skiplist of `log log u` levels for a key
    /// universe of `universe_bits = log u` bits.
    pub fn for_universe_bits(universe_bits: u32) -> Self {
        SkipListConfig {
            levels: levels_for_universe_bits(universe_bits),
            mode: DcssMode::Descriptor,
            seed: 0x5eed_5eed_5eed_5eed,
            domain: None,
            reclaimer: Reclaimer::Ebr,
        }
    }

    /// A conventional full-height skiplist configuration (depth `Θ(log m)`), used as
    /// the baseline structure in the experiments.
    pub fn full_height() -> Self {
        SkipListConfig {
            levels: 24,
            mode: DcssMode::Descriptor,
            seed: 0x5eed_5eed_5eed_5eed,
            domain: None,
            reclaimer: Reclaimer::Ebr,
        }
    }

    /// Overrides the DCSS mode.
    pub fn with_mode(mut self, mode: DcssMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the height-sampler seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins this list in epoch domain `domain` instead of the process-wide default
    /// (see [`SkipListConfig::domain`]).
    pub fn with_domain(mut self, domain: usize) -> Self {
        self.domain = Some(domain);
        self
    }

    /// Selects the reclamation substrate for this list's domain (see
    /// [`SkipListConfig::reclaimer`]).
    pub fn with_reclaimer(mut self, reclaimer: Reclaimer) -> Self {
        self.reclaimer = reclaimer;
        self
    }
}

/// `max(1, ceil(log2(universe_bits)))` — the number of levels (`log log u`) the paper
/// prescribes for a `universe_bits`-bit key universe.
pub fn levels_for_universe_bits(universe_bits: u32) -> u8 {
    let bits = universe_bits.clamp(1, 64);
    let mut levels = 0u8;
    while (1u32 << levels) < bits {
        levels += 1;
    }
    levels.max(1)
}

/// A lock-free, linearizable ordered map from `u64` keys to values, with predecessor
/// and successor queries, implemented as a truncated skiplist (see the crate docs).
///
/// All operations are safe to call from any number of threads concurrently; the value
/// type must be `Clone` because reads return owned copies.
pub struct SkipList<V> {
    config: SkipListConfig,
    pool: Arc<NodePool<V>>,
    /// Head (`-∞`) sentinel per level, index = level.
    heads: Box<[*const Node<V>]>,
    /// Tail (`+∞`) sentinel per level, index = level.
    tails: Box<[*const Node<V>]>,
    len: AtomicUsize,
}

// SAFETY: shared mutation is confined to atomics inside nodes; sentinels are immutable
// pointers to pool-owned allocations.
unsafe impl<V: Send + Sync> Send for SkipList<V> {}
unsafe impl<V: Send + Sync> Sync for SkipList<V> {}

impl<V> Default for SkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        SkipList::new(SkipListConfig::default())
    }
}

impl<V> SkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty skiplist with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.levels` is 0 or greater than 32.
    pub fn new(config: SkipListConfig) -> Self {
        assert!(config.levels >= 1, "a skiplist needs at least one level");
        assert!(
            config.levels <= 32,
            "more than 32 levels is never useful for u64 keys"
        );
        let pool = Arc::new(NodePool::new());
        let levels = config.levels as usize;
        let mut heads: Vec<*const Node<V>> = Vec::with_capacity(levels);
        let mut tails: Vec<*const Node<V>> = Vec::with_capacity(levels);
        for level in 0..levels {
            let head = pool.acquire();
            let tail = pool.acquire();
            unsafe {
                init_sentinel(&*head, NodeKind::Head, level as u8, config.levels - 1);
                init_sentinel(&*tail, NodeKind::Tail, level as u8, config.levels - 1);
                (*head)
                    .next
                    .store(tagged::pack(tail as *const Node<V>), Ordering::SeqCst);
                (*tail).next.store(tagged::NULL, Ordering::SeqCst);
                if level > 0 {
                    (*head)
                        .down
                        .store(tagged::pack(heads[level - 1]), Ordering::SeqCst);
                    (*tail)
                        .down
                        .store(tagged::pack(tails[level - 1]), Ordering::SeqCst);
                }
            }
            heads.push(head as *const Node<V>);
            tails.push(tail as *const Node<V>);
        }
        SkipList {
            config,
            pool,
            heads: heads.into_boxed_slice(),
            tails: tails.into_boxed_slice(),
            len: AtomicUsize::new(0),
        }
    }

    /// The configuration this list was built with.
    pub fn config(&self) -> SkipListConfig {
        self.config
    }

    /// Number of levels.
    pub fn levels(&self) -> u8 {
        self.config.levels
    }

    /// The index of the top level (`levels - 1`).
    pub fn top_level(&self) -> u8 {
        self.config.levels - 1
    }

    /// Number of keys currently stored (quiescently accurate).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// True if no keys are stored (quiescently accurate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn head(&self, level: u8) -> &Node<V> {
        // SAFETY: sentinels live as long as the structure.
        unsafe { &*self.heads[level as usize] }
    }

    pub(crate) fn tail(&self, level: u8) -> &Node<V> {
        // SAFETY: sentinels live as long as the structure.
        unsafe { &*self.tails[level as usize] }
    }

    pub(crate) fn pool(&self) -> &Arc<NodePool<V>> {
        &self.pool
    }

    pub(crate) fn len_counter(&self) -> &AtomicUsize {
        &self.len
    }

    /// Pins the current thread in this list's epoch domain, for use with the `*_from`
    /// low-level operations. Every internal operation pins through here, so a list
    /// configured with [`SkipListConfig::with_domain`] is reclaimed entirely within
    /// that domain.
    pub fn pin(&self) -> Guard {
        epoch::pin_domain_with(self.config.domain.unwrap_or(0), self.config.reclaimer)
    }

    /// The `-∞` sentinel of the top level — the default traversal start when no hint
    /// (e.g. from the x-fast trie) is available.
    pub fn head_top(&self) -> NodeRef<'_, V> {
        NodeRef::new(self.head(self.top_level()))
    }

    // ------------------------------------------------------------------
    // High-level (self-pinning) API
    // ------------------------------------------------------------------

    /// Inserts `key -> value`. Returns `true` if the key was absent and is now
    /// present, `false` if it was already present (the existing value is kept).
    pub fn insert(&self, key: u64, value: V) -> bool {
        let guard = self.pin();
        matches!(
            self.insert_from(key, value, None, &guard),
            InsertOutcome::Inserted { .. }
        )
    }

    /// Removes `key`, returning its value if this call performed the removal.
    pub fn remove(&self, key: u64) -> Option<V> {
        let guard = self.pin();
        self.try_remove_exact(key, &guard)
    }

    /// Returns a clone of the value stored under `key`.
    ///
    /// Unlike [`SkipList::predecessor`] this is an *exact-match* search: it exits at
    /// the first level where the key's tower appears and clones nothing on a miss
    /// (the predecessor-based formulation ran the full descent and cloned the
    /// predecessor's value even for absent keys).
    pub fn get(&self, key: u64) -> Option<V> {
        let guard = self.pin();
        self.get_from(key, None, &guard)
    }

    /// True if `key` is present. Clones no value (see [`SkipList::get`]).
    pub fn contains(&self, key: u64) -> bool {
        let guard = self.pin();
        self.contains_from(key, None, &guard)
    }

    /// Removes and returns the entry with the smallest key, or `None` if the list is
    /// empty at the linearization point.
    ///
    /// One level-0 search locates the minimum (the head is the minimum's predecessor
    /// on every level, so the delete's internal searches are `O(1 + marked)` per
    /// level) and the regular CAS-remove protocol deletes it; if another thread wins
    /// the removal the whole step retries on the new minimum.
    pub fn pop_first(&self) -> Option<(u64, V)> {
        let guard = self.pin();
        loop {
            let key = self.first_key(&guard)?;
            if let Some(value) = self.try_remove_exact(key, &guard) {
                return Some((key, value));
            }
        }
    }

    /// Removes and returns the entry with the largest key, or `None` if the list is
    /// empty at the linearization point. Counterpart of [`SkipList::pop_first`].
    pub fn pop_last(&self) -> Option<(u64, V)> {
        let guard = self.pin();
        loop {
            let key = self.last_key_from(None, &guard)?;
            if let Some(value) = self.try_remove_exact(key, &guard) {
                return Some((key, value));
            }
        }
    }

    /// One `delete_from` attempt for `key` under an existing pin, retiring the
    /// unlinked top-level node immediately (standalone use: no trie references it).
    /// Returns the value if this call performed the removal.
    fn try_remove_exact(&self, key: u64, guard: &Guard) -> Option<V> {
        let outcome = self.delete_from(key, None, guard);
        if let Some(top) = outcome.top_to_retire {
            // SAFETY: we won the removal of this node; it is unlinked.
            unsafe { self.retire_node(top, guard) };
        }
        if outcome.removed {
            outcome.value
        } else {
            None
        }
    }

    /// The largest key `<= key` and its value (the paper's predecessor query).
    pub fn predecessor(&self, key: u64) -> Option<(u64, V)> {
        let guard = self.pin();
        self.predecessor_from(key, None, &guard)
    }

    /// The smallest key `>= key` and its value.
    pub fn successor(&self, key: u64) -> Option<(u64, V)> {
        let guard = self.pin();
        self.successor_from(key, None, &guard)
    }

    /// A (non-linearizable) snapshot of the current contents in key order.
    pub fn to_vec(&self) -> Vec<(u64, V)> {
        let guard = self.pin();
        let mut out = Vec::new();
        self.walk_level(0, &guard, |node| {
            // SAFETY: level-0 data nodes carry a value set before publication; the
            // node was reached through live level-0 links while pinned.
            if let Some(v) = unsafe { (*node.value.get()).clone() } {
                out.push((node.key_value(), v));
            }
        });
        out
    }

    /// A (non-linearizable) snapshot of the keys in order.
    pub fn keys(&self) -> Vec<u64> {
        self.to_vec().into_iter().map(|(k, _)| k).collect()
    }

    /// Walks unmarked data nodes of a level in order, applying `f`.
    fn walk_level(&self, level: u8, guard: &Guard, mut f: impl FnMut(&Node<V>)) {
        let mut curr = self.head(level);
        loop {
            let next = skiptrie_atomics::dcss::read_resolved(&curr.next, guard);
            if tagged::is_null(next) {
                break;
            }
            // SAFETY: reached through live links while pinned.
            let node: &Node<V> = unsafe { &*tagged::unpack(tagged::untagged(next)) };
            if node.is_tail() {
                break;
            }
            if node.is_data() && !node.is_marked(guard) {
                f(node);
            }
            curr = node;
        }
    }

    // ------------------------------------------------------------------
    // Structural statistics (experiments F1 / E5)
    // ------------------------------------------------------------------

    /// Number of (unmarked) data nodes per level, bottom to top. Level 0 equals the
    /// number of keys; the top level is the expected `m / 2^(levels-1)` sample.
    pub fn level_lengths(&self) -> Vec<usize> {
        let guard = self.pin();
        (0..self.levels())
            .map(|level| {
                let mut count = 0usize;
                self.walk_level(level, &guard, |_| count += 1);
                count
            })
            .collect()
    }

    /// The keys currently present at the top level, in order (the SkipTrie's x-fast
    /// trie population).
    pub fn top_level_keys(&self) -> Vec<u64> {
        self.level_keys(self.top_level())
    }

    /// The (unmarked, data) keys currently linked on `level`, in order — level 0 is
    /// the full contents; upper levels are the tower samples. Diagnostic twin of
    /// [`SkipList::level_lengths`] used by the stress tests to report *which* node a
    /// violated invariant concerns.
    pub fn level_keys(&self, level: u8) -> Vec<u64> {
        let guard = self.pin();
        let mut out = Vec::new();
        self.walk_level(level, &guard, |node| out.push(node.key_value()));
        out
    }

    /// `(nodes_allocated, nodes_recycled, nodes_pooled)` — allocator traffic of the
    /// type-stable pool, used by the space experiment (E5).
    pub fn allocation_stats(&self) -> (usize, usize, usize) {
        (
            self.pool.allocated(),
            self.pool.recycled(),
            self.pool.free_len(),
        )
    }

    /// Approximate bytes resident for nodes (live + pooled), used by experiment E5.
    pub fn approx_node_bytes(&self) -> usize {
        self.pool.allocated() * std::mem::size_of::<Node<V>>()
    }

    /// Diagnostic dump of a level's unmarked data nodes:
    /// `(key, stop_flag, root_key_or_MAX)` per node. Test-support only.
    #[doc(hidden)]
    pub fn debug_level_nodes(&self, level: u8) -> Vec<(u64, bool, u64)> {
        let guard = self.pin();
        let mut out = Vec::new();
        self.walk_level(level, &guard, |node| {
            let stopped = node.status.load(Ordering::SeqCst) & STATUS_STOP != 0;
            let root_w = node.root.load(Ordering::SeqCst);
            let root_key = if tagged::is_null(root_w) {
                u64::MAX
            } else {
                // SAFETY: root pointers reference pool-kept nodes of this structure.
                unsafe {
                    (*tagged::unpack::<Node<V>>(root_w))
                        .key
                        .load(Ordering::SeqCst)
                }
            };
            out.push((node.key_value(), stopped, root_key));
        });
        out
    }

    // ------------------------------------------------------------------
    // Reclamation-safety auditing (tests/reclamation_soundness.rs)
    // ------------------------------------------------------------------

    /// Walks every level under a single pin and panics if a reclamation-safety
    /// invariant is violated; returns the number of nodes examined.
    ///
    /// Epoch reclamation guarantees that a node reached through live links while
    /// pinned is never recycled before the walker unpins. A broken epoch protocol
    /// (premature free, stale recycle) therefore surfaces here as one of:
    ///
    /// * a **poisoned node** on the path — pooled nodes carry the `u64::MAX` key and a
    ///   marked-null `next`, so the walk sees either the poisoned key or a level that
    ///   ends before its tail sentinel;
    /// * an **incarnation bump mid-examination** — node-pool recycling increments
    ///   the status sequence number, which must stay constant while a pinned walker
    ///   examines the node;
    /// * a **stale reuse** — a recycled node re-published at another level or key
    ///   breaks the level tag, the `down`/`root` same-key invariants, or key ordering.
    ///
    /// Every visited node is additionally recorded as a *witness* and its incarnation
    /// re-verified after the full walk, still under the same pin: epoch reclamation
    /// promises that nothing reached through live links during a pin is recycled
    /// until the pin ends, so any witness whose sequence number moved convicts the
    /// collector of freeing under a live guard.
    pub fn check_traversal_integrity(&self) -> usize {
        /// Cap on recorded witnesses (bounds memory on huge structures).
        const MAX_WITNESSES: usize = 1 << 16;
        let guard = self.pin();
        let mut checked = 0usize;
        let mut witnesses: Vec<(*const Node<V>, u64)> = Vec::new();
        for level in 0..self.levels() {
            let mut curr: &Node<V> = self.head(level);
            let mut last_key: Option<(u64, bool)> = None;
            loop {
                let next = skiptrie_atomics::dcss::read_resolved(&curr.next, &guard);
                let next_ptr = tagged::untagged(next);
                assert!(
                    !tagged::is_null(next_ptr),
                    "level {level} truncated before its tail sentinel (reached a \
                     poisoned/recycled node while pinned)"
                );
                // SAFETY: node memory is type-stable (pool) and reached while pinned.
                let node: &Node<V> = unsafe { &*tagged::unpack(next_ptr) };
                if node.is_tail() {
                    break;
                }
                if node.is_data() {
                    // The incarnation sequence must not move while we examine the
                    // node: a bump here means the pool recycled memory a pinned
                    // traversal was standing on.
                    let seq_before = node.status.load(Ordering::SeqCst) & !STATUS_STOP;
                    let key = node.key_value();
                    let marked = node.is_marked(&guard);
                    assert_ne!(
                        key,
                        u64::MAX,
                        "poisoned (pooled) node reachable at level {level} while pinned"
                    );
                    assert_eq!(
                        node.level(),
                        level,
                        "node for key {key} reached at level {level} carries the wrong \
                         level tag (stale recycle)"
                    );
                    if let Some((prev_key, prev_marked)) = last_key {
                        assert!(
                            key >= prev_key,
                            "keys out of order at level {level}: {prev_key} then {key}"
                        );
                        assert!(
                            key > prev_key || marked || prev_marked,
                            "two live nodes share key {key} at level {level}"
                        );
                    }
                    if level > 0 {
                        let down = node.down.load(Ordering::SeqCst);
                        assert!(
                            !tagged::is_null(down),
                            "tower node {key} at level {level} lost its down pointer"
                        );
                        // SAFETY: down pointers reference pool-kept nodes of this
                        // structure; epoch pinning keeps the target's fields intact.
                        let below: &Node<V> = unsafe { &*tagged::unpack(down) };
                        assert_eq!(
                            below.key_value(),
                            key,
                            "down pointer of {key} at level {level} reaches another key \
                             (stale recycle below)"
                        );
                    }
                    let seq_after = node.status.load(Ordering::SeqCst) & !STATUS_STOP;
                    assert_eq!(
                        seq_before, seq_after,
                        "incarnation of key {key} at level {level} changed while a \
                         pinned traversal examined it (premature recycle)"
                    );
                    if witnesses.len() < MAX_WITNESSES {
                        witnesses.push((node as *const Node<V>, seq_before));
                    }
                    last_key = Some((key, marked));
                    checked += 1;
                }
                curr = node;
            }
        }
        // Still pinned: no witness may have been recycled since we visited it.
        for (ptr, seq_at_visit) in witnesses {
            // SAFETY: witnesses were reached through live links under this very pin;
            // pool memory is type-stable, so the read is defined even on a violation.
            let seq_now = unsafe { (*ptr).status.load(Ordering::SeqCst) } & !STATUS_STOP;
            assert_eq!(
                seq_at_visit, seq_now,
                "a node visited under this pin was recycled before the pin ended \
                 (epoch protocol violation)"
            );
        }
        drop(guard);
        checked
    }
}

fn init_sentinel<V>(node: &Node<V>, kind: NodeKind, level: u8, orig_height: u8) {
    node.key.store(
        match kind {
            NodeKind::Head => 0,
            _ => u64::MAX,
        },
        Ordering::SeqCst,
    );
    node.meta
        .store(pack_meta(kind, level, orig_height), Ordering::SeqCst);
    node.back.store(tagged::NULL, Ordering::SeqCst);
    node.prev.store(tagged::NULL, Ordering::SeqCst);
    node.ready.store(1, Ordering::SeqCst);
    node.down.store(tagged::NULL, Ordering::SeqCst);
    node.root.store(tagged::NULL, Ordering::SeqCst);
}

impl<V> Drop for SkipList<V> {
    fn drop(&mut self) {
        // Exclusive access: every node still linked on some level is freed exactly
        // once (each node object belongs to exactly one level). Unlinked nodes are
        // either already recycled into the pool (freed by the pool's Drop) or held by
        // pending epoch callbacks that will recycle them into the (Arc-kept) pool.
        for level in 0..self.config.levels {
            let mut curr = self.heads[level as usize] as *mut Node<V>;
            while !curr.is_null() {
                let next_word = unsafe { (*curr).next.load(Ordering::SeqCst) };
                let next = tagged::unpack::<Node<V>>(tagged::untagged(next_word)) as *mut Node<V>;
                unsafe { drop(Box::from_raw(curr)) };
                curr = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_for_universe_bits_matches_log_log_u() {
        assert_eq!(levels_for_universe_bits(1), 1);
        assert_eq!(levels_for_universe_bits(2), 1);
        assert_eq!(levels_for_universe_bits(4), 2);
        assert_eq!(levels_for_universe_bits(8), 3);
        assert_eq!(levels_for_universe_bits(16), 4);
        assert_eq!(levels_for_universe_bits(32), 5);
        assert_eq!(levels_for_universe_bits(48), 6);
        assert_eq!(levels_for_universe_bits(64), 6);
        assert_eq!(levels_for_universe_bits(0), 1, "clamped");
        assert_eq!(levels_for_universe_bits(100), 6, "clamped to 64 bits");
    }

    #[test]
    fn config_constructors() {
        let c = SkipListConfig::for_universe_bits(32);
        assert_eq!(c.levels, 5);
        assert_eq!(c.mode, DcssMode::Descriptor);
        let full = SkipListConfig::full_height();
        assert_eq!(full.levels, 24);
        let cas = c.with_mode(DcssMode::CasOnly).with_seed(7);
        assert_eq!(cas.mode, DcssMode::CasOnly);
        assert_eq!(cas.seed, 7);
    }

    #[test]
    fn empty_list_queries() {
        let list: SkipList<u32> = SkipList::new(SkipListConfig::for_universe_bits(16));
        assert!(list.is_empty());
        assert_eq!(list.len(), 0);
        assert_eq!(list.get(5), None);
        assert_eq!(list.predecessor(5), None);
        assert_eq!(list.successor(5), None);
        assert!(!list.contains(0));
        assert_eq!(list.to_vec(), vec![]);
        assert_eq!(list.remove(3), None);
        assert_eq!(list.level_lengths(), vec![0; 4]);
    }

    #[test]
    fn single_level_list_works() {
        let list: SkipList<u64> = SkipList::new(SkipListConfig {
            levels: 1,
            mode: DcssMode::Descriptor,
            seed: 1,
            domain: None,
            reclaimer: Reclaimer::Ebr,
        });
        for k in [5u64, 1, 9, 3] {
            assert!(list.insert(k, k * 100));
        }
        assert_eq!(list.keys(), vec![1, 3, 5, 9]);
        assert_eq!(list.predecessor(4), Some((3, 300)));
        assert_eq!(list.successor(6), Some((9, 900)));
        assert_eq!(list.remove(3), Some(300));
        assert_eq!(list.keys(), vec![1, 5, 9]);
        assert_eq!(list.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let _ = SkipList::<u8>::new(SkipListConfig {
            levels: 0,
            mode: DcssMode::Descriptor,
            seed: 1,
            domain: None,
            reclaimer: Reclaimer::Ebr,
        });
    }
}
