//! A type-stable node pool.
//!
//! Skiplist nodes are never handed back to the global allocator while their structure
//! is alive: "freeing" a node recycles it into this pool (after epoch quiescence), and
//! allocation pops a recycled node if one is available. Two properties follow:
//!
//! 1. **Memory safety for DCSS helpers.** A helper completing someone else's DCSS may
//!    dereference the descriptor's guard pointer (a node's status word) after the node
//!    has been logically freed; because the memory is still a valid `Node`, the read is
//!    well-defined, and the incarnation sequence number bumped by [`NodePool::recycle`]
//!    makes the guard comparison fail, so the helper reaches the correct verdict.
//! 2. **Defensive traversal.** Recycled nodes waiting in the pool are *poisoned*
//!    (marked `next`, `u64::MAX` key, null guides), so any traversal that reaches one
//!    through a stale hint sees an obviously-deleted node and falls back to a sentinel.
//!
//! The pool is per-structure; dropping the structure drops the pool and only then is
//! memory returned to the allocator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use skiptrie_atomics::tagged;
use skiptrie_metrics::{self as metrics, Counter};

use crate::node::{Node, STATUS_SEQ_UNIT, STATUS_STOP};

/// A type-stable free list of [`Node`] allocations (see module docs).
pub(crate) struct NodePool<V> {
    free: Mutex<Vec<*mut Node<V>>>,
    /// Total nodes ever allocated from the system allocator by this pool.
    allocated: AtomicUsize,
    /// Total recycle operations (for space-accounting experiments).
    recycled: AtomicUsize,
}

// SAFETY: the raw pointers in the free list are owned exclusively by the pool.
unsafe impl<V: Send> Send for NodePool<V> {}
unsafe impl<V: Send> Sync for NodePool<V> {}

impl<V> NodePool<V> {
    pub(crate) fn new() -> Self {
        NodePool {
            free: Mutex::new(Vec::new()),
            allocated: AtomicUsize::new(0),
            recycled: AtomicUsize::new(0),
        }
    }

    /// Pops a recycled node or allocates a fresh one. The returned node is in the
    /// poisoned state; the caller initializes every field except `status` (whose
    /// sequence number must be preserved) before publishing it.
    pub(crate) fn acquire(&self) -> *mut Node<V> {
        metrics::record(Counter::NodeAllocated);
        if let Some(ptr) = self.free.lock().expect("node pool poisoned").pop() {
            return ptr;
        }
        self.allocated.fetch_add(1, Ordering::Relaxed);
        Box::into_raw(Node::empty())
    }

    /// Recycles a node whose memory can no longer be reached by any pinned thread
    /// (i.e. from an epoch-deferred callback, or for nodes that were never published).
    ///
    /// Poisons the traversal-visible fields, drops the value, clears STOP and bumps the
    /// incarnation sequence number so stale DCSS guards referencing the old incarnation
    /// can never match again.
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by [`NodePool::acquire`] of this pool, must not be
    /// reachable from the structure, and must not be recycled twice.
    pub(crate) unsafe fn recycle(&self, ptr: *mut Node<V>) {
        metrics::record(Counter::NodeRetired);
        let node = &*ptr;
        // Bump the incarnation and clear STOP (single writer here: quiescent node).
        let seq = node.status.load(Ordering::SeqCst) & !STATUS_STOP;
        node.status.store(seq + STATUS_SEQ_UNIT, Ordering::SeqCst);
        // Poison.
        node.key.store(u64::MAX, Ordering::SeqCst);
        node.next
            .store(tagged::with_mark(tagged::NULL), Ordering::SeqCst);
        node.back.store(tagged::NULL, Ordering::SeqCst);
        node.prev.store(tagged::NULL, Ordering::SeqCst);
        node.ready.store(0, Ordering::SeqCst);
        node.down.store(tagged::NULL, Ordering::SeqCst);
        node.root.store(tagged::NULL, Ordering::SeqCst);
        drop((*node.value.get()).take());
        self.recycled.fetch_add(1, Ordering::Relaxed);
        self.free.lock().expect("node pool poisoned").push(ptr);
    }

    /// Number of nodes obtained from the system allocator over the pool's lifetime.
    pub(crate) fn allocated(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Number of recycle operations over the pool's lifetime.
    pub(crate) fn recycled(&self) -> usize {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Number of nodes currently sitting in the free list.
    pub(crate) fn free_len(&self) -> usize {
        self.free.lock().expect("node pool poisoned").len()
    }
}

impl<V> Drop for NodePool<V> {
    fn drop(&mut self) {
        let free = self.free.get_mut().expect("node pool poisoned");
        for &ptr in free.iter() {
            // SAFETY: pointers in the free list are exclusively owned by the pool.
            unsafe { drop(Box::from_raw(ptr)) };
        }
        free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_allocates_then_reuses() {
        let pool: NodePool<u64> = NodePool::new();
        let a = pool.acquire();
        let b = pool.acquire();
        assert_ne!(a, b);
        assert_eq!(pool.allocated(), 2);
        unsafe { pool.recycle(a) };
        assert_eq!(pool.free_len(), 1);
        let c = pool.acquire();
        assert_eq!(c, a, "recycled node is reused");
        assert_eq!(pool.allocated(), 2, "no new system allocation");
        unsafe {
            pool.recycle(b);
            pool.recycle(c);
        }
    }

    #[test]
    fn recycle_bumps_sequence_and_clears_stop() {
        let pool: NodePool<u64> = NodePool::new();
        let ptr = pool.acquire();
        let before = unsafe { (*ptr).status.load(Ordering::SeqCst) };
        unsafe { (*ptr).set_stop() };
        unsafe { pool.recycle(ptr) };
        let after = unsafe { (*ptr).status.load(Ordering::SeqCst) };
        assert_eq!(after & STATUS_STOP, 0, "STOP cleared");
        assert_eq!(after, (before & !STATUS_STOP) + STATUS_SEQ_UNIT);
    }

    #[test]
    fn recycle_drops_the_value() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        let pool: NodePool<Tracked> = NodePool::new();
        let ptr = pool.acquire();
        unsafe {
            *(*ptr).value.get() = Some(Tracked(Arc::clone(&drops)));
            pool.recycle(ptr);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drop_frees_pooled_nodes() {
        let pool: NodePool<u64> = NodePool::new();
        let ptrs: Vec<_> = (0..16).map(|_| pool.acquire()).collect();
        for p in ptrs {
            unsafe { pool.recycle(p) };
        }
        assert_eq!(pool.free_len(), 16);
        drop(pool); // must not leak or double-free (asserted by miri/asan runs)
    }
}
