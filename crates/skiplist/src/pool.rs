//! A type-stable node pool.
//!
//! Skiplist nodes are never handed back to the global allocator while their structure
//! is alive: "freeing" a node recycles it into this pool (after epoch quiescence), and
//! allocation pops a recycled node if one is available. Two properties follow:
//!
//! 1. **Memory safety for DCSS helpers.** A helper completing someone else's DCSS may
//!    dereference the descriptor's guard pointer (a node's status word) after the node
//!    has been logically freed; because the memory is still a valid `Node`, the read is
//!    well-defined, and the incarnation sequence number bumped by [`NodePool::recycle`]
//!    makes the guard comparison fail, so the helper reaches the correct verdict.
//! 2. **Defensive traversal.** Recycled nodes waiting in the pool are *poisoned*
//!    (marked `next`, `u64::MAX` key, null guides), so any traversal that reaches one
//!    through a stale hint sees an obviously-deleted node and falls back to a sentinel.
//!
//! The pool is per-structure; dropping the structure drops the pool and only then is
//! memory returned to the allocator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use skiptrie_atomics::tagged;
use skiptrie_metrics::{self as metrics, Counter};

use crate::node::{Node, STATUS_SEQ_UNIT, STATUS_STOP};

/// Number of independently locked free-list shards. Threads are spread over shards
/// round-robin, so concurrent acquire/recycle traffic rarely meets on a lock — and a
/// thread descheduled while holding one shard no longer convoys every other thread.
const POOL_SHARDS: usize = 8;

/// Round-robin source for [`my_shard`] assignments.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The shard this thread prefers for both acquire and recycle.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % POOL_SHARDS;
}

/// This thread's home shard (falls back to 0 during thread-local teardown).
fn my_shard() -> usize {
    MY_SHARD.try_with(|s| *s).unwrap_or(0)
}

/// A type-stable free list of [`Node`] allocations (see module docs).
pub(crate) struct NodePool<V> {
    free: [Mutex<Vec<*mut Node<V>>>; POOL_SHARDS],
    /// Approximate number of nodes across all shards (kept in step with the pushes
    /// and pops below). Lets a growth-phase `acquire` — every free list empty — go
    /// straight to the allocator instead of sweeping all eight shard locks per call.
    free_count: AtomicUsize,
    /// Total nodes ever allocated from the system allocator by this pool.
    allocated: AtomicUsize,
    /// Total recycle operations (for space-accounting experiments).
    recycled: AtomicUsize,
}

// SAFETY: the raw pointers in the free list are owned exclusively by the pool.
unsafe impl<V: Send> Send for NodePool<V> {}
unsafe impl<V: Send> Sync for NodePool<V> {}

impl<V> NodePool<V> {
    pub(crate) fn new() -> Self {
        NodePool {
            free: std::array::from_fn(|_| Mutex::new(Vec::new())),
            free_count: AtomicUsize::new(0),
            allocated: AtomicUsize::new(0),
            recycled: AtomicUsize::new(0),
        }
    }

    /// Pops a recycled node or allocates a fresh one. The returned node is in the
    /// poisoned state; the caller initializes every field except `status` (whose
    /// sequence number must be preserved) before publishing it.
    ///
    /// The home shard is tried first; on a miss the other shards are scanned (nodes
    /// are interchangeable, only the lock is sharded) — but only while the
    /// approximate free count says there is something to find, so a growing
    /// structure pays one lock, not eight, per allocation.
    pub(crate) fn acquire(&self) -> *mut Node<V> {
        metrics::record(Counter::NodeAllocated);
        let home = my_shard();
        if self.free_count.load(Ordering::Relaxed) > 0 {
            for i in 0..POOL_SHARDS {
                let shard = &self.free[(home + i) % POOL_SHARDS];
                if let Some(ptr) = shard.lock().expect("node pool poisoned").pop() {
                    self.free_count.fetch_sub(1, Ordering::Relaxed);
                    return ptr;
                }
            }
        }
        self.allocated.fetch_add(1, Ordering::Relaxed);
        Box::into_raw(Node::empty())
    }

    /// Poisons a quiescent node: bumps the incarnation and clears STOP (so stale DCSS
    /// guards referencing the old incarnation can never match again), marks the
    /// traversal-visible fields as obviously-deleted, and drops the value.
    ///
    /// # Safety
    ///
    /// Same contract as [`NodePool::recycle`]; the node must be quiescent (single
    /// writer).
    unsafe fn poison(&self, ptr: *mut Node<V>) {
        metrics::record(Counter::NodeRetired);
        let node = &*ptr;
        // Bump the incarnation and clear STOP (single writer here: quiescent node).
        let seq = node.status.load(Ordering::SeqCst) & !STATUS_STOP;
        node.status.store(seq + STATUS_SEQ_UNIT, Ordering::SeqCst);
        // Poison.
        node.key.store(u64::MAX, Ordering::SeqCst);
        node.next
            .store(tagged::with_mark(tagged::NULL), Ordering::SeqCst);
        node.back.store(tagged::NULL, Ordering::SeqCst);
        node.prev.store(tagged::NULL, Ordering::SeqCst);
        node.ready.store(0, Ordering::SeqCst);
        node.down.store(tagged::NULL, Ordering::SeqCst);
        node.root.store(tagged::NULL, Ordering::SeqCst);
        drop((*node.value.get()).take());
        self.recycled.fetch_add(1, Ordering::Relaxed);
    }

    /// Recycles a node whose memory can no longer be reached by any pinned thread
    /// (i.e. from an epoch-deferred callback, or for nodes that were never published).
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by [`NodePool::acquire`] of this pool, must not be
    /// reachable from the structure, and must not be recycled twice.
    pub(crate) unsafe fn recycle(&self, ptr: *mut Node<V>) {
        self.poison(ptr);
        // Count before push: every poppable node has been counted, so the matching
        // decrement in `acquire` can never transiently underflow the counter.
        self.free_count.fetch_add(1, Ordering::Relaxed);
        self.free[my_shard()]
            .lock()
            .expect("node pool poisoned")
            .push(ptr);
    }

    /// Recycles a whole batch of nodes, taking the free-list lock once for the batch
    /// instead of once per node. Operations that unlink several nodes under one guard
    /// (a tower delete) retire them through a single deferred closure ending here.
    ///
    /// # Safety
    ///
    /// Same contract as [`NodePool::recycle`], applied to every pointer in `ptrs`.
    pub(crate) unsafe fn recycle_batch(&self, ptrs: Vec<*mut Node<V>>) {
        for &ptr in &ptrs {
            self.poison(ptr);
        }
        // Count before push (see `recycle`).
        self.free_count.fetch_add(ptrs.len(), Ordering::Relaxed);
        self.free[my_shard()]
            .lock()
            .expect("node pool poisoned")
            .extend(ptrs);
    }

    /// Number of nodes obtained from the system allocator over the pool's lifetime.
    pub(crate) fn allocated(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Number of recycle operations over the pool's lifetime.
    pub(crate) fn recycled(&self) -> usize {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Number of nodes currently sitting in the free list (all shards).
    pub(crate) fn free_len(&self) -> usize {
        self.free
            .iter()
            .map(|shard| shard.lock().expect("node pool poisoned").len())
            .sum()
    }
}

impl<V> Drop for NodePool<V> {
    fn drop(&mut self) {
        for shard in &mut self.free {
            let free = shard.get_mut().expect("node pool poisoned");
            for &ptr in free.iter() {
                // SAFETY: pointers in the free list are exclusively owned by the pool.
                unsafe { drop(Box::from_raw(ptr)) };
            }
            free.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_allocates_then_reuses() {
        let pool: NodePool<u64> = NodePool::new();
        let a = pool.acquire();
        let b = pool.acquire();
        assert_ne!(a, b);
        assert_eq!(pool.allocated(), 2);
        unsafe { pool.recycle(a) };
        assert_eq!(pool.free_len(), 1);
        let c = pool.acquire();
        assert_eq!(c, a, "recycled node is reused");
        assert_eq!(pool.allocated(), 2, "no new system allocation");
        unsafe {
            pool.recycle(b);
            pool.recycle(c);
        }
    }

    #[test]
    fn recycle_batch_reuses_all_nodes() {
        let pool: NodePool<u64> = NodePool::new();
        let ptrs: Vec<_> = (0..8).map(|_| pool.acquire()).collect();
        assert_eq!(pool.allocated(), 8);
        unsafe { pool.recycle_batch(ptrs.clone()) };
        assert_eq!(pool.free_len(), 8);
        assert_eq!(pool.recycled(), 8);
        // Every subsequent acquire is served from the pool, not the allocator.
        let again: Vec<_> = (0..8).map(|_| pool.acquire()).collect();
        assert_eq!(pool.allocated(), 8, "no new system allocation");
        let mut original: Vec<_> = ptrs.iter().map(|p| *p as usize).collect();
        let mut reused: Vec<_> = again.iter().map(|p| *p as usize).collect();
        original.sort_unstable();
        reused.sort_unstable();
        assert_eq!(original, reused, "the same memory is recycled");
        unsafe { pool.recycle_batch(again) };
    }

    #[test]
    fn recycle_bumps_sequence_and_clears_stop() {
        let pool: NodePool<u64> = NodePool::new();
        let ptr = pool.acquire();
        let before = unsafe { (*ptr).status.load(Ordering::SeqCst) };
        unsafe { (*ptr).set_stop() };
        unsafe { pool.recycle(ptr) };
        let after = unsafe { (*ptr).status.load(Ordering::SeqCst) };
        assert_eq!(after & STATUS_STOP, 0, "STOP cleared");
        assert_eq!(after, (before & !STATUS_STOP) + STATUS_SEQ_UNIT);
    }

    #[test]
    fn recycle_drops_the_value() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        let pool: NodePool<Tracked> = NodePool::new();
        let ptr = pool.acquire();
        unsafe {
            *(*ptr).value.get() = Some(Tracked(Arc::clone(&drops)));
            pool.recycle(ptr);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drop_frees_pooled_nodes() {
        let pool: NodePool<u64> = NodePool::new();
        let ptrs: Vec<_> = (0..16).map(|_| pool.acquire()).collect();
        for p in ptrs {
            unsafe { pool.recycle(p) };
        }
        assert_eq!(pool.free_len(), 16);
        drop(pool); // must not leak or double-free (asserted by miri/asan runs)
    }
}
