//! Single-owner bulk construction: lay out a sorted key sequence as level-0 nodes and
//! towers directly, with no CAS retry loops and no per-key descent.
//!
//! Building a skiplist of `n` keys through `n` concurrent [`SkipList::insert`] calls
//! pays, per key, a full multi-level search, a link CAS (with retry loops), one
//! DCSS-guarded raise per tower level, and a `fixPrev` pass for top-level nodes —
//! machinery that exists solely to survive *other threads*. A cold start (restoring a
//! checkpoint, ingesting a sorted file) has no other threads: the caller holds
//! `&mut self`, so the Rust borrow rules prove exclusivity statically, and every link
//! can be a plain store.
//!
//! [`SkipList::bulk_load_sorted`] exploits this: one pass over a strictly increasing
//! `(key, value)` iterator, appending each key's tower behind a per-level `last`
//! cursor — `O(n)` total work, `O(levels)` auxiliary state. The resulting structure is
//! *indistinguishable* from one built by sequential inserts of the same keys:
//!
//! * tower heights are drawn from the same geometric sampler
//!   ([`crate::height::sample_height`]) the insert path uses;
//! * every node carries the same field discipline (`down`, `root`, `orig_height`,
//!   poisoned-then-initialized pool memory with its incarnation preserved);
//! * top-level nodes join the doubly-linked list with `prev` pointing at their
//!   predecessor and `ready` set, exactly as `fixPrev` would leave them;
//! * the occupancy counter ends at `n`, as if `n` inserts had linearized.
//!
//! Callers that need the x-fast trie populated on top (the SkipTrie) consume the
//! returned [`BulkLoadReport::tops`] — keys and packed words of the nodes that
//! reached the top level, in key order.

use std::sync::atomic::Ordering;

use skiptrie_atomics::tagged;

use crate::height::sample_height;
use crate::node::Node;
use crate::SkipList;

/// What [`SkipList::bulk_load_sorted`] built.
pub struct BulkLoadReport {
    /// Number of keys laid out (every input key: the input is duplicate-free).
    pub keys: usize,
    /// `(key, packed node word)` of the nodes that reached the top level, in
    /// increasing key order (see [`crate::NodeRef::packed`]). The SkipTrie
    /// publishes these in its x-fast trie; reconstruct them with
    /// [`crate::NodeRef::from_packed`] while the structure is alive.
    pub tops: Vec<(u64, u64)>,
}

impl<V> SkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Builds the list's entire contents from a strictly increasing `(key, value)`
    /// sequence in `O(n)`, bypassing the concurrent insert protocol (see the
    /// [module docs](self) for why `&mut self` makes that safe and what
    /// "indistinguishable from sequential inserts" means).
    ///
    /// # Panics
    ///
    /// Panics if the list is not empty (and physically quiescent — every level must
    /// run head-to-tail with no remnants), or if the keys are not strictly
    /// increasing.
    ///
    /// # Examples
    ///
    /// ```
    /// use skiptrie_skiplist::{SkipList, SkipListConfig};
    ///
    /// let mut list: SkipList<u64> = SkipList::new(SkipListConfig::for_universe_bits(32));
    /// let report = list.bulk_load_sorted((0..1_000u64).map(|k| (k * 3, k)));
    /// assert_eq!(report.keys, 1_000);
    /// assert_eq!(list.len(), 1_000);
    /// assert_eq!(list.get(999 * 3), Some(999));
    /// assert_eq!(list.predecessor(4), Some((3, 1)));
    /// ```
    pub fn bulk_load_sorted<I>(&mut self, entries: I) -> BulkLoadReport
    where
        I: IntoIterator<Item = (u64, V)>,
    {
        assert!(
            self.is_empty(),
            "bulk_load_sorted requires an empty skiplist"
        );
        let top = self.top_level();
        for level in 0..self.levels() {
            // `&mut self` guarantees quiescence, so "empty" must also mean physically
            // empty: a marked remnant still linked on some level would end up ahead
            // of the bulk-loaded run and violate key order.
            let next = self.head(level).next.load(Ordering::SeqCst);
            assert!(
                std::ptr::eq(
                    tagged::unpack::<Node<V>>(tagged::untagged(next)),
                    self.tail(level)
                ),
                "bulk_load_sorted requires physically empty levels (level {level} has remnants)"
            );
        }

        // The per-level append cursor: the last node linked on each level (initially
        // the head sentinel). New towers are appended behind it with plain stores.
        let mut last: Vec<*const Node<V>> = (0..self.levels())
            .map(|l| self.head(l) as *const _)
            .collect();
        let seed = self.config().seed;
        let mut prev_key: Option<u64> = None;
        let mut count = 0usize;
        let mut tops = Vec::new();

        for (key, value) in entries {
            assert!(
                prev_key.is_none_or(|p| p < key),
                "bulk_load_sorted requires strictly increasing keys (saw {key} after {prev_key:?})"
            );
            prev_key = Some(key);
            // Same geometric height distribution as the insert path, so the loaded
            // structure has the statistics every bound relies on.
            let height = sample_height(seed, top);

            // Level 0 (root) node: value-carrying, root = self.
            let root_ptr = self.pool().acquire();
            let root_word = tagged::pack(root_ptr as *const Node<V>);
            // `Relaxed` initialization: `SkipList::init_node`'s `SeqCst` stores (a
            // full fence each on x86) exist for publication racing concurrent
            // readers; under `&mut self` there are none, and the eventual handoff
            // that shares the structure carries the publishing edge.
            self.init_node_ordered(
                root_ptr,
                key,
                0,
                height,
                tagged::NULL,
                root_word,
                tagged::pack(self.tail(0) as *const Node<V>),
                Some(value),
                Ordering::Relaxed,
            );
            // SAFETY: `last[0]` is the head sentinel or a node this call created;
            // `&mut self` excludes all other access.
            unsafe { (*last[0]).next.store(root_word, Ordering::Relaxed) };
            last[0] = root_ptr;

            // Upper tower nodes, bottom-up, linked by `down` and sharing the root.
            let mut lower_word = root_word;
            for level in 1..=height {
                let ptr = self.pool().acquire();
                let word = tagged::pack(ptr as *const Node<V>);
                self.init_node_ordered(
                    ptr,
                    key,
                    level,
                    height,
                    lower_word,
                    root_word,
                    tagged::pack(self.tail(level) as *const Node<V>),
                    None,
                    Ordering::Relaxed,
                );
                if level == top {
                    // Join the doubly-linked top level exactly as `fixPrev` would:
                    // `prev` = the current top-level predecessor (head or the
                    // previous top key), `ready` set. (A single-level list — top
                    // level 0 — matches the insert path by *not* maintaining guides.)
                    let prev_word = tagged::pack(last[top as usize]);
                    // SAFETY: the node is not yet reachable; exclusive access.
                    unsafe {
                        (*ptr).prev.store(prev_word, Ordering::Relaxed);
                        (*ptr).ready.store(1, Ordering::Relaxed);
                    }
                    tops.push((key, word));
                }
                // SAFETY: as for level 0.
                unsafe { (*last[level as usize]).next.store(word, Ordering::Relaxed) };
                last[level as usize] = ptr;
                lower_word = word;
            }
            count += 1;
            // Counted per key (uncontended `Relaxed` add), not once at the end: if
            // the input iterator panics mid-build, the structure stays consistent —
            // every linked key is counted, so `len()`/`is_empty()` agree with the
            // contents a caller that catches the unwind would observe.
            self.len_counter().fetch_add(1, Ordering::Relaxed);
        }
        BulkLoadReport { keys: count, tops }
    }
}

#[cfg(test)]
mod tests {
    use crate::{SkipList, SkipListConfig};

    fn loaded(n: u64) -> SkipList<u64> {
        let mut list = SkipList::new(SkipListConfig::for_universe_bits(32).with_seed(5));
        list.bulk_load_sorted((0..n).map(|k| (k * 7, k)));
        list
    }

    #[test]
    fn bulk_load_matches_sequential_inserts_observationally() {
        let bulk = loaded(3_000);
        let seq = SkipList::new(SkipListConfig::for_universe_bits(32).with_seed(5));
        for k in 0..3_000u64 {
            assert!(seq.insert(k * 7, k));
        }
        assert_eq!(bulk.len(), seq.len());
        assert_eq!(bulk.to_vec(), seq.to_vec());
        for probe in (0..21_000u64).step_by(97) {
            assert_eq!(bulk.predecessor(probe), seq.predecessor(probe), "{probe}");
            assert_eq!(bulk.successor(probe), seq.successor(probe), "{probe}");
            assert_eq!(bulk.get(probe), seq.get(probe), "{probe}");
        }
        // Node counts may differ from `seq` (independent height draws), so only
        // require the audit to pass and to have visited at least every level-0 key.
        assert!(bulk.check_traversal_integrity() >= bulk.len());
    }

    #[test]
    fn bulk_loaded_list_supports_mutation_afterwards() {
        let list = loaded(1_000);
        // Regular concurrent-protocol operations compose with the bulk-built state.
        assert!(!list.insert(7, 999), "key 7 = 1*7 already present");
        assert!(list.insert(5, 555), "fresh key between loaded keys");
        assert_eq!(list.remove(0), Some(0));
        assert_eq!(list.remove(5), Some(555));
        assert_eq!(list.pop_first(), Some((7, 1)));
        assert_eq!(list.pop_last(), Some((999 * 7, 999)));
        assert_eq!(list.len(), 997);
        list.check_traversal_integrity();
    }

    #[test]
    fn bulk_load_populates_towers_and_guides() {
        let list = loaded(4_000);
        let lengths = list.level_lengths();
        assert_eq!(lengths[0], 4_000);
        for window in lengths.windows(2) {
            assert!(window[1] <= window[0], "denser above: {lengths:?}");
        }
        assert!(
            *lengths.last().unwrap() > 0,
            "4000 keys populate the top level w.h.p."
        );
        let tops = list.top_level_keys();
        assert!(tops.windows(2).all(|w| w[0] < w[1]), "top keys sorted");
    }

    #[test]
    fn bulk_load_report_lists_top_nodes_in_order() {
        let mut list: SkipList<u64> =
            SkipList::new(SkipListConfig::for_universe_bits(32).with_seed(9));
        let report = list.bulk_load_sorted((0..4_000u64).map(|k| (k, k)));
        assert_eq!(report.keys, 4_000);
        let tops = list.top_level_keys();
        assert_eq!(report.tops.len(), tops.len());
        let guard = list.pin();
        let reported: Vec<u64> = report
            .tops
            .iter()
            .map(|&(key, w)| {
                // SAFETY: words of live top-level nodes of `list`, under a pin.
                let node =
                    unsafe { crate::NodeRef::<u64>::from_packed(w, &guard) }.expect("non-null");
                assert_eq!(node.key(), key, "report pairs keys with their nodes");
                key
            })
            .collect();
        assert_eq!(reported, tops);
    }

    #[test]
    fn empty_bulk_load_is_fine() {
        let mut list: SkipList<u64> = SkipList::new(SkipListConfig::for_universe_bits(16));
        let report = list.bulk_load_sorted(std::iter::empty());
        assert_eq!(report.keys, 0);
        assert!(report.tops.is_empty());
        assert!(list.is_empty());
        assert!(list.insert(1, 1));
    }

    #[test]
    fn single_level_list_bulk_load() {
        let mut list: SkipList<u64> = SkipList::new(SkipListConfig {
            levels: 1,
            mode: skiptrie_atomics::dcss::DcssMode::Descriptor,
            seed: 1,
            domain: None,
            reclaimer: crossbeam_epoch::Reclaimer::Ebr,
        });
        let report = list.bulk_load_sorted([(1u64, 10u64), (2, 20), (3, 30)]);
        assert_eq!(report.keys, 3);
        // Top level 0: the insert path never reports/links top nodes there either.
        assert!(report.tops.is_empty());
        assert_eq!(list.keys(), vec![1, 2, 3]);
        assert_eq!(list.pop_first(), Some((1, 10)));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_input_panics() {
        let mut list: SkipList<u64> = SkipList::new(SkipListConfig::for_universe_bits(16));
        let _ = list.bulk_load_sorted([(5u64, 0u64), (4, 0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn duplicate_input_panics() {
        let mut list: SkipList<u64> = SkipList::new(SkipListConfig::for_universe_bits(16));
        let _ = list.bulk_load_sorted([(5u64, 0u64), (5, 1)]);
    }

    #[test]
    #[should_panic(expected = "empty skiplist")]
    fn non_empty_list_panics() {
        let mut list: SkipList<u64> = SkipList::new(SkipListConfig::for_universe_bits(16));
        list.insert(1, 1);
        let _ = list.bulk_load_sorted([(2u64, 2u64)]);
    }
}
