//! Geometric tower-height sampling.
//!
//! Each inserted key tosses a fair coin per level (paper, Section 2: "We choose a
//! height `H(x) ~ Geom(1/2)`") and is truncated at the skiplist's top level. A key
//! that reaches the top level becomes a *top-level key*: it joins the doubly-linked
//! list and the x-fast trie. With `L = log log u` levels the probability of reaching
//! the top is `2^-(L-1) ≈ 1/log u`, giving the paper's expected `O(log u)` spacing
//! between top-level keys.

use std::cell::Cell;

/// Derives a geometric height (number of coin flips that came up heads) from a word of
/// randomness, truncated to `max_level`.
///
/// Deterministic; exposed so tests and experiments can drive the structure with a
/// seeded random stream.
pub fn height_from_random(random: u64, max_level: u8) -> u8 {
    let flips = random.trailing_ones() as u8;
    flips.min(max_level)
}

thread_local! {
    static RNG_STATE: Cell<u64> = const { Cell::new(0) };
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a tower height in `0..=max_level` using a per-thread generator seeded from
/// `seed`, the thread, and the call sequence.
pub fn sample_height(seed: u64, max_level: u8) -> u8 {
    RNG_STATE.with(|cell| {
        let mut state = cell.get();
        if state == 0 {
            // Mix the configured seed with a per-thread component so different threads
            // draw different (but reproducible, given a fixed thread) streams.
            let tid = std::thread::current().id();
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            use std::hash::{Hash, Hasher};
            tid.hash(&mut hasher);
            state = seed ^ hasher.finish() ^ 0xA5A5_A5A5_5A5A_5A5A;
            if state == 0 {
                state = 1;
            }
        }
        let word = splitmix64(&mut state);
        cell.set(state);
        height_from_random(word, max_level)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn height_from_random_counts_trailing_ones() {
        assert_eq!(height_from_random(0b0, 10), 0);
        assert_eq!(height_from_random(0b1, 10), 1);
        assert_eq!(height_from_random(0b0111, 10), 3);
        assert_eq!(height_from_random(u64::MAX, 10), 10, "truncated at max");
        assert_eq!(height_from_random(u64::MAX, 4), 4);
    }

    #[test]
    fn sampled_heights_are_in_range_and_roughly_geometric() {
        let max = 6u8;
        let n = 200_000usize;
        let mut counts = vec![0usize; max as usize + 1];
        for _ in 0..n {
            let h = sample_height(42, max);
            counts[h as usize] += 1;
        }
        // Every height must be in range, level 0 should hold about half the mass, and
        // each level should be roughly half the previous (loose bounds: this is a
        // statistical smoke test, not a distribution test).
        let p0 = counts[0] as f64 / n as f64;
        assert!((0.45..0.55).contains(&p0), "P(h=0) = {p0}");
        for level in 1..max as usize {
            let ratio = counts[level] as f64 / counts[level - 1].max(1) as f64;
            assert!(
                (0.3..0.8).contains(&ratio),
                "level {level} ratio {ratio} (counts {counts:?})"
            );
        }
    }

    #[test]
    fn different_seeds_are_well_defined() {
        // Not a randomness test; just exercises the seeding path on this thread.
        let a = sample_height(1, 5);
        let b = sample_height(2, 5);
        assert!(a <= 5 && b <= 5);
    }
}
