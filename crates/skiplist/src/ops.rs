//! Insert, delete, predecessor and the top-level doubly-linked-list maintenance
//! (`fixPrev`, `toplevelDelete` repair) — Sections 2–3 and Algorithms 1–2 of the
//! paper.

use crossbeam_epoch::Guard;
use skiptrie_atomics::dcss::{cas_resolved, dcss, read_resolved, DcssError};
use skiptrie_atomics::tagged;
use skiptrie_metrics::{self as metrics, Counter};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::backoff::Backoff;
use crate::height::sample_height;
use crate::node::{pack_meta, Node, NodeKind, NodeRef, STATUS_STOP};
use crate::SkipList;

/// Result of a low-level insertion ([`SkipList::insert_from`]).
pub enum InsertOutcome<'g, V> {
    /// The key was already present; nothing was inserted.
    AlreadyPresent,
    /// The key was inserted (linearized when its level-0 node became reachable).
    Inserted {
        /// The top-level node of the new tower, if the tower reached the top level.
        /// The SkipTrie publishes this node in the x-fast trie.
        top_node: Option<NodeRef<'g, V>>,
    },
}

/// Result of a low-level deletion ([`SkipList::delete_from`]).
pub struct DeleteOutcome<'g, V> {
    /// True if this call performed the (linearized) removal of the key.
    pub removed: bool,
    /// True if the deleted tower had been assigned the top level (its prefixes may be
    /// published in the x-fast trie and must be cleaned up by the caller).
    pub root_was_top: bool,
    /// The removed value (only when `removed`).
    pub value: Option<V>,
    /// A top-level node that this call unlinked and now owns. It is **not yet
    /// retired**: the caller must call [`SkipList::retire_node`] on it after any
    /// external references (x-fast trie pointers) have been cleaned up. `None` if this
    /// call did not unlink a top-level node.
    pub top_to_retire: Option<NodeRef<'g, V>>,
}

impl<V> SkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// `None` here means a full head-sentinel-seeded search (`O(m)` worst case on the
    /// top level), which is acceptable *only* at public hint-less entry points — the
    /// standalone `SkipList` API, where the caller holds nothing better. Every
    /// internal call site that already holds a predecessor (delete sweeps, cursor
    /// re-seeds, prefix cleanup in the trie) must thread it instead: head-seeding the
    /// delete path cost 244→2.6 µs/op before PR 2 fixed it.
    fn start_or_head<'g>(&'g self, start: Option<NodeRef<'g, V>>) -> &'g Node<V> {
        match start {
            Some(r) => r.node,
            None => self.head(self.top_level()),
        }
    }

    /// Initializes a pooled node for publication. The status word is deliberately left
    /// untouched (its sequence number identifies the incarnation).
    pub(crate) fn init_node(
        &self,
        ptr: *mut Node<V>,
        key: u64,
        level: u8,
        orig_height: u8,
        down: u64,
        root: u64,
        next: u64,
        value: Option<V>,
    ) {
        self.init_node_ordered(
            ptr,
            key,
            level,
            orig_height,
            down,
            root,
            next,
            value,
            Ordering::SeqCst,
        );
    }

    /// [`SkipList::init_node`] with an explicit store ordering: `SeqCst` on the
    /// concurrent insert path (publication racing readers), `Relaxed` on the
    /// single-owner bulk path, where `&mut self` excludes observers and the eventual
    /// structure handoff carries the publishing edge.
    pub(crate) fn init_node_ordered(
        &self,
        ptr: *mut Node<V>,
        key: u64,
        level: u8,
        orig_height: u8,
        down: u64,
        root: u64,
        next: u64,
        value: Option<V>,
        ordering: Ordering,
    ) {
        // SAFETY: the node is not yet published; we have exclusive access.
        unsafe {
            let n = &*ptr;
            n.key.store(key, ordering);
            n.meta
                .store(pack_meta(NodeKind::Data, level, orig_height), ordering);
            n.back.store(tagged::NULL, ordering);
            n.prev.store(tagged::NULL, ordering);
            n.ready.store(0, ordering);
            n.down.store(down, ordering);
            n.root.store(root, ordering);
            *n.value.get() = value;
            n.next.store(next, ordering);
        }
    }

    /// Schedules a node for recycling once no pinned thread can still reach it.
    ///
    /// Routes through the list's configured substrate (the guard came from
    /// [`SkipList::pin`]) and passes the incarnation's birth era, so the hazard
    /// scan can free nodes born after a stalled reader pinned.
    ///
    /// # Safety
    ///
    /// The node must be physically unlinked from every level and must not be retired
    /// twice. Ownership of retirement belongs to the thread that won the node's mark
    /// CAS (or created it without ever publishing it).
    pub unsafe fn retire_node(&self, node: NodeRef<'_, V>, guard: &Guard) {
        let pool = Arc::clone(self.pool());
        let ptr = node.node as *const Node<V> as *mut Node<V>;
        let birth = node.node.birth.load(Ordering::SeqCst);
        guard.defer_unchecked_born(birth, move || pool.recycle(ptr));
    }

    /// Recycles a node that was never published (no other thread can know about it).
    fn recycle_unpublished(&self, ptr: *mut Node<V>) {
        // SAFETY: the node was acquired from our pool and never became reachable.
        unsafe { self.pool().recycle(ptr) };
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Inserts `key -> value` starting the search from `start` (a top-level hint, e.g.
    /// the result of the x-fast trie's `LowestAncestor`), or from the head sentinel.
    ///
    /// The insertion is linearized when the level-0 node becomes reachable; the tower
    /// is then raised level by level, each raise conditioned (DCSS) on the tower's
    /// status word so that a concurrent delete stops it (paper, Section 2).
    pub fn insert_from<'g>(
        &'g self,
        key: u64,
        value: V,
        start: Option<NodeRef<'g, V>>,
        guard: &'g Guard,
    ) -> InsertOutcome<'g, V> {
        let top = self.top_level();
        let start_node = self.start_or_head(start);
        let orig_height = sample_height(self.config.seed, top);

        // Phase 1: link the root (level-0) node.
        let mut preds = self.find_preds(key, start_node, guard);
        let root_ptr: *mut Node<V>;
        let mut root_backoff = Backoff::new();
        loop {
            let (l0, r0) = preds[0];
            if r0.is_data() && r0.key_value() == key {
                return InsertOutcome::AlreadyPresent;
            }
            let ptr = self.pool().acquire();
            let self_word = tagged::pack(ptr as *const Node<V>);
            self.init_node(
                ptr,
                key,
                0,
                orig_height,
                tagged::NULL,
                self_word,
                tagged::pack(r0 as *const Node<V>),
                Some(value.clone()),
            );
            // SAFETY: not yet published. Birth is stamped before the publishing
            // CAS, so it cannot postdate reachability (hazard-substrate contract).
            unsafe { (*ptr).birth.store(guard.current_era(), Ordering::SeqCst) };
            match cas_resolved(
                &l0.next,
                tagged::pack(r0 as *const Node<V>),
                self_word,
                guard,
            ) {
                Ok(()) => {
                    root_ptr = ptr;
                    break;
                }
                Err(_) => {
                    self.recycle_unpublished(ptr);
                    metrics::record(Counter::Restart);
                    root_backoff.spin();
                    preds = self.find_preds(key, l0, guard);
                }
            }
        }
        self.len_counter().fetch_add(1, Ordering::SeqCst);
        // SAFETY: we just created and published this node; it stays valid while pinned.
        let root: &Node<V> = unsafe { &*root_ptr };
        let root_status = root.status.load(Ordering::SeqCst);
        let root_word = tagged::pack(root_ptr as *const Node<V>);

        // Phase 2: raise the tower up to `orig_height` (or until a delete stops us).
        // The paper conditions every raise on the root's STOP flag *remaining unset* —
        // comparing against the captured status alone is not enough: a delete that
        // runs entirely between the root link and the capture above leaves STOP
        // already set *inside* `root_status`, the status never changes again, and the
        // DCSS guards would happily raise a full tower over an already-removed root,
        // stranding unmarked nodes no sweep will ever visit.
        let raise_height = if root_status & STATUS_STOP == 0 {
            orig_height
        } else {
            0
        };
        let mut lower_word = root_word;
        let mut top_node: Option<&Node<V>> = None;
        let mut top_pred: Option<&Node<V>> = None;
        'levels: for level in 1..=raise_height {
            let ptr = self.pool().acquire();
            let node_word = tagged::pack(ptr as *const Node<V>);
            let mut attempt_start: &Node<V> = preds[level as usize].0;
            let mut raise_backoff = Backoff::new();
            loop {
                let (l, r) = self.list_search(level, key, attempt_start, guard);
                if r.is_data() && r.key_value() == key {
                    // Another node with our key already lives on this level (e.g. a
                    // remnant of an aborted incarnation). Stop raising.
                    self.recycle_unpublished(ptr);
                    break 'levels;
                }
                if root.status.load(Ordering::SeqCst) != root_status {
                    // Deletion of our key has begun; stop raising.
                    self.recycle_unpublished(ptr);
                    break 'levels;
                }
                self.init_node(
                    ptr,
                    key,
                    level,
                    orig_height,
                    lower_word,
                    root_word,
                    tagged::pack(r as *const Node<V>),
                    None,
                );
                // SAFETY: not yet published (same contract as the root stamp).
                unsafe { (*ptr).birth.store(guard.current_era(), Ordering::SeqCst) };
                // The raise is conditioned on the root's status word staying exactly
                // as observed (not stopped, same incarnation) — the paper's "each
                // insertion is conditioned on the stop flag of the root remaining
                // unset".
                // SAFETY: the guard word is the root's status, kept valid by the pool.
                let res = unsafe {
                    dcss(
                        &l.next,
                        tagged::pack(r as *const Node<V>),
                        node_word,
                        &root.status as *const AtomicU64,
                        root_status,
                        self.config.mode,
                        guard,
                    )
                };
                match res {
                    Ok(()) => {
                        // SAFETY: just published; valid while pinned.
                        let node: &Node<V> = unsafe { &*ptr };
                        if root.status.load(Ordering::SeqCst) != root_status {
                            // A delete began concurrently and may already have swept
                            // this level; undo our own raise so no tower node is
                            // stranded above a deleted root.
                            if self.remove_tower_node(level, node, l, guard) {
                                // SAFETY: we won the node's mark and unlinked it; for
                                // a top-level node no trie pointers can exist yet
                                // (our own trie insertion has not run and is guarded
                                // on the node's status).
                                unsafe { self.retire_node(NodeRef::new(node), guard) };
                            }
                            break 'levels;
                        }
                        lower_word = node_word;
                        if level == top {
                            top_node = Some(node);
                            // The predecessor we just linked behind seeds Phase 3's
                            // fix_prev search (instead of the head sentinel).
                            top_pred = Some(l);
                        }
                        continue 'levels;
                    }
                    Err(DcssError::GuardMismatch) => {
                        self.recycle_unpublished(ptr);
                        break 'levels;
                    }
                    Err(DcssError::TargetMismatch(_)) => {
                        metrics::record(Counter::Restart);
                        raise_backoff.spin();
                        attempt_start = l;
                    }
                }
            }
        }

        // Phase 3: a new top-level node joins the doubly-linked list (Section 3).
        if let Some(node) = top_node {
            self.fix_prev(top_pred, node, guard);
        }
        InsertOutcome::Inserted {
            top_node: top_node.map(NodeRef::new),
        }
    }

    // ------------------------------------------------------------------
    // fixPrev / top-level repair (Algorithms 1 and 2)
    // ------------------------------------------------------------------

    /// The paper's `fixPrev(pred, node)`: locate `node`'s current top-level
    /// predecessor and swing `node.prev` to it, conditioned on the predecessor not
    /// being (in the process of being) deleted. Sets `node.ready` on success; gives up
    /// if `node` itself becomes marked.
    pub(crate) fn fix_prev(&self, pred_hint: Option<&Node<V>>, node: &Node<V>, guard: &Guard) {
        let top = self.top_level();
        let mut hint: &Node<V> = pred_hint.unwrap_or_else(|| self.head(top));
        let mut attempts = 0usize;
        let mut backoff = Backoff::new();
        loop {
            attempts += 1;
            if node.is_marked(guard) {
                return;
            }
            let (left, right) = self.list_search(top, node.key_value(), hint, guard);
            if !std::ptr::eq(right, node) {
                // `node` is no longer (or not yet) the first node at its key — it has
                // been removed or replaced; only keep trying while it is live.
                if node.is_marked(guard) || attempts > 64 {
                    return;
                }
                hint = left;
                continue;
            }
            let node_prev = read_resolved(&node.prev, guard);
            let desired = tagged::pack(left as *const Node<V>);
            if node_prev == desired {
                break;
            }
            let left_status = left.status.load(Ordering::SeqCst);
            if left_status & STATUS_STOP != 0 {
                hint = self.head(top);
                continue;
            }
            // SAFETY: the guard word is `left`'s status, kept valid by the pool.
            let res = unsafe {
                dcss(
                    &node.prev,
                    node_prev,
                    desired,
                    &left.status as *const AtomicU64,
                    left_status,
                    self.config.mode,
                    guard,
                )
            };
            match res {
                Ok(()) => break,
                Err(_) => {
                    metrics::record(Counter::Restart);
                    backoff.spin();
                    hint = left;
                }
            }
        }
        node.ready.store(1, Ordering::SeqCst);
    }

    /// One-shot best-effort repair making `right.prev` point to `left` (the paper's
    /// `makeDone` before the delete-side trie swing). Exposed for the x-fast trie.
    pub fn ensure_prev(&self, left: NodeRef<'_, V>, right: NodeRef<'_, V>, guard: &Guard) {
        if right.node.is_tail() || right.node.is_head() {
            return;
        }
        let node_prev = read_resolved(&right.node.prev, guard);
        let desired = left.packed();
        if node_prev == desired {
            return;
        }
        let left_status = left.status();
        if left_status & STATUS_STOP != 0 {
            return;
        }
        // SAFETY: the guard word is `left`'s status, kept valid by the pool.
        let _ = unsafe {
            dcss(
                &right.node.prev,
                node_prev,
                desired,
                left.status_word_ptr(),
                left_status,
                self.config.mode,
                guard,
            )
        };
    }

    /// After removing the top-level node `node`, repair the `prev` guide of its
    /// successor so that the backwards direction no longer routes through `node`
    /// (Algorithm 2's repeat-until loop). `hint` seeds the search (any node; the
    /// search validates and falls back to the head on a bad hint).
    fn repair_after_top_delete(&self, node: &Node<V>, hint: &Node<V>, guard: &Guard) {
        let top = self.top_level();
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let (left, right) = self.list_search(top, node.key_value(), hint, guard);
            if right.is_tail() {
                return;
            }
            self.fix_prev(Some(left), right, guard);
            if !right.is_marked(guard) || attempts > 64 {
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Removes one tower node from its level: flags its status (so no new guides or
    /// trie pointers can be swung to it), wins the mark CAS, physically unlinks it,
    /// and — for top-level nodes — repairs the successor's `prev`. Returns `true` iff
    /// this call won the mark (and therefore owns the node's retirement).
    ///
    /// `hint` seeds every internal search (callers pass the level predecessor they
    /// already hold, e.g. from `find_preds`); searching from the head sentinel here
    /// would make each delete `O(level length)` instead of `O(spacing)`.
    pub(crate) fn remove_tower_node(
        &self,
        level: u8,
        node: &Node<V>,
        hint: &Node<V>,
        guard: &Guard,
    ) -> bool {
        node.set_stop();
        let mut backoff = Backoff::new();
        loop {
            let next = read_resolved(&node.next, guard);
            if tagged::is_marked(next) {
                // Someone else won; make sure it is physically gone and report.
                let _ = self.list_search(level, node.key_value(), hint, guard);
                return false;
            }
            // Record a back hint pointing at the current predecessor before marking,
            // so traversals stranded on this node can retreat (Section 2).
            let (left, _right) = self.list_search(level, node.key_value(), hint, guard);
            node.back
                .store(tagged::pack(left as *const Node<V>), Ordering::SeqCst);
            match cas_resolved(&node.next, next, tagged::with_mark(next), guard) {
                Ok(()) => break,
                Err(_) => {
                    metrics::record(Counter::Restart);
                    backoff.spin();
                }
            }
        }
        // Physically unlink (list_search unlinks marked nodes it encounters).
        let _ = self.list_search(level, node.key_value(), hint, guard);
        if level == self.top_level() {
            self.repair_after_top_delete(node, hint, guard);
        }
        true
    }

    /// Deletes `key`, starting the search from `start` (top-level hint) or the head.
    ///
    /// Tower nodes are removed **top-down** (Section 2), so a traversal can never find
    /// an upper-level node whose lower levels are already gone. See [`DeleteOutcome`]
    /// for the caller's responsibilities regarding the unlinked top-level node.
    pub fn delete_from<'g>(
        &'g self,
        key: u64,
        start: Option<NodeRef<'g, V>>,
        guard: &'g Guard,
    ) -> DeleteOutcome<'g, V> {
        let top = self.top_level();
        let start_node = self.start_or_head(start);
        let preds = self.find_preds(key, start_node, guard);
        let (_l0, r0) = preds[0];
        if !(r0.is_data() && r0.key_value() == key) {
            return DeleteOutcome {
                removed: false,
                root_was_top: false,
                value: None,
                top_to_retire: None,
            };
        }
        let root = r0;
        let root_was_top = root.orig_height() == top;
        // Capture the value before the node can be recycled.
        // SAFETY: `root` is a live level-0 node reached via a verified traversal.
        let value = unsafe { (*root.value.get()).clone() };
        // Stop the tower: racing inserts will not raise it further (Section 2).
        root.set_stop();

        let root_word = tagged::pack(root as *const Node<V>);
        let mut top_to_retire: Option<NodeRef<'g, V>> = None;
        // Tower nodes this call wins are retired together: one deferred closure (and
        // one pool-lock acquisition) per delete instead of one per node.
        let mut retire_batch: Vec<*mut Node<V>> = Vec::new();

        // Remove upper tower nodes, top-down.
        for level in (1..=top).rev() {
            let (l, r) = self.list_search(level, key, preds[level as usize].0, guard);
            if !(r.is_data() && r.key_value() == key) {
                continue;
            }
            if r.root.load(Ordering::SeqCst) != root_word {
                // A node with the same key but from a different tower (e.g. a remnant
                // of another incarnation); not ours to remove.
                continue;
            }
            if self.remove_tower_node(level, r, l, guard) {
                if level == top {
                    // Retirement deferred to the caller (trie cleanup first).
                    top_to_retire = Some(NodeRef::new(r));
                } else {
                    // We won the mark and unlinked the node; nothing else references
                    // it — batched for retirement below.
                    retire_batch.push(r as *const Node<V> as *mut Node<V>);
                }
            }
        }

        // Remove the root (level 0). Whoever wins this mark performed the delete.
        let won = self.remove_tower_node(0, root, preds[0].0, guard);
        if won {
            self.len_counter().fetch_sub(1, Ordering::SeqCst);
            if top == 0 {
                // Single-level list: the root *is* the top-level node.
                top_to_retire = Some(NodeRef::new(root));
            } else {
                // We won the mark and unlinked the root; upper levels of this tower
                // were removed (or never existed) beforehand.
                retire_batch.push(root as *const Node<V> as *mut Node<V>);
            }
        }
        if !retire_batch.is_empty() {
            let pool = Arc::clone(self.pool());
            // The batch is freed atomically, so it carries the *minimum* member
            // birth — an over-young stamp would let an older member escape a
            // stalled reader's hazard interval.
            let birth = retire_batch
                .iter()
                // SAFETY: batch members were unlinked by mark CASes this call won;
                // pool memory is type-stable, so the field read is defined.
                .map(|&p| unsafe { (*p).birth.load(Ordering::SeqCst) })
                .min()
                .unwrap_or(0);
            // SAFETY: every node in the batch was unlinked by a mark CAS this call
            // won, is recycled exactly once, and the pool is kept alive by the Arc.
            unsafe {
                guard.defer_unchecked_born(birth, move || pool.recycle_batch(retire_batch));
            }
        }
        DeleteOutcome {
            removed: won,
            root_was_top,
            value: if won { value } else { None },
            top_to_retire,
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The largest key `<= key` (and its value), searching from `start` (top-level
    /// hint from the x-fast trie) or from the head sentinel.
    pub fn predecessor_from<'g>(
        &'g self,
        key: u64,
        start: Option<NodeRef<'g, V>>,
        guard: &'g Guard,
    ) -> Option<(u64, V)> {
        let start_node = self.start_or_head(start);
        let preds = self.find_preds(key, start_node, guard);
        let (l0, r0) = preds[0];
        if r0.is_data() && r0.key_value() == key {
            // SAFETY: level-0 data node reached via verified traversal.
            let v = unsafe { (*r0.value.get()).clone() };
            return v.map(|v| (key, v));
        }
        if !l0.is_data() {
            return None;
        }
        // SAFETY: as above.
        let v = unsafe { (*l0.value.get()).clone() };
        v.map(|v| (l0.key_value(), v))
    }

    /// The smallest key `>= key` (and its value), searching from `start` or the head.
    pub fn successor_from<'g>(
        &'g self,
        key: u64,
        start: Option<NodeRef<'g, V>>,
        guard: &'g Guard,
    ) -> Option<(u64, V)> {
        let start_node = self.start_or_head(start);
        let preds = self.find_preds(key, start_node, guard);
        let (_l0, r0) = preds[0];
        if !r0.is_data() {
            return None;
        }
        // SAFETY: level-0 data node reached via verified traversal.
        let v = unsafe { (*r0.value.get()).clone() };
        v.map(|v| (r0.key_value(), v))
    }

    /// Exact-match descent: the level-0 (root) node of `key`'s tower, or `None`.
    ///
    /// Unlike the predecessor query this exits at the *first* level where the key's
    /// tower appears (saving the rest of the descent — for a tower of height `h` the
    /// search inspects `levels - h` levels instead of all of them) and touches no
    /// value at all on a miss.
    ///
    /// The early exit hops from an upper tower node to its root via the `root`
    /// pointer, which may be stale for a remnant of an aborted incarnation, so the
    /// root is validated before use: it must carry level tag 0, the queried key, and
    /// be unmarked. A node observed *unmarked under this pin* cannot be poisoned
    /// (recycled) until the pin ends — marking precedes unlinking precedes the
    /// retire-defer, and a deferral registered after this pin began cannot execute
    /// until the pin ends — so reading its value afterwards is well-defined.
    fn find_exact<'g>(
        &'g self,
        key: u64,
        start: Option<NodeRef<'g, V>>,
        guard: &'g Guard,
    ) -> Option<&'g Node<V>> {
        let mut start_node = self.start_or_head(start);
        for level in (0..self.levels()).rev() {
            let (l, r) = self.list_search(level, key, start_node, guard);
            if r.is_data() && r.key_value() == key {
                let root_w = r.root.load(Ordering::SeqCst);
                if !tagged::is_null(root_w) {
                    // SAFETY: root pointers reference pool-kept (type-stable) nodes of
                    // this structure, so the dereference is defined even if stale; the
                    // checks below reject every stale possibility.
                    let root: &Node<V> = unsafe { &*tagged::unpack(root_w) };
                    if root.level() == 0
                        && root.is_data()
                        && root.key_value() == key
                        && !root.is_marked(guard)
                    {
                        return Some(root);
                    }
                }
                // Stale root (aborted-incarnation remnant, or the tower is mid-delete):
                // fall through and keep descending — level 0 is authoritative.
            }
            if level == 0 {
                return None;
            }
            let down = l.down.load(Ordering::SeqCst);
            start_node = if tagged::is_null(down) {
                self.head(level - 1)
            } else {
                // SAFETY: `down` pointers reference the same tower one level below
                // (same argument as in `find_preds`).
                unsafe { &*tagged::unpack(down) }
            };
        }
        None
    }

    /// Returns a clone of the value stored under exactly `key`, searching from
    /// `start` (top-level hint) or the head. Exits early on an upper-level match and
    /// clones nothing on a miss (see [`SkipList::get`]).
    pub fn get_from<'g>(
        &'g self,
        key: u64,
        start: Option<NodeRef<'g, V>>,
        guard: &'g Guard,
    ) -> Option<V> {
        let root = self.find_exact(key, start, guard)?;
        // SAFETY: `root` was observed unmarked under this pin (see `find_exact`), so
        // its value slot cannot be concurrently poisoned or re-initialized.
        unsafe { (*root.value.get()).clone() }
    }

    /// True if exactly `key` is present; clones nothing (see [`SkipList::get_from`]).
    pub fn contains_from<'g>(
        &'g self,
        key: u64,
        start: Option<NodeRef<'g, V>>,
        guard: &'g Guard,
    ) -> bool {
        self.find_exact(key, start, guard).is_some()
    }

    /// The smallest live key, found with a single level-0 search from the head (the
    /// head *is* the minimum's predecessor on every level, so no hint can beat it).
    pub fn first_key(&self, guard: &Guard) -> Option<u64> {
        let (_l, r) = self.list_search(0, 0, self.head(0), guard);
        r.is_data().then(|| r.key_value())
    }

    /// The largest live key, searching from `start` (top-level hint) or the head.
    pub fn last_key_from<'g>(
        &'g self,
        start: Option<NodeRef<'g, V>>,
        guard: &'g Guard,
    ) -> Option<u64> {
        let start_node = self.start_or_head(start);
        let preds = self.find_preds(u64::MAX, start_node, guard);
        let (l0, r0) = preds[0];
        if r0.is_data() && r0.key_value() == u64::MAX {
            Some(u64::MAX)
        } else if l0.is_data() {
            Some(l0.key_value())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SkipListConfig;
    use std::collections::BTreeMap;

    fn small_list() -> SkipList<u64> {
        SkipList::new(SkipListConfig::for_universe_bits(32).with_seed(99))
    }

    #[test]
    fn insert_get_remove_sequence_matches_btreemap() {
        let list = small_list();
        let mut model = BTreeMap::new();
        // A deterministic pseudo-random operation sequence.
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..4_000 {
            let op = next() % 3;
            let key = next() % 512;
            match op {
                0 => {
                    let expected = model.insert(key, key * 7).is_none();
                    if !expected {
                        model.insert(key, *model.get(&key).unwrap()); // keep old
                    }
                    assert_eq!(list.insert(key, key * 7), expected, "insert {key}");
                }
                1 => {
                    let expected = model.remove(&key);
                    assert_eq!(list.remove(key), expected, "remove {key}");
                }
                _ => {
                    let expected = model.range(..=key).next_back().map(|(k, v)| (*k, *v));
                    assert_eq!(list.predecessor(key), expected, "predecessor {key}");
                    let expected_succ = model.range(key..).next().map(|(k, v)| (*k, *v));
                    assert_eq!(list.successor(key), expected_succ, "successor {key}");
                }
            }
        }
        let snapshot: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(list.to_vec(), snapshot);
        assert_eq!(list.len(), model.len());
    }

    #[test]
    fn towers_appear_on_upper_levels() {
        let list = small_list();
        for key in 0..2_000u64 {
            list.insert(key, key);
        }
        let lengths = list.level_lengths();
        assert_eq!(lengths[0], 2_000);
        for window in lengths.windows(2) {
            assert!(
                window[1] <= window[0],
                "higher levels cannot be denser: {lengths:?}"
            );
        }
        assert!(
            *lengths.last().unwrap() > 0,
            "with 2000 keys and 5 levels the top level is populated with overwhelming probability"
        );
        // Top-level keys are a subset of all keys and sorted.
        let top_keys = list.top_level_keys();
        assert!(top_keys.windows(2).all(|w| w[0] < w[1]));
        assert!(top_keys.iter().all(|k| *k < 2_000));
    }

    #[test]
    fn delete_removes_all_tower_levels() {
        let list = small_list();
        for key in 0..1_000u64 {
            list.insert(key, key);
        }
        for key in 0..1_000u64 {
            assert_eq!(list.remove(key), Some(key));
        }
        assert!(list.is_empty());
        assert_eq!(list.level_lengths(), vec![0; list.levels() as usize]);
        // Re-insertion works fine after a full drain (exercises node recycling).
        for key in 0..1_000u64 {
            assert!(list.insert(key, key + 1));
        }
        assert_eq!(list.len(), 1_000);
        assert_eq!(list.get(500), Some(501));
    }

    #[test]
    fn predecessor_and_successor_edge_cases() {
        let list = small_list();
        list.insert(10, 1);
        list.insert(u64::MAX, 2);
        list.insert(0, 3);
        assert_eq!(list.predecessor(0), Some((0, 3)));
        assert_eq!(list.predecessor(9), Some((0, 3)));
        assert_eq!(list.predecessor(u64::MAX), Some((u64::MAX, 2)));
        assert_eq!(list.successor(0), Some((0, 3)));
        assert_eq!(list.successor(11), Some((u64::MAX, 2)));
        assert_eq!(list.successor(u64::MAX), Some((u64::MAX, 2)));
        list.remove(0);
        assert_eq!(list.predecessor(5), None);
    }

    #[test]
    fn top_level_nodes_get_prev_guides() {
        let list = small_list();
        for key in 0..4_000u64 {
            list.insert(key, key);
        }
        let guard = list.pin();
        let top_keys = list.top_level_keys();
        assert!(
            top_keys.len() > 1,
            "need at least two top nodes for this test"
        );
        // Walk the top level and check that each node's prev guide points to a node
        // with a strictly smaller key (or the head) once the structure is quiescent.
        let (_, mut node) = list.top_list_search(0, None, &guard);
        let mut checked = 0;
        while node.is_data() {
            let prev_word = read_resolved(&node.node.prev, &guard);
            if !tagged::is_null(prev_word) {
                // SAFETY: test runs single-threaded; nodes are alive.
                let prev: &Node<u64> = unsafe { &*tagged::unpack(prev_word) };
                assert!(
                    prev.is_head() || prev.key_value() < node.key(),
                    "prev guide must strictly decrease"
                );
                checked += 1;
            }
            let (_, next) = list.top_list_search(node.key() + 1, Some(node), &guard);
            if !next.is_data() {
                break;
            }
            node = next;
        }
        assert!(checked > 0, "at least some prev guides were set");
    }

    #[test]
    fn insert_from_reports_top_node() {
        let list = small_list();
        let mut saw_top = false;
        for key in 0..2_000u64 {
            let guard = list.pin();
            if let InsertOutcome::Inserted {
                top_node: Some(top),
            } = list.insert_from(key, key, None, &guard)
            {
                assert_eq!(top.key(), key);
                assert_eq!(top.level(), list.top_level());
                assert!(!top.is_stopped());
                saw_top = true;
            }
        }
        assert!(
            saw_top,
            "roughly 1/16 of 2000 inserts should reach the top level"
        );
    }

    #[test]
    fn delete_outcome_reports_top_responsibility() {
        let list = small_list();
        for key in 0..2_000u64 {
            list.insert(key, key);
        }
        let top_keys = list.top_level_keys();
        let guard = list.pin();
        let victim = top_keys[0];
        let outcome = list.delete_from(victim, None, &guard);
        assert!(outcome.removed);
        assert!(outcome.root_was_top);
        assert_eq!(outcome.value, Some(victim));
        let top = outcome.top_to_retire.expect("we removed a top-level tower");
        assert_eq!(top.key(), victim);
        assert!(top.is_stopped());
        // SAFETY: we own the unlinked node.
        unsafe { list.retire_node(top, &guard) };
        drop(guard);
        assert!(!list.contains(victim));
        assert!(!list.top_level_keys().contains(&victim));
    }
}
