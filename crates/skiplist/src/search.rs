//! Level traversal: the paper's `listSearch` (Section 2), the descent that collects
//! per-level predecessors, and the top-level guide walk used by `xFastTriePred`
//! (Algorithm 4).

use crossbeam_epoch::Guard;
use skiptrie_atomics::dcss::{cas_resolved, read_resolved};
use skiptrie_atomics::tagged;
use skiptrie_metrics::{self as metrics, Counter};
use std::sync::atomic::Ordering;

use crate::node::{Node, NodeRef};
use crate::SkipList;

/// How many `back`/`prev` hops a guide walk follows before giving up and restarting
/// from the head sentinel. The bound only matters under pathological recycling races;
/// falling back to the head is always correct, merely slower.
const WALK_HOP_LIMIT: usize = 256;
/// After this many whole-search restarts, `list_search` starts over from the level's
/// head sentinel instead of the caller's hint.
const SEARCH_RESTART_LIMIT: usize = 3;

impl<V> SkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Turns a start hint into a usable traversal start for `level`: a node on that
    /// level that is (best-effort) unmarked and has key `< x`. Marked hints retreat
    /// along their `back` pointer; live hints whose key is not strictly below `x`
    /// retreat along the top level's `prev` guide — the x-fast walk stops at
    /// `key <= x` (Algorithm 4), so a query for a key that is itself linked on the
    /// top level arrives here pointing at its own node, and discarding that hint
    /// would turn every present-top-level-key query into an O(n) walk from the head
    /// sentinel. Falls back to the head whenever no guide is available (lower levels
    /// keep `prev` null) or the walk looks unproductive.
    fn valid_start<'g>(
        &'g self,
        level: u8,
        x: u64,
        start: &'g Node<V>,
        attempt: usize,
        guard: &'g Guard,
    ) -> &'g Node<V> {
        if attempt > SEARCH_RESTART_LIMIT {
            return self.head(level);
        }
        let mut node = start;
        let mut hops = 0usize;
        loop {
            if node.is_head() && node.level() == level {
                return node;
            }
            // Wrong level or a tail: the hint cannot be used on this level.
            if node.level() != level || node.is_tail() {
                return self.head(level);
            }
            let next = read_resolved(&node.next, guard);
            let marked = tagged::is_marked(next);
            if !marked && !node.key_ge(x) {
                return node;
            }
            let hop = if marked {
                // The hint is logically deleted: retreat along its back pointer.
                metrics::record(Counter::BackPointerFollowed);
                node.back.load(Ordering::SeqCst)
            } else {
                // Live but key >= x (exact-match hint): retreat one `prev` guide.
                metrics::record(Counter::PrevPointerFollowed);
                read_resolved(&node.prev, guard)
            };
            hops += 1;
            if tagged::is_null(hop) || hops > WALK_HOP_LIMIT {
                return self.head(level);
            }
            // SAFETY: `back`/`prev` guides reference nodes of this structure; the
            // pool keeps the memory valid and poisoned fields route us to the head
            // above.
            node = unsafe { &*tagged::unpack(hop) };
        }
    }

    /// The paper's `listSearch(x, start)` on one level: returns `(left, right)` such
    /// that `left.key < x <= right.key`, both were unmarked when observed, and
    /// `left.next == right` held at some point during the call. Marked nodes
    /// encountered along the way are physically unlinked.
    pub(crate) fn list_search<'g>(
        &'g self,
        level: u8,
        x: u64,
        start: &'g Node<V>,
        guard: &'g Guard,
    ) -> (&'g Node<V>, &'g Node<V>) {
        let mut start_node = start;
        let mut attempt = 0usize;
        'restart: loop {
            attempt += 1;
            let left_start = self.valid_start(level, x, start_node, attempt, guard);
            let mut left = left_start;
            let left_next = read_resolved(&left.next, guard);
            if tagged::is_marked(left_next) {
                // The start became marked between validation and the read; retry (the
                // validator will follow its back pointer or reset to the head).
                metrics::record(Counter::Restart);
                start_node = left;
                continue 'restart;
            }
            let mut curr_word = tagged::untagged(left_next);
            loop {
                metrics::record(Counter::PtrRead);
                if tagged::is_null(curr_word) {
                    // Defensive: levels are tail-terminated, so a null successor means
                    // we wandered onto poisoned memory via a stale hint.
                    metrics::record(Counter::Restart);
                    start_node = self.head(level);
                    continue 'restart;
                }
                // SAFETY: node memory is type-stable (pool) and reached while pinned.
                let curr: &Node<V> = unsafe { &*tagged::unpack(curr_word) };
                let curr_next = read_resolved(&curr.next, guard);
                if tagged::is_marked(curr_next) {
                    let succ = tagged::untagged(curr_next);
                    if tagged::is_null(succ) {
                        // Poisoned (pooled) node reached through a stale link; never
                        // splice a null into the list — restart from the head.
                        metrics::record(Counter::Restart);
                        start_node = self.head(level);
                        continue 'restart;
                    }
                    // Physically unlink the logically deleted node.
                    metrics::record(Counter::MarkedNodeSkipped);
                    match cas_resolved(&left.next, curr_word, succ, guard) {
                        Ok(()) => {
                            curr_word = succ;
                            continue;
                        }
                        Err(_) => {
                            metrics::record(Counter::Restart);
                            start_node = left;
                            continue 'restart;
                        }
                    }
                }
                if curr.key_ge(x) {
                    return (left, curr);
                }
                left = curr;
                curr_word = tagged::untagged(curr_next);
            }
        }
    }

    /// Descends from `start_top` (a top-level node with key `< x`, or any usable hint)
    /// collecting the `(left, right)` bracket of `x` on every level, top to bottom.
    /// Index `i` of the returned vector is level `i`.
    pub(crate) fn find_preds<'g>(
        &'g self,
        x: u64,
        start_top: &'g Node<V>,
        guard: &'g Guard,
    ) -> Vec<(&'g Node<V>, &'g Node<V>)> {
        let levels = self.levels();
        let mut brackets: Vec<Option<(&Node<V>, &Node<V>)>> = vec![None; levels as usize];
        let mut start = start_top;
        for level in (0..levels).rev() {
            let (left, right) = self.list_search(level, x, start, guard);
            brackets[level as usize] = Some((left, right));
            if level > 0 {
                let down = left.down.load(Ordering::SeqCst);
                start = if tagged::is_null(down) {
                    self.head(level - 1)
                } else {
                    // SAFETY: `down` pointers reference the same tower one level
                    // below; lower levels are retired only after upper ones, so the
                    // standard epoch argument protects the dereference.
                    unsafe { &*tagged::unpack(down) }
                };
            }
        }
        brackets
            .into_iter()
            .map(|b| b.expect("all levels visited"))
            .collect()
    }

    /// The walk of Algorithm 4 (`xFastTriePred`): starting from a (possibly marked,
    /// possibly stale) top-level hint, follow `back` pointers of marked nodes and
    /// `prev` guides of unmarked nodes until reaching a node whose key is `<= key`,
    /// falling back to the head sentinel if the walk looks unproductive.
    pub fn walk_to_le<'g>(
        &'g self,
        key: u64,
        start: NodeRef<'g, V>,
        guard: &'g Guard,
    ) -> NodeRef<'g, V> {
        let top = self.top_level();
        let mut curr: &Node<V> = start.node;
        let mut hops = 0usize;
        loop {
            if curr.is_head() {
                return NodeRef::new(self.head(top));
            }
            if curr.level() != top || curr.is_tail() {
                // Stale hint (recycled node now living at another level, or poisoned
                // pooled memory): restart from the sentinel.
                return NodeRef::new(self.head(top));
            }
            if curr.key_value() <= key {
                return NodeRef::new(curr);
            }
            let hop = if curr.is_marked(guard) {
                metrics::record(Counter::BackPointerFollowed);
                curr.back.load(Ordering::SeqCst)
            } else {
                metrics::record(Counter::PrevPointerFollowed);
                read_resolved(&curr.prev, guard)
            };
            hops += 1;
            if tagged::is_null(hop) || hops > WALK_HOP_LIMIT {
                return NodeRef::new(self.head(top));
            }
            // SAFETY: guides reference nodes of this structure; pool keeps them valid.
            curr = unsafe { &*tagged::unpack(hop) };
        }
    }

    /// `listSearch` on the top level, exposed for the x-fast trie's delete-side
    /// pointer swings (Algorithm 7 lines 12–17). Returns `(left, right)` bracketing
    /// `key`.
    pub fn top_list_search<'g>(
        &'g self,
        key: u64,
        start: Option<NodeRef<'g, V>>,
        guard: &'g Guard,
    ) -> (NodeRef<'g, V>, NodeRef<'g, V>) {
        let top = self.top_level();
        let start_node = start.map(|r| r.node).unwrap_or_else(|| self.head(top));
        let (l, r) = self.list_search(top, key, start_node, guard);
        (NodeRef::new(l), NodeRef::new(r))
    }
}
