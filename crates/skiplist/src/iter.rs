//! Ordered cursors and range iteration over the level-0 linked list.
//!
//! A predecessor structure answers *point* queries in `O(log log u)`; the workloads
//! the paper motivates it with (calendar queues, routing tables) are *scan* shaped:
//! drain-the-front, walk-a-window, count-a-range. Scanning `k` keys as `k` independent
//! [`SkipList::successor`] calls costs `O(k · log log u)` because every call re-runs
//! the full descent. The bottom level already stores every key in a sorted lock-free
//! linked list, so a scan only needs *one* descent to the start key and then `k`
//! level-0 hops: `O(log log u + k)`.
//!
//! # Validation protocol (how a lock-free scan stays safe)
//!
//! A [`Cursor`] pins the epoch once for its whole lifetime, so every node it reaches
//! through *live* links is protected from recycling until the cursor is dropped. The
//! only dangerous pointers are the frozen `next` words of logically deleted nodes,
//! which may date from before the pin and lead to recycled (poisoned or re-published)
//! pool memory. The cursor therefore never follows a marked node's pointer. Each hop
//! validates, in order:
//!
//! 1. **Mark check** — `curr.next` carries the deletion mark: `curr` died under the
//!    cursor; its frozen pointer is untrustworthy. *Re-seed.*
//! 2. **Poison check** — the successor word is null: only pooled (poisoned) nodes are
//!    null-terminated mid-level. *Re-seed.*
//! 3. **Kind/level check** — the successor is a head, or carries a level tag other
//!    than 0: stale recycle re-published elsewhere. *Re-seed.* (A level-0 tail is the
//!    legitimate end of the scan.)
//! 4. **Order check** — the successor's key is not strictly greater than `curr`'s:
//!    stale recycle re-published at a smaller key. *Re-seed.*
//! 5. **Incarnation check** — the successor's status sequence number moved between
//!    arrival and yielding its value: the pool recycled memory the cursor was
//!    examining (impossible for nodes reached via live links while pinned; this
//!    convicts a stale path the earlier checks missed). *Re-seed, do not yield.*
//!
//! A *re-seed* is a fresh [`list_search`](SkipList) for the smallest key not yet
//! yielded, started from the cursor's current node (whose `back` pointers route a
//! marked start to a live predecessor) rather than the head sentinel — the same
//! hint-threading discipline the delete path uses. Deleted nodes encountered by a hop
//! are helped off the list exactly as `list_search` does, so a scan through a churned
//! region stays `O(k)` and does not re-seed per corpse.
//!
//! # Consistency guarantee (weak, and why that is the right contract)
//!
//! Iteration is **weakly consistent**: every key present for the *entire* duration of
//! the scan is yielded exactly once, in strictly increasing order, and every yielded
//! key was present (unmarked and reachable) at some moment during the scan. Keys
//! inserted or removed *while* the scan runs may or may not appear. A stronger
//! (snapshot) guarantee would require either locking out writers or multi-versioning
//! every node — both of which give up the lock-freedom the paper is about. The weak
//! contract is exactly what the motivating workloads need: an event-queue drain or a
//! routing-table walk must not miss stable entries, must not duplicate, and is
//! inherently racy against concurrent updates anyway.
//!
//! Yields are justified hop by hop: when the cursor stands on an unmarked node `a`
//! and reads `a.next = b`, no live node with a key in `(a.key, b.key)` existed at the
//! instant of that read — so no key that is present throughout can be skipped.

use std::ops::{Bound, RangeBounds};
use std::sync::atomic::Ordering;

use crossbeam_epoch::Guard;
use skiptrie_atomics::dcss::{cas_resolved, read_resolved};
use skiptrie_atomics::tagged;
use skiptrie_metrics::{self as metrics, Counter};

use crate::node::{Node, STATUS_STOP};
use crate::SkipList;

/// Resolves arbitrary `RangeBounds<u64>` into an inclusive `(lo, hi)` pair, or `None`
/// if the range is statically empty (e.g. an excluded start of `u64::MAX`).
pub fn resolve_bounds(range: &impl RangeBounds<u64>) -> Option<(u64, u64)> {
    let lo = match range.start_bound() {
        Bound::Included(&l) => l,
        Bound::Excluded(&l) => l.checked_add(1)?,
        Bound::Unbounded => 0,
    };
    let hi = match range.end_bound() {
        Bound::Included(&h) => h,
        Bound::Excluded(&0) => return None,
        Bound::Excluded(&h) => h - 1,
        Bound::Unbounded => u64::MAX,
    };
    (lo <= hi).then_some((lo, hi))
}

/// An epoch-pinned ordered cursor over a [`SkipList`]'s level-0 linked list.
///
/// Obtained from [`SkipList::cursor`] (or the range APIs built on it); see the
/// [module docs](self) for the validation protocol and the weakly-consistent
/// iteration guarantee. The cursor holds one epoch pin for its entire lifetime:
/// memory retired while it is alive is not reclaimed until it is dropped, so
/// unbounded scans should be chunked if reclamation latency matters.
///
/// # Examples
///
/// ```
/// use skiptrie_skiplist::{SkipList, SkipListConfig};
///
/// let list: SkipList<u64> = SkipList::new(SkipListConfig::for_universe_bits(32));
/// for k in [3u64, 1, 4, 1, 5] {
///     list.insert(k, k * 100);
/// }
/// let mut cursor = list.cursor(2); // first yield: smallest key >= 2
/// assert_eq!(cursor.next_entry(), Some((3, 300)));
/// assert_eq!(cursor.next_key(), Some(4), "key-only advance clones no value");
/// assert_eq!(cursor.next_entry(), Some((5, 500)));
/// assert_eq!(cursor.next_entry(), None);
/// ```
pub struct Cursor<'a, V> {
    list: &'a SkipList<V>,
    guard: Guard,
    /// Packed word of a top-level node to seed the first descent from (0 = none:
    /// descend from the top-level head). Consumed by [`Cursor::ensure_seeded`].
    top_hint: u64,
    /// False until the initial descent to `next_key` has run; set back to false by
    /// [`Cursor::seed_from_packed`] so a late hint re-positions the cursor.
    seeded: bool,
    /// Packed word of the node the cursor stands on (head(0) or a level-0 data node
    /// that was reached through a live link under `guard`).
    curr: u64,
    /// Key of `curr` if it is a data node (`None` for the head sentinel) — the
    /// order-check baseline.
    curr_key: Option<u64>,
    /// Smallest key the cursor may still yield; strictly increases with every yield,
    /// which is what makes "exactly once, in order" trivial.
    next_key: u64,
    exhausted: bool,
}

impl<V> SkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// An epoch-pinned cursor whose first yield is the smallest key `>= seek`.
    ///
    /// The descent to `seek` runs lazily on the first advance, from the top-level
    /// head sentinel — or from a caller-provided top-level hint installed with
    /// [`Cursor::seed_from_packed`] before iterating (the SkipTrie seeds with its
    /// `LowestAncestor` result this way).
    pub fn cursor(&self, seek: u64) -> Cursor<'_, V> {
        Cursor {
            list: self,
            // `self.pin()`, not `epoch::pin()`: the cursor must pin the *list's*
            // epoch domain or a domain-isolated list could recycle under the scan.
            guard: self.pin(),
            top_hint: 0,
            seeded: false,
            curr: tagged::pack(self.head(0) as *const Node<V>),
            curr_key: None,
            next_key: seek,
            exhausted: false,
        }
    }

    /// An iterator over the entries whose keys lie in `range`, in increasing key
    /// order, with the weakly-consistent guarantee described in the [module
    /// docs](self).
    pub fn range(&self, range: impl RangeBounds<u64>) -> RangeIter<'_, V> {
        match resolve_bounds(&range) {
            Some((lo, hi)) => RangeIter {
                cursor: self.cursor(lo),
                hi,
            },
            None => {
                let mut cursor = self.cursor(0);
                cursor.exhausted = true;
                RangeIter { cursor, hi: 0 }
            }
        }
    }
}

impl<V> Cursor<'_, V>
where
    V: Clone + Send + Sync + 'static,
{
    /// The cursor's epoch guard, for computing seed hints under the cursor's pin.
    pub fn guard(&self) -> &Guard {
        &self.guard
    }

    /// Installs a top-level node as the start of the (next) descent: the cursor will
    /// re-position to its current seek key from `hint` instead of the top-level head
    /// on the next advance. This is how the SkipTrie threads its `LowestAncestor`
    /// result into a scan without paying a head-seeded top-level walk.
    ///
    /// # Safety
    ///
    /// `hint` must be [`packed`](crate::NodeRef::packed) of a node of **this**
    /// skiplist, obtained
    /// under **this** cursor's [`guard`](Cursor::guard) (so the node is protected by
    /// the cursor's pin). The descent validates the hint defensively (an unusable
    /// hint degrades to the head sentinel), but the word must be a real node of this
    /// structure for the dereference to be defined.
    pub unsafe fn seed_from_packed(&mut self, hint: u64) {
        self.top_hint = hint;
        self.seeded = false;
    }

    /// Runs the initial (or re-positioning) descent to `next_key` if one is pending.
    fn ensure_seeded(&mut self) {
        if self.seeded {
            return;
        }
        self.seeded = true;
        let start_top: &Node<V> = if tagged::is_null(self.top_hint) {
            self.list.head(self.list.top_level())
        } else {
            // SAFETY: per the `seed_from_packed` contract this is a node of this
            // structure protected by our pin; type-stable pool memory keeps the read
            // defined even if it is stale, and `find_preds`'s start validation
            // retreats to the head if it is unusable.
            unsafe { &*tagged::unpack(self.top_hint) }
        };
        let preds = self.list.find_preds(self.next_key, start_top, &self.guard);
        let l0 = preds[0].0;
        self.curr = tagged::pack(l0 as *const Node<V>);
        self.curr_key = l0.is_data().then(|| l0.key_value());
    }

    /// Advances to the next key `>= next_key` and yields `(key, value)`; `None` once
    /// the end of the list is reached.
    pub fn next_entry(&mut self) -> Option<(u64, V)> {
        self.advance(true)
            .map(|(k, v)| (k, v.expect("value requested")))
    }

    /// Advances like [`Cursor::next_entry`] but skips the value clone — the
    /// counting/draining fast path.
    pub fn next_key(&mut self) -> Option<u64> {
        self.advance(false).map(|(k, _)| k)
    }

    /// Re-seeds the scan with a fresh search for `next_key`, starting from the
    /// cursor's current node (its `back` pointers route a dead start to a live
    /// predecessor; `valid_start` falls back to the head only if the whole chain is
    /// unusable) — never from the head sentinel directly.
    fn reseed(&mut self) {
        metrics::record(Counter::Restart);
        // SAFETY: `curr` always holds a node of this structure (head or a node once
        // reached through live links under our pin); pool memory is type-stable, so
        // the dereference is defined even if it has since been recycled — the search
        // validates it as a start hint and retreats if it is unusable.
        let start: &Node<V> = unsafe { &*tagged::unpack(self.curr) };
        let (left, _right) = self.list.list_search(0, self.next_key, start, &self.guard);
        self.curr = tagged::pack(left as *const Node<V>);
        self.curr_key = left.is_data().then(|| left.key_value());
    }

    /// The shared hop loop (see the module docs for the numbered validation steps).
    fn advance(&mut self, want_value: bool) -> Option<(u64, Option<V>)> {
        if self.exhausted {
            return None;
        }
        self.ensure_seeded();
        loop {
            // SAFETY: `curr` is the head or was reached through a live link under
            // this cursor's pin; type-stable pool memory keeps the read defined.
            let curr: &Node<V> = unsafe { &*tagged::unpack(self.curr) };
            let next = read_resolved(&curr.next, &self.guard);
            if tagged::is_marked(next) {
                // (1) `curr` was deleted under us; its frozen pointer may predate the
                // pin and lead to recycled memory.
                self.reseed();
                continue;
            }
            let w = tagged::untagged(next);
            if tagged::is_null(w) {
                // (2) Poisoned (pooled) memory on the path.
                self.reseed();
                continue;
            }
            metrics::record(Counter::PtrRead);
            // SAFETY: `curr` was unmarked at the read above, so `w` was its live
            // successor — linked, and therefore protected by our pin.
            let node: &Node<V> = unsafe { &*tagged::unpack(w) };
            if node.level() != 0 || node.is_head() {
                // (3) Stale recycle re-published at another level (or a head).
                self.reseed();
                continue;
            }
            if node.is_tail() {
                self.exhausted = true;
                return None;
            }
            let seq_before = node.status.load(Ordering::SeqCst) & !STATUS_STOP;
            let key = node.key_value();
            if self.curr_key.is_some_and(|ck| key <= ck) {
                // (4) Keys must strictly increase along level 0.
                self.reseed();
                continue;
            }
            let node_next = read_resolved(&node.next, &self.guard);
            if tagged::is_marked(node_next) {
                // `node` is logically deleted: do not yield it, and do not trust its
                // frozen pointer. Help unlink it (exactly as `list_search` would) and
                // retry from `curr`; if the help CAS fails because `curr` moved on,
                // the loop re-reads and, at worst, re-seeds.
                let succ = tagged::untagged(node_next);
                if tagged::is_null(succ) {
                    self.reseed();
                    continue;
                }
                metrics::record(Counter::MarkedNodeSkipped);
                let _ = cas_resolved(&curr.next, w, succ, &self.guard);
                continue;
            }
            if key < self.next_key {
                // Below the scan window (a predecessor seed or a re-seed landed us
                // here): step onto it and keep walking.
                self.curr = w;
                self.curr_key = Some(key);
                continue;
            }
            let value = if want_value {
                // SAFETY: a level-0 data node's value is set before publication and
                // dropped only on recycle, which our pin forbids for linked nodes.
                Some(unsafe { (*node.value.get()).clone() })
            } else {
                None
            };
            let seq_after = node.status.load(Ordering::SeqCst) & !STATUS_STOP;
            if seq_after != seq_before || node.key_value() != key {
                // (5) Incarnation moved while we examined the node: stale path.
                self.reseed();
                continue;
            }
            let value = match value {
                Some(None) => {
                    // The value slot was already cleared (recycle racing a stale
                    // path); the incarnation check above should have caught it, but
                    // never yield an empty value.
                    self.reseed();
                    continue;
                }
                Some(Some(v)) => Some(v),
                None => None,
            };
            self.curr = w;
            self.curr_key = Some(key);
            if key == u64::MAX {
                self.exhausted = true;
            } else {
                self.next_key = key + 1;
            }
            return Some((key, value));
        }
    }
}

/// A bounded, weakly-consistent range iterator over a [`SkipList`] (see
/// [`SkipList::range`] and the [module docs](self)).
pub struct RangeIter<'a, V> {
    cursor: Cursor<'a, V>,
    /// Inclusive upper bound.
    hi: u64,
}

impl<V> RangeIter<'_, V>
where
    V: Clone + Send + Sync + 'static,
{
    /// The iterator's epoch guard, for computing seed hints under its pin.
    pub fn guard(&self) -> &Guard {
        self.cursor.guard()
    }

    /// Installs a top-level descent hint on the underlying cursor.
    ///
    /// # Safety
    ///
    /// Same contract as [`Cursor::seed_from_packed`].
    pub unsafe fn seed_from_packed(&mut self, hint: u64) {
        self.cursor.seed_from_packed(hint);
    }

    /// Advances without cloning the value — the counting fast path.
    pub fn next_key(&mut self) -> Option<u64> {
        let key = self.cursor.next_key()?;
        if key > self.hi {
            self.cursor.exhausted = true;
            return None;
        }
        Some(key)
    }

    /// Visits up to `limit` further entries without cloning values, returning how
    /// many were visited — the bounded-scan primitive the workload drivers share.
    pub fn count_up_to(&mut self, limit: usize) -> usize {
        let mut seen = 0usize;
        while seen < limit && self.next_key().is_some() {
            seen += 1;
        }
        seen
    }
}

impl<V> Iterator for RangeIter<'_, V>
where
    V: Clone + Send + Sync + 'static,
{
    type Item = (u64, V);

    fn next(&mut self) -> Option<(u64, V)> {
        let (key, value) = self.cursor.next_entry()?;
        if key > self.hi {
            self.cursor.exhausted = true;
            return None;
        }
        Some((key, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SkipListConfig;

    fn filled(keys: impl IntoIterator<Item = u64>) -> SkipList<u64> {
        let list = SkipList::new(SkipListConfig::for_universe_bits(32).with_seed(5));
        for k in keys {
            list.insert(k, k.wrapping_mul(10));
        }
        list
    }

    #[test]
    fn resolve_bounds_matches_std_semantics() {
        assert_eq!(resolve_bounds(&(..)), Some((0, u64::MAX)));
        assert_eq!(resolve_bounds(&(5..10)), Some((5, 9)));
        assert_eq!(resolve_bounds(&(5..=10)), Some((5, 10)));
        assert_eq!(resolve_bounds(&(5..5)), None);
        assert_eq!(
            resolve_bounds(&(Bound::Included(10), Bound::Included(5))),
            None,
            "reversed bounds are empty"
        );
        assert_eq!(resolve_bounds(&(..0)), None);
        assert_eq!(
            resolve_bounds(&(Bound::Excluded(u64::MAX), Bound::Unbounded)),
            None
        );
        assert_eq!(
            resolve_bounds(&(Bound::Excluded(3), Bound::Included(4))),
            Some((4, 4))
        );
    }

    #[test]
    fn range_yields_in_order_with_bounds() {
        let list = filled([5, 1, 9, 3, 7, 200, 100]);
        let got: Vec<(u64, u64)> = list.range(3..=100).collect();
        assert_eq!(got, vec![(3, 30), (5, 50), (7, 70), (9, 90), (100, 1000)]);
        let all: Vec<u64> = list.range(..).map(|(k, _)| k).collect();
        assert_eq!(all, vec![1, 3, 5, 7, 9, 100, 200]);
        assert_eq!(list.range(10..100).count(), 0);
        assert_eq!(list.range(201..).count(), 0);
    }

    #[test]
    fn empty_and_degenerate_ranges() {
        let list = filled([1, 2, 3]);
        assert_eq!(list.range(2..2).count(), 0);
        let empty: SkipList<u64> = SkipList::new(SkipListConfig::for_universe_bits(16));
        assert_eq!(empty.range(..).count(), 0);
    }

    #[test]
    fn cursor_skips_keys_removed_mid_scan_and_sees_stable_ones() {
        let list = filled(0..100);
        let mut cursor = list.cursor(0);
        let mut seen = Vec::new();
        for _ in 0..10 {
            seen.push(cursor.next_entry().unwrap().0);
        }
        // Remove everything the cursor has not reached yet except the stable tail.
        for k in 10..90 {
            list.remove(k);
        }
        while let Some((k, _)) = cursor.next_entry() {
            seen.push(k);
        }
        let expected: Vec<u64> = (0..10).chain(90..100).collect();
        assert_eq!(
            seen, expected,
            "stable keys all seen, removed window skipped"
        );
    }

    #[test]
    fn cursor_sees_max_key_and_terminates() {
        let list = filled([0, u64::MAX, 17]);
        let mut c = list.cursor(0);
        assert_eq!(c.next_entry(), Some((0, 0)));
        assert_eq!(c.next_key(), Some(17));
        assert_eq!(c.next_entry(), Some((u64::MAX, u64::MAX.wrapping_mul(10))));
        assert_eq!(c.next_entry(), None);
        assert_eq!(c.next_key(), None, "stays exhausted");
    }

    #[test]
    fn range_iter_next_key_respects_bound() {
        let list = filled([1, 2, 3, 4]);
        let mut it = list.range(2..=3);
        assert_eq!(it.next_key(), Some(2));
        assert_eq!(it.next_key(), Some(3));
        assert_eq!(it.next_key(), None);
        assert_eq!(it.next(), None);
    }
}
