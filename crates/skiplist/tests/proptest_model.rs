//! Property-based and concurrent stress tests for the truncated skiplist. The
//! concurrent tests run on the shared `skiptrie_workloads::harness` (barrier-started
//! workers, per-worker deterministic RNGs, `SKIPTRIE_SCALE`-aware iteration counts).

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use skiptrie_skiplist::{SkipList, SkipListConfig};
use skiptrie_workloads::harness::{scaled, Workload};

#[derive(Debug, Clone)]
enum ListOp {
    Insert(u32),
    Remove(u32),
    Pred(u32),
    Succ(u32),
    Get(u32),
}

fn op_strategy() -> impl Strategy<Value = ListOp> {
    prop_oneof![
        any::<u32>().prop_map(ListOp::Insert),
        any::<u32>().prop_map(ListOp::Remove),
        any::<u32>().prop_map(ListOp::Pred),
        any::<u32>().prop_map(ListOp::Succ),
        any::<u32>().prop_map(ListOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary single-threaded histories agree with a BTreeMap model for any level
    /// count from 1 (a plain lock-free list) to 6 (a 64-bit-universe SkipTrie substrate).
    #[test]
    fn agrees_with_btreemap(
        levels in 1u8..=6,
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        let list: SkipList<u32> = SkipList::new(SkipListConfig {
            levels,
            ..SkipListConfig::for_universe_bits(32)
        });
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for op in ops {
            match op {
                ListOp::Insert(k) => {
                    let k64 = k as u64;
                    let expected = !model.contains_key(&k64);
                    if expected {
                        model.insert(k64, k);
                    }
                    prop_assert_eq!(list.insert(k64, k), expected);
                }
                ListOp::Remove(k) => {
                    prop_assert_eq!(list.remove(k as u64), model.remove(&(k as u64)));
                }
                ListOp::Pred(k) => {
                    let expected = model.range(..=(k as u64)).next_back().map(|(a, b)| (*a, *b));
                    prop_assert_eq!(list.predecessor(k as u64), expected);
                }
                ListOp::Succ(k) => {
                    let expected = model.range((k as u64)..).next().map(|(a, b)| (*a, *b));
                    prop_assert_eq!(list.successor(k as u64), expected);
                }
                ListOp::Get(k) => {
                    prop_assert_eq!(list.get(k as u64), model.get(&(k as u64)).copied());
                }
            }
        }
        prop_assert_eq!(list.len(), model.len());
        let expected: Vec<(u64, u32)> = model.into_iter().collect();
        prop_assert_eq!(list.to_vec(), expected);
    }

    /// Level populations are always monotonically non-increasing with height and the
    /// snapshot is sorted — for any insertion order.
    #[test]
    fn structural_invariants(keys in proptest::collection::hash_set(any::<u16>(), 1..500)) {
        let list: SkipList<u16> = SkipList::new(SkipListConfig::for_universe_bits(16));
        for &k in &keys {
            prop_assert!(list.insert(k as u64, k));
        }
        let lengths = list.level_lengths();
        prop_assert_eq!(lengths[0], keys.len());
        for w in lengths.windows(2) {
            prop_assert!(w[1] <= w[0]);
        }
        let snapshot = list.keys();
        prop_assert!(snapshot.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(snapshot.len(), keys.len());
    }
}

/// Concurrent smoke stress: racing inserts and removes over a shared small key range,
/// then a deterministic drain — run as a plain test so it is exercised on every
/// `cargo test` invocation.
#[test]
fn concurrent_churn_stress() {
    let list: Arc<SkipList<u64>> = Arc::new(SkipList::new(SkipListConfig::for_universe_bits(32)));
    let iters = scaled(30_000) as u64;
    Workload::new(0)
        .workers(8, |mut ctx| {
            for i in 0..iters {
                let key = ctx.rng.next() % 2_048;
                if i % 2 == 0 {
                    list.insert(key, key);
                } else {
                    list.remove(key);
                }
            }
        })
        .run();
    // Quiescent invariants.
    let keys = list.keys();
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(keys.len(), list.len());
    for &k in &keys {
        assert_eq!(list.get(k), Some(k));
    }
    // Drain.
    for k in keys {
        assert_eq!(list.remove(k), Some(k));
    }
    assert!(list.is_empty());
    assert_eq!(list.level_lengths().iter().sum::<usize>(), 0);
}

/// Concurrent readers never see values that were never inserted and predecessor never
/// exceeds the query, even while writers churn.
#[test]
fn concurrent_readers_and_writers() {
    let list: Arc<SkipList<u64>> = Arc::new(SkipList::new(SkipListConfig::for_universe_bits(24)));
    for k in (0..1u64 << 16).step_by(64) {
        list.insert(k, k + 1);
    }
    let iters = scaled(50_000);
    Workload::new(0xabc)
        .workers(3, |mut ctx| {
            for _ in 0..iters {
                let key = ctx.rng.next() % (1 << 16);
                if key % 64 != 0 {
                    if ctx.rng.next() % 2 == 0 {
                        list.insert(key, key + 1);
                    } else {
                        list.remove(key);
                    }
                }
            }
        })
        .workers(3, |mut ctx| {
            for _ in 0..iters {
                let q = ctx.rng.next() % (1 << 16);
                if let Some((k, v)) = list.predecessor(q) {
                    assert!(k <= q);
                    assert_eq!(v, k + 1, "value always key+1 in this test");
                    // A stable anchor at floor(q/64)*64 always exists.
                    assert!(k >= (q / 64) * 64);
                } else {
                    panic!("anchor keys guarantee a predecessor for every query");
                }
            }
        })
        .run();
}
