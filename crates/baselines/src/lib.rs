//! Baseline ordered structures the SkipTrie paper compares against.
//!
//! The paper's introduction frames the SkipTrie against two families:
//!
//! * **Concurrent structures with `Θ(log m)` depth** — "all concurrent search
//!   structures that support predecessor queries have had depth and search time that
//!   is logarithmic in m". [`FullSkipList`] (the truncated skiplist substrate
//!   configured at full height) and [`LockedBTreeMap`] (a coarse reader-writer-locked
//!   `BTreeMap`) represent this family in the experiments.
//! * **Sequential `O(log log u)` structures** — Willard's x-fast and y-fast tries,
//!   which the SkipTrie makes concurrent. [`SeqXFastTrie`] and [`SeqYFastTrie`] are
//!   faithful single-threaded implementations used both as complexity references and
//!   as correctness oracles.
//!
//! All baselines expose the same `insert / remove / get / predecessor / successor`
//! shape as the SkipTrie so the experiment harness can swap them freely.

#![warn(missing_docs)]

mod locked_btree;
mod lockfree_skiplist;
mod seq_xfast;
mod seq_yfast;

pub use locked_btree::LockedBTreeMap;
pub use lockfree_skiplist::FullSkipList;
pub use seq_xfast::SeqXFastTrie;
pub use seq_yfast::SeqYFastTrie;
