//! A sequential y-fast trie (Willard 1983), the structure whose rebalancing the
//! SkipTrie's probabilistic sampling replaces.
//!
//! Keys are grouped into buckets of `Θ(log u)` consecutive keys; one representative
//! per bucket is stored in an x-fast trie ([`crate::SeqXFastTrie`]); buckets are
//! ordinary balanced trees (`BTreeMap`). When a bucket grows beyond `2 log u` it is
//! split, when it shrinks below `log u / 4` it is merged with a neighbour — exactly
//! the "take keys in and out of the x-fast trie to make sure they are well spaced-out"
//! bookkeeping the paper's introduction describes (and the SkipTrie avoids).

use std::collections::BTreeMap;

use crate::SeqXFastTrie;

/// A sequential y-fast trie over `universe_bits`-bit keys.
///
/// # Examples
///
/// ```
/// use skiptrie_baselines::SeqYFastTrie;
///
/// let mut trie = SeqYFastTrie::new(16);
/// for k in 0..100u64 {
///     trie.insert(k, k * 2);
/// }
/// assert_eq!(trie.predecessor(55), Some((55, 110)));
/// assert_eq!(trie.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct SeqYFastTrie<V> {
    universe_bits: u32,
    /// Representative keys (each bucket's current minimum at creation time) indexed in
    /// an x-fast trie; values are unused.
    reps: SeqXFastTrie<()>,
    /// Buckets keyed by their representative.
    buckets: BTreeMap<u64, BTreeMap<u64, V>>,
    len: usize,
    /// Counters for the amortization experiment (splits/merges performed).
    splits: usize,
    merges: usize,
}

impl<V: Clone> SeqYFastTrie<V> {
    /// Creates an empty trie over a `universe_bits`-bit universe.
    ///
    /// # Panics
    ///
    /// Panics if `universe_bits` is not in `1..=64`.
    pub fn new(universe_bits: u32) -> Self {
        SeqYFastTrie {
            universe_bits,
            reps: SeqXFastTrie::new(universe_bits),
            buckets: BTreeMap::new(),
            len: 0,
            splits: 0,
            merges: 0,
        }
    }

    fn bucket_max(&self) -> usize {
        (2 * self.universe_bits as usize).max(4)
    }

    fn bucket_min(&self) -> usize {
        (self.universe_bits as usize / 4).max(1)
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(bucket_count, splits_performed, merges_performed)` — the explicit rebalancing
    /// work the SkipTrie does away with (experiment E3 reports this).
    pub fn rebalance_stats(&self) -> (usize, usize, usize) {
        (self.buckets.len(), self.splits, self.merges)
    }

    /// The current bucket layout as `(representative, min_key, max_key, len)` tuples,
    /// in representative order. Intended for tests and structural experiments.
    pub fn bucket_layout(&self) -> Vec<(u64, Option<u64>, Option<u64>, usize)> {
        self.buckets
            .iter()
            .map(|(rep, b)| {
                (
                    *rep,
                    b.keys().next().copied(),
                    b.keys().next_back().copied(),
                    b.len(),
                )
            })
            .collect()
    }

    /// The representative of the bucket that should contain `key`.
    fn bucket_rep_for(&self, key: u64) -> Option<u64> {
        match self.reps.predecessor(key) {
            Some((rep, ())) => Some(rep),
            None => self.reps.successor(key).map(|(rep, ())| rep),
        }
    }

    /// True if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Entries whose keys lie in `range`, in key order — `O(log u + k)` via the
    /// bucket list (find the first candidate bucket, then walk buckets in order).
    /// Used as the sequential oracle for the concurrent range scans.
    pub fn range(&self, range: impl std::ops::RangeBounds<u64>) -> Vec<(u64, V)> {
        let Some((lo, hi)) = skiptrie_skiplist::resolve_bounds(&range) else {
            return Vec::new();
        };
        // The bucket containing `lo` may be keyed by a representative below it.
        let first_rep = self
            .buckets
            .range(..=lo)
            .next_back()
            .map(|(r, _)| *r)
            .unwrap_or(lo);
        let mut out = Vec::new();
        for (_rep, bucket) in self.buckets.range(first_rep..=hi) {
            for (k, v) in bucket.range(lo..=hi) {
                out.push((*k, v.clone()));
            }
        }
        out
    }

    /// Returns a clone of the value stored under `key`.
    pub fn get(&self, key: u64) -> Option<V> {
        let rep = self.bucket_rep_for(key)?;
        self.buckets.get(&rep)?.get(&key).cloned()
    }

    /// Inserts `key -> value`; returns `true` if the key was absent.
    pub fn insert(&mut self, key: u64, value: V) -> bool {
        match self.bucket_rep_for(key) {
            None => {
                // First bucket.
                self.reps.insert(key, ());
                self.buckets.insert(key, BTreeMap::from([(key, value)]));
                self.len += 1;
                true
            }
            Some(rep) if key < rep => {
                // A new global minimum: re-key the leftmost bucket so that every
                // representative stays `<=` all keys of its bucket (the ordering
                // invariant the query paths rely on).
                let mut bucket = self.buckets.remove(&rep).expect("rep has a bucket");
                if bucket.contains_key(&key) {
                    self.buckets.insert(rep, bucket);
                    return false;
                }
                self.reps.remove(rep);
                self.reps.insert(key, ());
                bucket.insert(key, value);
                self.len += 1;
                let overflow = bucket.len() > self.bucket_max();
                self.buckets.insert(key, bucket);
                if overflow {
                    self.split_bucket(key);
                }
                true
            }
            Some(rep) => {
                let bucket = self.buckets.get_mut(&rep).expect("rep has a bucket");
                if bucket.contains_key(&key) {
                    return false;
                }
                bucket.insert(key, value);
                self.len += 1;
                if bucket.len() > self.bucket_max() {
                    self.split_bucket(rep);
                }
                true
            }
        }
    }

    /// Splits the bucket of `rep` in two, inserting the new representative into the
    /// x-fast trie (`O(log u)` work, amortized over the `Θ(log u)` inserts it took to
    /// overflow).
    fn split_bucket(&mut self, rep: u64) {
        let bucket = self.buckets.get_mut(&rep).expect("rep has a bucket");
        let keys: Vec<u64> = bucket.keys().copied().collect();
        let median = keys[keys.len() / 2];
        let upper: BTreeMap<u64, V> = bucket.split_off(&median);
        self.buckets.insert(median, upper);
        self.reps.insert(median, ());
        self.splits += 1;
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let rep = self.bucket_rep_for(key)?;
        let bucket = self.buckets.get_mut(&rep)?;
        let removed = bucket.remove(&key)?;
        self.len -= 1;
        if bucket.len() < self.bucket_min() {
            self.merge_bucket(rep);
        }
        Some(removed)
    }

    /// Merges the bucket of `rep` with a neighbouring bucket (removing one
    /// representative from the x-fast trie), splitting again if the result overflows.
    ///
    /// The under-full bucket is always folded *leftwards* (into its predecessor
    /// bucket); only the leftmost bucket absorbs its successor instead. This preserves
    /// the invariant that every key of a bucket is smaller than the next bucket's
    /// representative, which the query paths rely on.
    fn merge_bucket(&mut self, rep: u64) {
        if let Some(prev_rep) = self.buckets.range(..rep).next_back().map(|(r, _)| *r) {
            let small = self.buckets.remove(&rep).expect("bucket exists");
            self.reps.remove(rep);
            self.merges += 1;
            let target = self
                .buckets
                .get_mut(&prev_rep)
                .expect("predecessor bucket exists");
            target.extend(small);
            if target.len() > self.bucket_max() {
                self.split_bucket(prev_rep);
            }
        } else if let Some(next_rep) = self.buckets.range(rep + 1..).next().map(|(r, _)| *r) {
            // Leftmost bucket: absorb the successor bucket, keeping our representative.
            let other = self
                .buckets
                .remove(&next_rep)
                .expect("successor bucket exists");
            self.reps.remove(next_rep);
            self.merges += 1;
            let target = self.buckets.get_mut(&rep).expect("bucket exists");
            target.extend(other);
            if target.len() > self.bucket_max() {
                self.split_bucket(rep);
            }
        } else {
            // Only one bucket left: if it became empty, drop back to the empty state.
            if self.buckets.get(&rep).is_some_and(|b| b.is_empty()) {
                self.buckets.remove(&rep);
                self.reps.remove(rep);
            }
        }
    }

    /// The largest key `<= key` and its value.
    pub fn predecessor(&self, key: u64) -> Option<(u64, V)> {
        let rep = self.bucket_rep_for(key)?;
        if let Some((k, v)) = self
            .buckets
            .get(&rep)
            .and_then(|b| b.range(..=key).next_back())
        {
            return Some((*k, v.clone()));
        }
        // Nothing `<= key` in this bucket: the answer is the maximum of the previous
        // non-empty bucket.
        for (_, bucket) in self.buckets.range(..rep).rev() {
            if let Some((k, v)) = bucket.iter().next_back() {
                if *k <= key {
                    return Some((*k, v.clone()));
                }
            }
        }
        None
    }

    /// The smallest key `>= key` and its value.
    pub fn successor(&self, key: u64) -> Option<(u64, V)> {
        let start_rep = self.bucket_rep_for(key)?;
        if let Some((k, v)) = self
            .buckets
            .get(&start_rep)
            .and_then(|b| b.range(key..).next())
        {
            return Some((*k, v.clone()));
        }
        for (_, bucket) in self.buckets.range(start_rep..).skip(1) {
            if let Some((k, v)) = bucket.range(key..).next() {
                return Some((*k, v.clone()));
            }
        }
        // The representative index may place `key` after every bucket it knows about;
        // scan buckets above `key` directly (they can only exist if reps > key).
        for (_, bucket) in self.buckets.range(..start_rep) {
            if let Some((k, v)) = bucket.range(key..).next() {
                return Some((*k, v.clone()));
            }
        }
        None
    }

    /// Snapshot of the contents in key order.
    pub fn to_vec(&self) -> Vec<(u64, V)> {
        let mut out = Vec::with_capacity(self.len);
        for bucket in self.buckets.values() {
            for (k, v) in bucket {
                out.push((*k, v.clone()));
            }
        }
        out.sort_by_key(|(k, _)| *k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Model;

    #[test]
    fn empty_and_singleton() {
        let mut trie: SeqYFastTrie<u64> = SeqYFastTrie::new(16);
        assert!(trie.is_empty());
        assert_eq!(trie.predecessor(10), None);
        assert_eq!(trie.successor(10), None);
        assert!(trie.insert(42, 420));
        assert!(!trie.insert(42, 421));
        assert_eq!(trie.get(42), Some(420));
        assert_eq!(trie.predecessor(100), Some((42, 420)));
        assert_eq!(trie.successor(0), Some((42, 420)));
        assert_eq!(trie.remove(42), Some(420));
        assert!(trie.is_empty());
        assert_eq!(trie.predecessor(100), None);
    }

    #[test]
    fn buckets_split_and_merge() {
        let mut trie: SeqYFastTrie<u64> = SeqYFastTrie::new(16);
        for k in 0..2_000u64 {
            trie.insert(k, k);
        }
        let (buckets, splits, _) = trie.rebalance_stats();
        assert!(
            buckets > 10,
            "2000 sequential keys must split into many buckets"
        );
        assert!(splits >= buckets - 1);
        for k in 0..2_000u64 {
            assert_eq!(trie.remove(k), Some(k));
        }
        assert!(trie.is_empty());
        let (_, _, merges) = trie.rebalance_stats();
        assert!(merges > 0, "draining must trigger merges");
    }

    #[test]
    fn matches_btreemap_model_randomized() {
        let mut trie: SeqYFastTrie<u64> = SeqYFastTrie::new(12);
        let mut model: Model<u64, u64> = Model::new();
        let mut state = 0x5ca1ab1eu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10_000 {
            let key = next() % (1 << 12);
            match next() % 4 {
                0 | 1 => {
                    let fresh = !model.contains_key(&key);
                    if fresh {
                        model.insert(key, key + 7);
                    }
                    assert_eq!(trie.insert(key, key + 7), fresh, "insert {key}");
                }
                2 => {
                    assert_eq!(trie.remove(key), model.remove(&key), "remove {key}");
                }
                _ => {
                    let pred = model.range(..=key).next_back().map(|(k, v)| (*k, *v));
                    assert_eq!(trie.predecessor(key), pred, "pred {key}");
                    let succ = model.range(key..).next().map(|(k, v)| (*k, *v));
                    assert_eq!(trie.successor(key), succ, "succ {key}");
                    let hi = key.saturating_add(256).min((1 << 12) - 1);
                    let want: Vec<(u64, u64)> =
                        model.range(key..=hi).map(|(k, v)| (*k, *v)).collect();
                    assert_eq!(trie.range(key..=hi), want, "range {key}..={hi}");
                }
            }
            assert_eq!(trie.len(), model.len());
        }
        assert_eq!(trie.range(..), trie.to_vec(), "full range equals snapshot");
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(trie.to_vec(), expected);
    }
}
