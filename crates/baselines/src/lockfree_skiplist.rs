//! The `Θ(log m)`-depth lock-free skiplist baseline.

use skiptrie_skiplist::{RangeIter, SkipList, SkipListConfig};

/// A conventional full-height lock-free skiplist (depth `Θ(log m)`).
///
/// This is the same code as the SkipTrie's truncated substrate, configured with 24
/// levels and searched from the head sentinel — i.e. exactly the class of concurrent
/// predecessor structure (à la Lea/Fomitchev-Ruppert) the paper's introduction says
/// all prior work provides. Comparing it against the SkipTrie isolates the benefit of
/// the x-fast-trie front end: `Θ(log m)` versus `O(log log u)` search depth.
///
/// # Examples
///
/// ```
/// use skiptrie_baselines::FullSkipList;
///
/// let list: FullSkipList<u32> = FullSkipList::new();
/// list.insert(10, 1);
/// list.insert(30, 3);
/// assert_eq!(list.predecessor(29), Some((10, 1)));
/// ```
pub struct FullSkipList<V> {
    inner: SkipList<V>,
}

impl<V> Default for FullSkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<V> FullSkipList<V>
where
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty full-height skiplist.
    pub fn new() -> Self {
        FullSkipList {
            inner: SkipList::new(SkipListConfig::full_height()),
        }
    }

    /// Creates an empty skiplist with a custom number of levels.
    pub fn with_levels(levels: u8) -> Self {
        FullSkipList {
            inner: SkipList::new(SkipListConfig {
                levels,
                ..SkipListConfig::full_height()
            }),
        }
    }

    /// Inserts `key -> value`; returns `true` if the key was absent.
    pub fn insert(&self, key: u64, value: V) -> bool {
        self.inner.insert(key, value)
    }

    /// Removes `key`, returning its value if this call removed it.
    pub fn remove(&self, key: u64) -> Option<V> {
        self.inner.remove(key)
    }

    /// Returns a clone of the value stored under `key`.
    pub fn get(&self, key: u64) -> Option<V> {
        self.inner.get(key)
    }

    /// True if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.inner.contains(key)
    }

    /// The largest key `<= key` and its value.
    pub fn predecessor(&self, key: u64) -> Option<(u64, V)> {
        self.inner.predecessor(key)
    }

    /// The smallest key `>= key` and its value.
    pub fn successor(&self, key: u64) -> Option<(u64, V)> {
        self.inner.successor(key)
    }

    /// Number of keys stored (quiescently accurate).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// A weakly-consistent ordered iterator over the entries whose keys lie in
    /// `range` (the cursor machinery of the underlying skiplist; see
    /// [`skiptrie_skiplist::SkipList::range`]). The seek costs `Θ(log m)` here —
    /// a full-height descent — versus the SkipTrie's `O(log log u)`.
    pub fn range(&self, range: impl std::ops::RangeBounds<u64>) -> RangeIter<'_, V> {
        self.inner.range(range)
    }

    /// Removes and returns the entry with the smallest key.
    pub fn pop_first(&self) -> Option<(u64, V)> {
        self.inner.pop_first()
    }

    /// Removes and returns the entry with the largest key.
    pub fn pop_last(&self) -> Option<(u64, V)> {
        self.inner.pop_last()
    }

    /// Snapshot of the contents in key order.
    pub fn to_vec(&self) -> Vec<(u64, V)> {
        self.inner.to_vec()
    }

    /// The underlying skiplist (for structural statistics).
    pub fn as_skiplist(&self) -> &SkipList<V> {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_an_ordered_map() {
        let list: FullSkipList<u64> = FullSkipList::new();
        for k in (0..500u64).rev() {
            assert!(list.insert(k, k * 2));
        }
        assert_eq!(list.len(), 500);
        assert_eq!(list.predecessor(250), Some((250, 500)));
        assert_eq!(list.successor(499), Some((499, 998)));
        assert_eq!(list.remove(250), Some(500));
        assert_eq!(list.predecessor(250), Some((249, 498)));
        assert!(!list.contains(250));
    }

    #[test]
    fn custom_level_count() {
        let list: FullSkipList<u8> = FullSkipList::with_levels(8);
        for k in 0..100 {
            list.insert(k, 0);
        }
        assert_eq!(list.as_skiplist().levels(), 8);
        assert_eq!(list.len(), 100);
    }

    #[test]
    fn range_and_pops_match_contents() {
        let list: FullSkipList<u64> = FullSkipList::new();
        for k in [5u64, 1, 9, 3, 7] {
            list.insert(k, k * 2);
        }
        let window: Vec<u64> = list.range(3..=7).map(|(k, _)| k).collect();
        assert_eq!(window, vec![3, 5, 7]);
        assert_eq!(list.pop_first(), Some((1, 2)));
        assert_eq!(list.pop_last(), Some((9, 18)));
        assert_eq!(list.range(..).count(), 3);
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn concurrent_inserts() {
        use std::sync::Arc;
        let list: Arc<FullSkipList<u64>> = Arc::new(FullSkipList::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        list.insert(t * 2_000 + i, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(list.len(), 8_000);
        assert_eq!(list.predecessor(8_000), Some((7_999, 1_999)));
    }
}
