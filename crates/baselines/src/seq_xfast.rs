//! A sequential x-fast trie (Willard 1983), as described in the paper's introduction.
//!
//! A hash table stores every prefix of every key together with the minimum and maximum
//! key of that prefix's subtree; the keys themselves form a doubly-linked list.
//! Predecessor queries binary-search the prefix length (`O(log log u)` hash probes);
//! insertions and deletions touch every prefix of the key (`O(log u)`).
//!
//! This is the structure the SkipTrie makes concurrent; it is used here as a
//! single-threaded complexity reference and as a correctness oracle in tests.

use std::collections::HashMap;

/// Min/max key of a prefix's subtree.
#[derive(Debug, Clone, Copy)]
struct Desc {
    min: u64,
    max: u64,
}

#[derive(Debug, Clone)]
struct Leaf<V> {
    value: V,
    prev: Option<u64>,
    next: Option<u64>,
}

/// A sequential x-fast trie over `universe_bits`-bit keys.
///
/// # Examples
///
/// ```
/// use skiptrie_baselines::SeqXFastTrie;
///
/// let mut trie = SeqXFastTrie::new(16);
/// trie.insert(100, "a");
/// trie.insert(200, "b");
/// assert_eq!(trie.predecessor(150), Some((100, "a")));
/// assert_eq!(trie.successor(150), Some((200, "b")));
/// ```
#[derive(Debug, Clone)]
pub struct SeqXFastTrie<V> {
    universe_bits: u32,
    /// Maps `(prefix_len, prefix_bits)` to the min/max key of that subtree. The empty
    /// prefix (len 0) is present whenever the set is non-empty.
    prefixes: HashMap<(u8, u64), Desc>,
    /// The bottom doubly-linked list of keys.
    leaves: HashMap<u64, Leaf<V>>,
}

impl<V: Clone> SeqXFastTrie<V> {
    /// Creates an empty trie over a `universe_bits`-bit universe.
    ///
    /// # Panics
    ///
    /// Panics if `universe_bits` is not in `1..=64`.
    pub fn new(universe_bits: u32) -> Self {
        assert!((1..=64).contains(&universe_bits));
        SeqXFastTrie {
            universe_bits,
            prefixes: HashMap::new(),
            leaves: HashMap::new(),
        }
    }

    /// The largest representable key.
    pub fn max_key(&self) -> u64 {
        if self.universe_bits >= 64 {
            u64::MAX
        } else {
            (1 << self.universe_bits) - 1
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True if the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Total number of prefix-table entries (for the space experiment E5).
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }

    fn prefix_bits(&self, key: u64, len: u8) -> u64 {
        if len == 0 {
            0
        } else {
            key >> (self.universe_bits - len as u32)
        }
    }

    fn check_key(&self, key: u64) {
        assert!(
            key <= self.max_key(),
            "key {key} exceeds the configured universe of {} bits",
            self.universe_bits
        );
    }

    /// True if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.leaves.contains_key(&key)
    }

    /// Returns a clone of the value stored under `key`.
    pub fn get(&self, key: u64) -> Option<V> {
        self.leaves.get(&key).map(|l| l.value.clone())
    }

    /// Inserts `key -> value`; returns `true` if the key was absent.
    ///
    /// # Panics
    ///
    /// Panics if the key does not fit in the universe.
    pub fn insert(&mut self, key: u64, value: V) -> bool {
        self.check_key(key);
        if self.leaves.contains_key(&key) {
            return false;
        }
        // Splice into the doubly-linked leaf list.
        let pred = self.predecessor_key(key);
        let succ = match pred {
            Some(p) => self.leaves.get(&p).and_then(|l| l.next),
            None => self.min_key(),
        };
        self.leaves.insert(
            key,
            Leaf {
                value,
                prev: pred,
                next: succ,
            },
        );
        if let Some(p) = pred {
            self.leaves.get_mut(&p).expect("pred exists").next = Some(key);
        }
        if let Some(s) = succ {
            self.leaves.get_mut(&s).expect("succ exists").prev = Some(key);
        }
        // Update every prefix's min/max (O(log u) work — the cost the y-fast trie and
        // the SkipTrie amortize away).
        for len in 0..self.universe_bits as u8 {
            let bits = self.prefix_bits(key, len);
            self.prefixes
                .entry((len, bits))
                .and_modify(|d| {
                    d.min = d.min.min(key);
                    d.max = d.max.max(key);
                })
                .or_insert(Desc { min: key, max: key });
        }
        true
    }

    /// Removes `key`, returning its value.
    ///
    /// # Panics
    ///
    /// Panics if the key does not fit in the universe.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        self.check_key(key);
        let leaf = self.leaves.remove(&key)?;
        if let Some(p) = leaf.prev {
            self.leaves.get_mut(&p).expect("prev exists").next = leaf.next;
        }
        if let Some(s) = leaf.next {
            self.leaves.get_mut(&s).expect("next exists").prev = leaf.prev;
        }
        for len in 0..self.universe_bits as u8 {
            let bits = self.prefix_bits(key, len);
            let entry = self.prefixes.get_mut(&(len, bits)).expect("prefix present");
            if entry.min == key && entry.max == key {
                self.prefixes.remove(&(len, bits));
                continue;
            }
            if entry.min == key {
                // The subtree's keys are contiguous in the list: the next leaf that
                // still shares this prefix is the new minimum.
                let next = leaf.next.expect("subtree still has larger keys");
                entry.min = next;
            }
            if entry.max == key {
                let prev = leaf.prev.expect("subtree still has smaller keys");
                entry.max = prev;
            }
        }
        Some(leaf.value)
    }

    fn min_key(&self) -> Option<u64> {
        self.prefixes.get(&(0, 0)).map(|d| d.min)
    }

    fn max_key_present(&self) -> Option<u64> {
        self.prefixes.get(&(0, 0)).map(|d| d.max)
    }

    /// The key of the largest element `<= key`, using the textbook binary search on
    /// prefix lengths.
    fn predecessor_key(&self, key: u64) -> Option<u64> {
        if self.leaves.contains_key(&key) {
            return Some(key);
        }
        let root = self.prefixes.get(&(0, 0))?;
        if key < root.min {
            return None;
        }
        if key > root.max {
            return Some(root.max);
        }
        // Binary search for the longest present prefix of `key`.
        let b = self.universe_bits;
        let (mut lo, mut hi) = (0u32, b - 1); // lengths with presence known / unknown
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            let bits = self.prefix_bits(key, mid as u8);
            if self.prefixes.contains_key(&(mid as u8, bits)) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let len = lo;
        let direction = (key >> (b - 1 - len)) & 1;
        let child_len = len + 1;
        let child_bits = |d: u64| (self.prefix_bits(key, len as u8) << 1) | d;
        if direction == 1 {
            // Key descends right but the right subtree is empty below this point: the
            // predecessor is the maximum of the left sibling subtree.
            if child_len == b {
                let leaf_key = child_bits(0);
                if self.leaves.contains_key(&leaf_key) {
                    return Some(leaf_key);
                }
            } else if let Some(d) = self.prefixes.get(&(child_len as u8, child_bits(0))) {
                return Some(d.max);
            }
            // Left sibling empty too: fall back to the subtree's own minimum's prev.
            let subtree = self
                .prefixes
                .get(&(len as u8, self.prefix_bits(key, len as u8)))?;
            self.leaves.get(&subtree.min).and_then(|l| l.prev)
        } else {
            // Key descends left but the left subtree is empty: the successor is the
            // minimum of the right sibling subtree; the predecessor is its `prev`.
            let succ = if child_len == b {
                let leaf_key = child_bits(1);
                self.leaves.contains_key(&leaf_key).then_some(leaf_key)
            } else {
                self.prefixes
                    .get(&(child_len as u8, child_bits(1)))
                    .map(|d| d.min)
            };
            match succ {
                Some(s) => self.leaves.get(&s).and_then(|l| l.prev),
                None => {
                    let subtree = self
                        .prefixes
                        .get(&(len as u8, self.prefix_bits(key, len as u8)))?;
                    self.leaves.get(&subtree.min).and_then(|l| l.prev)
                }
            }
        }
    }

    /// The largest key `<= key` and its value.
    pub fn predecessor(&self, key: u64) -> Option<(u64, V)> {
        self.check_key(key);
        let k = self.predecessor_key(key)?;
        Some((k, self.leaves.get(&k).expect("leaf exists").value.clone()))
    }

    /// The smallest key `>= key` and its value.
    pub fn successor(&self, key: u64) -> Option<(u64, V)> {
        self.check_key(key);
        if let Some(leaf) = self.leaves.get(&key) {
            return Some((key, leaf.value.clone()));
        }
        match self.predecessor_key(key) {
            Some(p) => {
                let next = self.leaves.get(&p).expect("leaf exists").next?;
                Some((
                    next,
                    self.leaves.get(&next).expect("leaf exists").value.clone(),
                ))
            }
            None => {
                let min = self.min_key()?;
                Some((
                    min,
                    self.leaves.get(&min).expect("leaf exists").value.clone(),
                ))
            }
        }
    }

    /// Snapshot of the contents in key order.
    pub fn to_vec(&self) -> Vec<(u64, V)> {
        let mut out = Vec::with_capacity(self.leaves.len());
        let mut cursor = self.min_key();
        while let Some(k) = cursor {
            let leaf = self.leaves.get(&k).expect("linked leaf exists");
            out.push((k, leaf.value.clone()));
            cursor = leaf.next;
        }
        out
    }

    /// The largest key present, if any.
    pub fn max_present(&self) -> Option<u64> {
        self.max_key_present()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_trie_queries() {
        let trie: SeqXFastTrie<u64> = SeqXFastTrie::new(16);
        assert!(trie.is_empty());
        assert_eq!(trie.predecessor(100), None);
        assert_eq!(trie.successor(100), None);
        assert_eq!(trie.get(0), None);
        assert_eq!(trie.prefix_count(), 0);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut trie = SeqXFastTrie::new(8);
        assert!(trie.insert(5, 50));
        assert!(!trie.insert(5, 51));
        assert!(trie.insert(200, 2000));
        assert_eq!(trie.len(), 2);
        assert_eq!(trie.get(5), Some(50));
        assert_eq!(trie.predecessor(199), Some((5, 50)));
        assert_eq!(trie.successor(6), Some((200, 2000)));
        assert_eq!(trie.remove(5), Some(50));
        assert_eq!(trie.remove(5), None);
        assert_eq!(trie.predecessor(199), None);
        assert_eq!(trie.to_vec(), vec![(200, 2000)]);
    }

    #[test]
    fn matches_btreemap_model_randomized() {
        let mut trie = SeqXFastTrie::new(12);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut state = 0xabcdefu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..8_000 {
            let key = next() % (1 << 12);
            match next() % 4 {
                0 | 1 => {
                    let fresh = !model.contains_key(&key);
                    if fresh {
                        model.insert(key, key + 1);
                    }
                    assert_eq!(trie.insert(key, key + 1), fresh);
                }
                2 => {
                    assert_eq!(trie.remove(key), model.remove(&key));
                }
                _ => {
                    let pred = model.range(..=key).next_back().map(|(k, v)| (*k, *v));
                    assert_eq!(trie.predecessor(key), pred, "pred of {key}");
                    let succ = model.range(key..).next().map(|(k, v)| (*k, *v));
                    assert_eq!(trie.successor(key), succ, "succ of {key}");
                }
            }
        }
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(trie.to_vec(), expected);
    }

    #[test]
    fn prefix_count_is_bounded_by_keys_times_bits() {
        let mut trie = SeqXFastTrie::new(16);
        for k in 0..1_000u64 {
            trie.insert(k, k);
        }
        assert!(trie.prefix_count() <= 1_000 * 16);
        assert!(trie.prefix_count() >= 16, "at least one chain of prefixes");
    }

    #[test]
    fn boundary_keys() {
        let mut trie = SeqXFastTrie::new(8);
        trie.insert(0, 1);
        trie.insert(255, 2);
        assert_eq!(trie.predecessor(0), Some((0, 1)));
        assert_eq!(trie.predecessor(254), Some((0, 1)));
        assert_eq!(trie.predecessor(255), Some((255, 2)));
        assert_eq!(trie.successor(1), Some((255, 2)));
        assert_eq!(trie.successor(0), Some((0, 1)));
        trie.remove(0);
        assert_eq!(trie.predecessor(254), None);
        assert_eq!(trie.successor(0), Some((255, 2)));
    }
}
