//! A coarse-grained locked `BTreeMap` baseline.

use std::collections::BTreeMap;

use parking_lot::RwLock;

/// The conventional "just put a lock around `std::collections::BTreeMap`" ordered map.
///
/// Depth is `Θ(log m)` and every operation serializes on a single reader-writer lock,
/// which is exactly the kind of structure whose scaling the SkipTrie paper sets out to
/// beat. Used as a baseline in experiments E1/E7.
///
/// # Examples
///
/// ```
/// use skiptrie_baselines::LockedBTreeMap;
///
/// let map = LockedBTreeMap::new();
/// map.insert(5, "five");
/// assert_eq!(map.predecessor(7), Some((5, "five")));
/// ```
#[derive(Debug, Default)]
pub struct LockedBTreeMap<V> {
    inner: RwLock<BTreeMap<u64, V>>,
}

impl<V: Clone> LockedBTreeMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        LockedBTreeMap {
            inner: RwLock::new(BTreeMap::new()),
        }
    }

    /// Inserts `key -> value`; returns `true` if the key was absent.
    pub fn insert(&self, key: u64, value: V) -> bool {
        let mut map = self.inner.write();
        if let std::collections::btree_map::Entry::Vacant(e) = map.entry(key) {
            e.insert(value);
            true
        } else {
            false
        }
    }

    /// Removes `key`, returning its value.
    pub fn remove(&self, key: u64) -> Option<V> {
        self.inner.write().remove(&key)
    }

    /// Returns a clone of the value stored under `key`.
    pub fn get(&self, key: u64) -> Option<V> {
        self.inner.read().get(&key).cloned()
    }

    /// True if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.inner.read().contains_key(&key)
    }

    /// The largest key `<= key` and its value.
    pub fn predecessor(&self, key: u64) -> Option<(u64, V)> {
        self.inner
            .read()
            .range(..=key)
            .next_back()
            .map(|(k, v)| (*k, v.clone()))
    }

    /// The smallest key `>= key` and its value.
    pub fn successor(&self, key: u64) -> Option<(u64, V)> {
        self.inner
            .read()
            .range(key..)
            .next()
            .map(|(k, v)| (*k, v.clone()))
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the contents in key order.
    pub fn to_vec(&self) -> Vec<(u64, V)> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_map_semantics() {
        let map = LockedBTreeMap::new();
        assert!(map.is_empty());
        assert!(map.insert(3, 30));
        assert!(!map.insert(3, 31));
        assert!(map.insert(7, 70));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(3), Some(30));
        assert_eq!(map.predecessor(6), Some((3, 30)));
        assert_eq!(map.predecessor(2), None);
        assert_eq!(map.successor(4), Some((7, 70)));
        assert_eq!(map.remove(3), Some(30));
        assert_eq!(map.remove(3), None);
        assert_eq!(map.to_vec(), vec![(7, 70)]);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let map = Arc::new(LockedBTreeMap::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        map.insert(t * 1_000 + i, i);
                        map.predecessor(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.len(), 4_000);
    }
}
