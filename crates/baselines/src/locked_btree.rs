//! A coarse-grained locked `BTreeMap` baseline.

use std::collections::BTreeMap;

use parking_lot::RwLock;

/// The conventional "just put a lock around `std::collections::BTreeMap`" ordered map.
///
/// Depth is `Θ(log m)` and every operation serializes on a single reader-writer lock,
/// which is exactly the kind of structure whose scaling the SkipTrie paper sets out to
/// beat. Used as a baseline in experiments E1/E7.
///
/// # Examples
///
/// ```
/// use skiptrie_baselines::LockedBTreeMap;
///
/// let map = LockedBTreeMap::new();
/// map.insert(5, "five");
/// assert_eq!(map.predecessor(7), Some((5, "five")));
/// ```
#[derive(Debug, Default)]
pub struct LockedBTreeMap<V> {
    inner: RwLock<BTreeMap<u64, V>>,
}

impl<V: Clone> LockedBTreeMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        LockedBTreeMap {
            inner: RwLock::new(BTreeMap::new()),
        }
    }

    /// Inserts `key -> value`; returns `true` if the key was absent.
    pub fn insert(&self, key: u64, value: V) -> bool {
        let mut map = self.inner.write();
        if let std::collections::btree_map::Entry::Vacant(e) = map.entry(key) {
            e.insert(value);
            true
        } else {
            false
        }
    }

    /// Removes `key`, returning its value.
    pub fn remove(&self, key: u64) -> Option<V> {
        self.inner.write().remove(&key)
    }

    /// Returns a clone of the value stored under `key`.
    pub fn get(&self, key: u64) -> Option<V> {
        self.inner.read().get(&key).cloned()
    }

    /// True if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.inner.read().contains_key(&key)
    }

    /// The largest key `<= key` and its value.
    pub fn predecessor(&self, key: u64) -> Option<(u64, V)> {
        self.inner
            .read()
            .range(..=key)
            .next_back()
            .map(|(k, v)| (*k, v.clone()))
    }

    /// The smallest key `>= key` and its value.
    pub fn successor(&self, key: u64) -> Option<(u64, V)> {
        self.inner
            .read()
            .range(key..)
            .next()
            .map(|(k, v)| (*k, v.clone()))
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries whose keys lie in `range`, cloned under one read-lock hold.
    ///
    /// Unlike the SkipTrie's weakly-consistent scan this is a true snapshot — and
    /// that is exactly its cost: every concurrent writer blocks for the duration of
    /// the clone-out (the scan-scaling effect experiment E9 measures).
    pub fn range(&self, range: impl std::ops::RangeBounds<u64>) -> Vec<(u64, V)> {
        self.inner
            .read()
            .range(range)
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// Number of keys in `range`, counted under the read lock.
    pub fn count_range(&self, range: impl std::ops::RangeBounds<u64>) -> usize {
        self.inner.read().range(range).count()
    }

    /// Visits up to `limit` entries with keys `>= from` under the read lock,
    /// returning the number visited (no values are cloned).
    pub fn scan(&self, from: u64, limit: usize) -> usize {
        self.inner.read().range(from..).take(limit).count()
    }

    /// Inserts every `key -> value` pair under **one** write-lock hold, returning
    /// how many keys were newly inserted (the locked structure's natural batching
    /// advantage: one lock acquisition amortized over the whole batch — the fair
    /// baseline for the E10 batched-throughput comparison).
    pub fn insert_batch(&self, entries: &[(u64, V)]) -> usize {
        let mut map = self.inner.write();
        let mut inserted = 0usize;
        for (key, value) in entries {
            if let std::collections::btree_map::Entry::Vacant(e) = map.entry(*key) {
                e.insert(value.clone());
                inserted += 1;
            }
        }
        inserted
    }

    /// Removes every key under one write-lock hold, returning how many were present.
    pub fn remove_batch(&self, keys: &[u64]) -> usize {
        let mut map = self.inner.write();
        keys.iter().filter(|k| map.remove(k).is_some()).count()
    }

    /// Looks up every key under one read-lock hold, returning the values in input
    /// order (`None` for absent keys).
    pub fn get_batch(&self, keys: &[u64]) -> Vec<Option<V>> {
        let map = self.inner.read();
        keys.iter().map(|k| map.get(k).cloned()).collect()
    }

    /// Removes and returns the entry with the smallest key.
    pub fn pop_first(&self) -> Option<(u64, V)> {
        self.inner.write().pop_first()
    }

    /// Removes and returns the entry with the largest key.
    pub fn pop_last(&self) -> Option<(u64, V)> {
        self.inner.write().pop_last()
    }

    /// Snapshot of the contents in key order.
    pub fn to_vec(&self) -> Vec<(u64, V)> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_map_semantics() {
        let map = LockedBTreeMap::new();
        assert!(map.is_empty());
        assert!(map.insert(3, 30));
        assert!(!map.insert(3, 31));
        assert!(map.insert(7, 70));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(3), Some(30));
        assert_eq!(map.predecessor(6), Some((3, 30)));
        assert_eq!(map.predecessor(2), None);
        assert_eq!(map.successor(4), Some((7, 70)));
        assert_eq!(map.remove(3), Some(30));
        assert_eq!(map.remove(3), None);
        assert_eq!(map.to_vec(), vec![(7, 70)]);
    }

    #[test]
    fn range_and_pops_match_contents() {
        let map = LockedBTreeMap::new();
        for k in [5u64, 1, 9, 3, 7] {
            map.insert(k, k * 2);
        }
        assert_eq!(map.range(3..=7), vec![(3, 6), (5, 10), (7, 14)]);
        assert_eq!(map.count_range(..), 5);
        assert_eq!(map.pop_first(), Some((1, 2)));
        assert_eq!(map.pop_last(), Some((9, 18)));
        assert_eq!(map.count_range(..), 3);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let map = Arc::new(LockedBTreeMap::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        map.insert(t * 1_000 + i, i);
                        map.predecessor(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.len(), 4_000);
    }
}
