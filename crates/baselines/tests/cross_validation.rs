use skiptrie_baselines::{SeqXFastTrie, SeqYFastTrie};
use std::collections::BTreeMap as Model;

#[test]
fn yfast_xfast_and_btreemap_agree_on_random_history() {
    let mut trie: SeqYFastTrie<u64> = SeqYFastTrie::new(12);
    let mut xf: SeqXFastTrie<u64> = SeqXFastTrie::new(12);
    let mut model: Model<u64, u64> = Model::new();
    let mut state = 0x5ca1ab1eu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for step in 0..10_000 {
        let key = next() % (1 << 12);
        match next() % 4 {
            0 | 1 => {
                let fresh = !model.contains_key(&key);
                if fresh {
                    model.insert(key, key + 7);
                }
                let gotx = xf.insert(key, key + 7);
                assert_eq!(gotx, fresh, "xfast insert {key} at step {step}");
                let got = trie.insert(key, key + 7);
                assert_eq!(got, fresh, "yfast insert {key} at step {step}");
            }
            2 => {
                let expected = model.remove(&key);
                let gotx = xf.remove(key);
                assert_eq!(gotx, expected, "xfast remove {key} at step {step}");
                assert_eq!(
                    trie.remove(key),
                    expected,
                    "yfast remove {key} at step {step}"
                );
            }
            _ => {
                let pred = model.range(..=key).next_back().map(|(k, v)| (*k, *v));
                let gotx = xf.predecessor(key);
                assert_eq!(gotx, pred, "xfast pred {key} at step {step}");
                let got = trie.predecessor(key);
                if got != pred {
                    eprintln!("step {step}: yfast pred({key}) = {got:?}, expected {pred:?}");
                    eprintln!(
                        "model around: {:?}",
                        model
                            .range(key.saturating_sub(300)..=key + 5)
                            .collect::<Vec<_>>()
                    );
                    eprintln!("buckets: {:?}", trie.bucket_layout());
                    eprintln!("stats: {:?}", trie.rebalance_stats());
                    panic!("divergence");
                }
            }
        }
    }
}
