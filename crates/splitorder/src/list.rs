//! The Harris-style lock-free sorted linked list underlying the split-ordered table.
//!
//! Nodes are totally ordered by `(so_key, key)` where `so_key` is the split-order key
//! (bit-reversed hash for regular nodes, bit-reversed bucket index for dummy nodes)
//! and dummy nodes carry `key = None`, which sorts before every `Some(_)`. Logical
//! deletion uses the mark bit on the victim's own `next` word; physical unlinking is
//! performed by the deleter or by any later traversal that trips over the marked node
//! (exactly the `listSearch` cleanup discipline the paper relies on).

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_epoch::Guard;
use skiptrie_atomics::tagged;
use skiptrie_metrics::{self as metrics, Counter};

/// A node of the split-ordered list. Dummy (bucket sentinel) nodes have `key == None`.
pub(crate) struct ListNode<K, V> {
    pub(crate) so_key: u64,
    pub(crate) key: Option<K>,
    pub(crate) value: Option<V>,
    /// Era-clock value at allocation (hazard substrate only; 0 = unknown, always
    /// sound). Stamped before publication, consumed by the retire at removal.
    pub(crate) birth: u64,
    /// Tagged pointer to the next node (MARK bit = this node is logically deleted).
    pub(crate) next: AtomicU64,
}

impl<K, V> ListNode<K, V> {
    pub(crate) fn new_regular(so_key: u64, key: K, value: V, birth: u64) -> Box<Self> {
        metrics::record(Counter::NodeAllocated);
        Box::new(ListNode {
            so_key,
            key: Some(key),
            value: Some(value),
            birth,
            next: AtomicU64::new(tagged::NULL),
        })
    }

    pub(crate) fn new_dummy(so_key: u64) -> Box<Self> {
        metrics::record(Counter::NodeAllocated);
        Box::new(ListNode {
            so_key,
            key: None,
            value: None,
            birth: 0,
            next: AtomicU64::new(tagged::NULL),
        })
    }

    pub(crate) fn is_dummy(&self) -> bool {
        self.key.is_none()
    }
}

/// Result of a [`find`] call: the link word that precedes the search position, the
/// word that was read from it (always unmarked), and the node found at the position
/// (if its ordering key is exactly equal to the target).
pub(crate) struct FindResult<'g> {
    /// The link (a `next` word, or conceptually the bucket entry's dummy `next`) whose
    /// successor is `curr_word`.
    pub(crate) prev_link: &'g AtomicU64,
    /// The (untagged) word read from `prev_link`: a pointer to the first node whose
    /// ordering key is `>=` the target, or null at end of list.
    pub(crate) curr_word: u64,
    /// Whether `curr_word` points to a node exactly equal to the target key.
    pub(crate) found: bool,
}

/// Compares `(so_key, key)` of a node against a target. Dummies sort before regular
/// nodes with the same `so_key`.
fn node_cmp<K: Ord>(
    node_so: u64,
    node_key: &Option<K>,
    target_so: u64,
    target_key: Option<&K>,
) -> std::cmp::Ordering {
    node_so
        .cmp(&target_so)
        .then_with(|| match (node_key, target_key) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(a), Some(b)) => a.cmp(b),
        })
}

/// Walks the list starting at `start` (a dummy node) until it reaches the first node
/// whose `(so_key, key)` is `>=` the target, unlinking any marked nodes it encounters.
///
/// # Safety
///
/// `start` must point to a live dummy node of the list reachable during the lifetime
/// of `epoch`; nodes are only retired after being unlinked, so every pointer followed
/// while pinned remains valid.
pub(crate) unsafe fn find<'g, K: Ord, V>(
    start: *const ListNode<K, V>,
    target_so: u64,
    target_key: Option<&K>,
    epoch: &'g Guard,
) -> FindResult<'g> {
    'restart: loop {
        let mut prev_link: &AtomicU64 = &(*start).next;
        // Traversal loads route through the guard's substrate choke point
        // (`Guard::protected`): a no-op under EBR, era-validated under hazard.
        let mut curr_word = epoch.protected(|| prev_link.load(Ordering::SeqCst));
        // The dummy itself is never marked, but its next word never carries a mark
        // either (marks live on the victim's own word), so curr_word is a plain ptr.
        debug_assert!(!tagged::is_marked(curr_word) || tagged::is_null(curr_word));

        loop {
            metrics::record(Counter::PtrRead);
            if tagged::is_null(curr_word) {
                return FindResult {
                    prev_link,
                    curr_word: tagged::NULL,
                    found: false,
                };
            }
            let curr = &*tagged::unpack::<ListNode<K, V>>(curr_word);
            let curr_next = epoch.protected(|| curr.next.load(Ordering::SeqCst));
            if tagged::is_marked(curr_next) {
                // Curr is logically deleted: unlink it and keep going. If the unlink
                // CAS fails the list changed under us; restart from the dummy.
                metrics::record(Counter::MarkedNodeSkipped);
                metrics::record(Counter::CasAttempt);
                let succ = tagged::untagged(curr_next);
                match prev_link.compare_exchange(
                    curr_word,
                    succ,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => {
                        // We unlinked it; the thread that *marked* it owns retirement,
                        // except for removals helped by traversals, where the marker
                        // retires (see `SplitOrderedMap::remove_entry`). Nothing to do
                        // here.
                        curr_word = succ;
                        continue;
                    }
                    Err(_) => {
                        metrics::record(Counter::CasFailure);
                        metrics::record(Counter::Restart);
                        continue 'restart;
                    }
                }
            }
            match node_cmp(curr.so_key, &curr.key, target_so, target_key) {
                std::cmp::Ordering::Less => {
                    prev_link = &curr.next;
                    curr_word = curr_next;
                }
                std::cmp::Ordering::Equal => {
                    return FindResult {
                        prev_link,
                        curr_word,
                        found: true,
                    };
                }
                std::cmp::Ordering::Greater => {
                    return FindResult {
                        prev_link,
                        curr_word,
                        found: false,
                    };
                }
            }
        }
    }
}

/// Inserts `node` (already boxed) at the position described by a fresh [`find`],
/// retrying as needed. Returns `Err(node)` if an equal key is already present.
///
/// # Safety
///
/// Same contract as [`find`].
pub(crate) unsafe fn insert_at<K: Ord, V>(
    start: *const ListNode<K, V>,
    mut node: Box<ListNode<K, V>>,
    epoch: &Guard,
) -> Result<*const ListNode<K, V>, Box<ListNode<K, V>>> {
    let target_so = node.so_key;
    loop {
        let found = {
            let target_key = node.key.as_ref();
            find(start, target_so, target_key, epoch)
        };
        if found.found {
            return Err(node);
        }
        node.next = AtomicU64::new(found.curr_word);
        let node_ptr = Box::into_raw(node);
        metrics::record(Counter::CasAttempt);
        match found.prev_link.compare_exchange(
            found.curr_word,
            tagged::pack(node_ptr),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return Ok(node_ptr),
            Err(_) => {
                metrics::record(Counter::CasFailure);
                metrics::record(Counter::Restart);
                node = Box::from_raw(node_ptr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_epoch as epoch;

    /// These tests drive the raw list (no owning map), so they pin an explicit
    /// domain the way `SplitOrderedMap::pin` would — the workspace rule is that no
    /// call site outside the vendored crate pins the default domain via
    /// `epoch::pin()` directly.
    const TEST_DOMAIN: usize = 11;

    fn new_dummy_head() -> Box<ListNode<u64, u64>> {
        ListNode::new_dummy(0)
    }

    #[test]
    fn ordering_puts_dummies_first() {
        assert_eq!(
            node_cmp::<u64>(4, &None, 4, Some(&9)),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            node_cmp::<u64>(4, &Some(9), 4, None),
            std::cmp::Ordering::Greater
        );
        assert_eq!(
            node_cmp::<u64>(4, &Some(9), 4, Some(&9)),
            std::cmp::Ordering::Equal
        );
        assert_eq!(
            node_cmp::<u64>(3, &Some(9), 4, Some(&1)),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn insert_and_find_in_order() {
        let head = Box::into_raw(new_dummy_head());
        let guard = epoch::pin_domain(TEST_DOMAIN);
        unsafe {
            for so in [9u64, 3, 7, 5] {
                let node = ListNode::new_regular(so, so, so * 10, 0);
                insert_at(head, node, &guard)
                    .map_err(|_| "duplicate")
                    .unwrap();
            }
            // Duplicate insert fails.
            let dup = ListNode::new_regular(7, 7, 70, 0);
            assert!(insert_at(head, dup, &guard).is_err());

            // Walk the list: must be sorted by so_key.
            let mut cur = (*head).next.load(Ordering::SeqCst);
            let mut seen = Vec::new();
            while !tagged::is_null(cur) {
                let n = &*tagged::unpack::<ListNode<u64, u64>>(cur);
                seen.push(n.so_key);
                cur = n.next.load(Ordering::SeqCst);
            }
            assert_eq!(seen, vec![3, 5, 7, 9]);

            let hit = find(head, 5, Some(&5), &guard);
            assert!(hit.found);
            let miss = find(head, 6, Some(&6), &guard);
            assert!(!miss.found);

            // Clean up.
            let mut cur = (*head).next.load(Ordering::SeqCst);
            while !tagged::is_null(cur) {
                let n = Box::from_raw(
                    tagged::unpack::<ListNode<u64, u64>>(cur) as *mut ListNode<u64, u64>
                );
                cur = n.next.load(Ordering::SeqCst);
            }
            drop(Box::from_raw(head));
        }
    }

    #[test]
    fn find_unlinks_marked_nodes() {
        let head = Box::into_raw(new_dummy_head());
        let guard = epoch::pin_domain(TEST_DOMAIN);
        unsafe {
            let a = insert_at(head, ListNode::new_regular(3, 3u64, 30u64, 0), &guard)
                .map_err(|_| "duplicate")
                .unwrap();
            let _b = insert_at(head, ListNode::new_regular(5, 5u64, 50u64, 0), &guard)
                .map_err(|_| "duplicate")
                .unwrap();
            // Mark node a (so_key 3) for deletion by setting the mark bit on its next.
            let a_next = (*a).next.load(Ordering::SeqCst);
            (*a).next
                .compare_exchange(
                    a_next,
                    tagged::with_mark(a_next),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .unwrap();
            // A find for so_key 5 must step over (and unlink) the marked node.
            let res = find(head, 5, Some(&5), &guard);
            assert!(res.found);
            let first = (*head).next.load(Ordering::SeqCst);
            let first_node = &*tagged::unpack::<ListNode<u64, u64>>(first);
            assert_eq!(first_node.so_key, 5, "marked node was physically unlinked");

            // Clean up (a was unlinked but we still own it here).
            drop(Box::from_raw(a as *mut ListNode<u64, u64>));
            let mut cur = (*head).next.load(Ordering::SeqCst);
            while !tagged::is_null(cur) {
                let n = Box::from_raw(
                    tagged::unpack::<ListNode<u64, u64>>(cur) as *mut ListNode<u64, u64>
                );
                cur = n.next.load(Ordering::SeqCst);
            }
            drop(Box::from_raw(head));
        }
    }
}
