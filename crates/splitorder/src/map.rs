//! The split-ordered hash map proper: a lazily-initialized, doubling bucket directory
//! over the single lock-free list of [`crate::list`].

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use crossbeam_epoch::{self as epoch, Guard};
use skiptrie_atomics::{retire_box, tagged};
use skiptrie_metrics::{self as metrics, Counter};

use crate::list::{self, ListNode};

/// Buckets per directory segment (segments are allocated lazily).
const SEGMENT_BITS: usize = 12;
const SEGMENT_SIZE: usize = 1 << SEGMENT_BITS;
/// Maximum number of segments; the table stops growing past
/// `MAX_SEGMENTS * SEGMENT_SIZE` buckets (lookups stay correct, just with longer
/// expected chains).
const MAX_SEGMENTS: usize = 1 << 12;
/// The table doubles once the average chain length exceeds this.
const LOAD_FACTOR: usize = 3;

type Segment = [AtomicU64; SEGMENT_SIZE];

/// A lock-free, linearizable, resizable hash map with *insert-if-absent* semantics.
///
/// This is the `prefixes` table of the concurrent x-fast trie (paper, Section 4), but
/// it is fully generic and reusable on its own. See the crate-level documentation for
/// the split-ordering idea.
///
/// `K` must be `Ord` (used only to totally order same-hash collisions inside the
/// list) in addition to the usual `Hash + Eq`. Values are returned by clone; use
/// `Copy` types (the SkipTrie stores raw trie-node pointers) when reads are hot.
pub struct SplitOrderedMap<K, V> {
    /// Directory of lazily allocated segments; each bucket entry is a tagged pointer
    /// to that bucket's dummy list node (null = uninitialized bucket).
    directory: Box<[AtomicPtr<Segment>]>,
    /// Current number of buckets in use (always a power of two).
    size: AtomicUsize,
    /// Number of regular (non-dummy) items.
    count: AtomicUsize,
    /// Dummy node of bucket 0 — the head of the entire list.
    head: *const ListNode<K, V>,
}

// SAFETY: all shared mutation goes through atomics; nodes are managed via epoch
// reclamation. `K`/`V` cross threads inside nodes.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for SplitOrderedMap<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SplitOrderedMap<K, V> {}

impl<K, V> Default for SplitOrderedMap<K, V>
where
    K: Hash + Eq + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

fn hash_key<K: Hash>(key: &K) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// Split-order key of a regular item: reversed hash with the lowest bit set, so it
/// sorts strictly between its bucket's dummy and the next bucket's dummy.
fn regular_so_key(hash: u64) -> u64 {
    hash.reverse_bits() | 1
}

/// Split-order key of a bucket's dummy node.
fn dummy_so_key(bucket: u64) -> u64 {
    bucket.reverse_bits()
}

/// The "parent" bucket from which a new bucket is split off: the index with its most
/// significant set bit cleared.
fn parent_bucket(bucket: u64) -> u64 {
    debug_assert!(bucket > 0);
    let msb = 63 - bucket.leading_zeros();
    bucket & !(1u64 << msb)
}

impl<K, V> SplitOrderedMap<K, V>
where
    K: Hash + Eq + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty map with a single bucket.
    pub fn new() -> Self {
        let directory: Box<[AtomicPtr<Segment>]> = (0..MAX_SEGMENTS)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        let head = Box::into_raw(ListNode::<K, V>::new_dummy(dummy_so_key(0)));
        let map = SplitOrderedMap {
            directory,
            size: AtomicUsize::new(1),
            count: AtomicUsize::new(0),
            head,
        };
        map.set_bucket_entry(0, head);
        map
    }

    /// Number of items currently in the map (linearizable only in quiescent states).
    pub fn len(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }

    /// True if the map holds no items (quiescently accurate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn segment(&self, index: usize) -> &Segment {
        let seg_idx = index >> SEGMENT_BITS;
        assert!(seg_idx < MAX_SEGMENTS, "bucket index out of range");
        let ptr = self.directory[seg_idx].load(Ordering::SeqCst);
        if !ptr.is_null() {
            // SAFETY: segments are never freed while the map is alive.
            return unsafe { &*ptr };
        }
        // Allocate a zeroed segment and race to install it.
        let fresh: Box<Segment> = Box::new(std::array::from_fn(|_| AtomicU64::new(0)));
        let fresh_ptr = Box::into_raw(fresh);
        match self.directory[seg_idx].compare_exchange(
            std::ptr::null_mut(),
            fresh_ptr,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => unsafe { &*fresh_ptr },
            Err(existing) => {
                // Lost the race: free ours, use theirs.
                unsafe { drop(Box::from_raw(fresh_ptr)) };
                unsafe { &*existing }
            }
        }
    }

    fn bucket_entry(&self, bucket: u64) -> &AtomicU64 {
        let index = bucket as usize;
        &self.segment(index)[index & (SEGMENT_SIZE - 1)]
    }

    fn set_bucket_entry(&self, bucket: u64, dummy: *const ListNode<K, V>) {
        self.bucket_entry(bucket)
            .store(tagged::pack(dummy), Ordering::SeqCst);
    }

    /// Returns the dummy node for `bucket`, initializing it (and, recursively, its
    /// parent buckets) if necessary.
    fn get_bucket(&self, bucket: u64, guard: &Guard) -> *const ListNode<K, V> {
        let entry = self.bucket_entry(bucket);
        let word = entry.load(Ordering::SeqCst);
        if !tagged::is_null(word) {
            return tagged::unpack(word);
        }
        self.initialize_bucket(bucket, guard)
    }

    fn initialize_bucket(&self, bucket: u64, guard: &Guard) -> *const ListNode<K, V> {
        debug_assert!(bucket > 0, "bucket 0 is initialized at construction");
        let parent = parent_bucket(bucket);
        let parent_entry = self.bucket_entry(parent).load(Ordering::SeqCst);
        let parent_dummy: *const ListNode<K, V> = if tagged::is_null(parent_entry) {
            self.initialize_bucket(parent, guard)
        } else {
            tagged::unpack(parent_entry)
        };

        // Insert (or find) the dummy for this bucket, starting from the parent dummy.
        let so = dummy_so_key(bucket);
        let dummy = ListNode::<K, V>::new_dummy(so);
        // SAFETY: parent_dummy is a live dummy node; dummies are never removed.
        let dummy_ptr = match unsafe { list::insert_at(parent_dummy, dummy, guard) } {
            Ok(ptr) => ptr,
            Err(_rejected) => {
                // A dummy with this split-order key already exists; find it.
                // SAFETY: as above.
                let res = unsafe { list::find::<K, V>(parent_dummy, so, None, guard) };
                debug_assert!(res.found);
                tagged::unpack(res.curr_word)
            }
        };
        let entry = self.bucket_entry(bucket);
        let _ = entry.compare_exchange(
            tagged::NULL,
            tagged::pack(dummy_ptr),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        // Whether we won or lost, the entry now points at the unique dummy for `so`.
        tagged::unpack(entry.load(Ordering::SeqCst))
    }

    fn bucket_for_hash(&self, hash: u64) -> u64 {
        hash & (self.size.load(Ordering::SeqCst) as u64 - 1)
    }

    /// Inserts `key -> value` if `key` is absent. Returns `true` if the insertion took
    /// place, `false` if the key was already present (the existing value is kept).
    pub fn insert(&self, key: K, value: V) -> bool {
        metrics::record(Counter::HashOp);
        let guard = epoch::pin();
        let hash = hash_key(&key);
        let so = regular_so_key(hash);
        let bucket = self.bucket_for_hash(hash);
        let dummy = self.get_bucket(bucket, &guard);
        let node = ListNode::new_regular(so, key, value);
        // SAFETY: `dummy` is a live dummy node of this map's list.
        match unsafe { list::insert_at(dummy, node, &guard) } {
            Ok(_) => {
                let count = self.count.fetch_add(1, Ordering::SeqCst) + 1;
                self.maybe_grow(count);
                true
            }
            Err(_rejected) => false,
        }
    }

    fn maybe_grow(&self, count: usize) {
        let size = self.size.load(Ordering::SeqCst);
        if count > size * LOAD_FACTOR && size < MAX_SEGMENTS * SEGMENT_SIZE {
            // Doubling is a single CAS; items never move thanks to split-ordering.
            let _ = self
                .size
                .compare_exchange(size, size * 2, Ordering::SeqCst, Ordering::SeqCst);
        }
    }

    /// Returns a clone of the value mapped to `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        metrics::record(Counter::HashOp);
        let guard = epoch::pin();
        let hash = hash_key(key);
        let so = regular_so_key(hash);
        let bucket = self.bucket_for_hash(hash);
        let dummy = self.get_bucket(bucket, &guard);
        // SAFETY: `dummy` is a live dummy node of this map's list.
        let res = unsafe { list::find(dummy, so, Some(key), &guard) };
        if !res.found {
            return None;
        }
        // SAFETY: found nodes are protected by the pin.
        let node = unsafe { &*tagged::unpack::<ListNode<K, V>>(res.curr_word) };
        node.value.clone()
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Removes `key` unconditionally. Returns the removed value, or `None` if absent.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.remove_with(key, |_| true)
    }

    /// The paper's `compareAndDelete`: removes `key` only if `predicate` holds for the
    /// currently mapped value (checked atomically with the removal, since values are
    /// immutable per entry). Returns `true` if this call removed the entry.
    pub fn remove_if(&self, key: &K, predicate: impl Fn(&V) -> bool) -> bool {
        self.remove_with(key, predicate).is_some()
    }

    fn remove_with(&self, key: &K, predicate: impl Fn(&V) -> bool) -> Option<V> {
        metrics::record(Counter::HashOp);
        let guard = epoch::pin();
        let hash = hash_key(key);
        let so = regular_so_key(hash);
        let bucket = self.bucket_for_hash(hash);
        let dummy = self.get_bucket(bucket, &guard);
        loop {
            // SAFETY: `dummy` is a live dummy node of this map's list.
            let res = unsafe { list::find(dummy, so, Some(key), &guard) };
            if !res.found {
                return None;
            }
            // SAFETY: protected by the pin.
            let node = unsafe { &*tagged::unpack::<ListNode<K, V>>(res.curr_word) };
            let value = node.value.as_ref().expect("regular nodes carry a value");
            if !predicate(value) {
                return None;
            }
            // Logically delete: set the mark on the victim's own next word.
            let next = node.next.load(Ordering::SeqCst);
            if tagged::is_marked(next) {
                // Someone else is deleting it concurrently; as far as this call is
                // concerned the key is (being) removed by them.
                return None;
            }
            metrics::record(Counter::CasAttempt);
            if node
                .next
                .compare_exchange(
                    next,
                    tagged::with_mark(next),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_err()
            {
                metrics::record(Counter::CasFailure);
                continue; // next changed (insertion after us, or a racing delete); retry
            }
            let removed = value.clone();
            // Physically unlink: try the quick CAS; on failure a fresh find() is
            // guaranteed to complete the unlink (or observe it already done).
            metrics::record(Counter::CasAttempt);
            if res
                .prev_link
                .compare_exchange(
                    res.curr_word,
                    tagged::untagged(next),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_err()
            {
                metrics::record(Counter::CasFailure);
                // SAFETY: as above.
                let _ = unsafe { list::find(dummy, so, Some(key), &guard) };
            }
            self.count.fetch_sub(1, Ordering::SeqCst);
            // We won the mark, so we own retirement.
            // SAFETY: the node is unlinked and will not be retired by anyone else.
            unsafe {
                let victim = tagged::unpack::<ListNode<K, V>>(res.curr_word) as *mut ListNode<K, V>;
                retire_box(&guard, victim);
            }
            return Some(removed);
        }
    }

    /// Calls `f` for every `(key, value)` currently reachable. Intended for tests,
    /// debugging and drop-time accounting; it is *not* a linearizable snapshot.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        let guard = epoch::pin();
        let _ = &guard;
        let mut cur = unsafe { (*self.head).next.load(Ordering::SeqCst) };
        while !tagged::is_null(cur) {
            // SAFETY: protected by the pin; traversal only follows live links.
            let node = unsafe { &*tagged::unpack::<ListNode<K, V>>(cur) };
            let next = node.next.load(Ordering::SeqCst);
            if !tagged::is_marked(next) && !node.is_dummy() {
                if let (Some(k), Some(v)) = (node.key.as_ref(), node.value.as_ref()) {
                    f(k, v);
                }
            }
            cur = tagged::untagged(next);
        }
    }
}

impl<K, V> Drop for SplitOrderedMap<K, V> {
    fn drop(&mut self) {
        // Exclusive access: free every list node (dummies included) and every segment.
        unsafe {
            let mut cur: *mut ListNode<K, V> = self.head as *mut _;
            while !cur.is_null() {
                let node = Box::from_raw(cur);
                let next = node.next.load(Ordering::SeqCst);
                cur = tagged::unpack::<ListNode<K, V>>(next) as *mut _;
            }
            for slot in self.directory.iter() {
                let seg = slot.load(Ordering::SeqCst);
                if !seg.is_null() {
                    drop(Box::from_raw(seg));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;

    #[test]
    fn so_key_helpers() {
        assert_eq!(dummy_so_key(0), 0);
        assert_eq!(parent_bucket(1), 0);
        assert_eq!(parent_bucket(5), 1);
        assert_eq!(parent_bucket(6), 2);
        assert_eq!(parent_bucket(8), 0);
        // Regular keys are odd after reversal, dummies even.
        assert_eq!(regular_so_key(0) & 1, 1);
        assert_eq!(dummy_so_key(3) & 1, 0);
        // Ordering property: a bucket's dummy sorts before its items.
        let h = 0xdead_beef_u64;
        assert!(dummy_so_key(h & 7) < regular_so_key(h) || (h & 7) != h % 8);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let map: SplitOrderedMap<u64, String> = SplitOrderedMap::new();
        assert!(map.is_empty());
        assert!(map.insert(1, "one".to_string()));
        assert!(map.insert(2, "two".to_string()));
        assert!(!map.insert(1, "uno".to_string()));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&1).as_deref(), Some("one"));
        assert_eq!(map.get(&3), None);
        assert_eq!(map.remove(&1).as_deref(), Some("one"));
        assert_eq!(map.get(&1), None);
        assert_eq!(map.remove(&1), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn remove_if_checks_the_value() {
        let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
        map.insert(10, 100);
        assert!(!map.remove_if(&10, |v| *v == 999));
        assert_eq!(map.get(&10), Some(100));
        assert!(map.remove_if(&10, |v| *v == 100));
        assert_eq!(map.get(&10), None);
        assert!(!map.remove_if(&11, |_| true));
    }

    #[test]
    fn grows_past_many_items_and_stays_correct() {
        let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
        let n = 10_000u64;
        for i in 0..n {
            assert!(map.insert(i, i * 2));
        }
        assert_eq!(map.len(), n as usize);
        assert!(map.size.load(Ordering::SeqCst) > 1, "table must have grown");
        for i in 0..n {
            assert_eq!(map.get(&i), Some(i * 2), "key {i}");
        }
        for i in (0..n).step_by(2) {
            assert_eq!(map.remove(&i), Some(i * 2));
        }
        for i in 0..n {
            let expected = if i % 2 == 0 { None } else { Some(i * 2) };
            assert_eq!(map.get(&i), expected);
        }
        assert_eq!(map.len(), (n / 2) as usize);
    }

    #[test]
    fn string_keys_work() {
        let map: SplitOrderedMap<String, u64> = SplitOrderedMap::new();
        for i in 0..500u64 {
            assert!(map.insert(format!("key-{i}"), i));
        }
        for i in 0..500u64 {
            assert_eq!(map.get(&format!("key-{i}")), Some(i));
        }
        assert_eq!(map.get(&"missing".to_string()), None);
    }

    #[test]
    fn for_each_visits_live_entries() {
        let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
        for i in 0..100 {
            map.insert(i, i);
        }
        for i in 0..50 {
            map.remove(&i);
        }
        let mut collected = HashMap::new();
        map.for_each(|k, v| {
            collected.insert(*k, *v);
        });
        assert_eq!(collected.len(), 50);
        assert!(collected.keys().all(|k| *k >= 50));
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let map = Arc::new(SplitOrderedMap::<u64, u64>::new());
        let threads = 8;
        let per_thread = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let key = t as u64 * per_thread + i;
                        assert!(map.insert(key, key + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.len(), (threads as u64 * per_thread) as usize);
        for key in 0..threads as u64 * per_thread {
            assert_eq!(map.get(&key), Some(key + 1));
        }
    }

    #[test]
    fn concurrent_same_key_insert_races_have_one_winner() {
        let map = Arc::new(SplitOrderedMap::<u64, u64>::new());
        let threads = 8;
        let keys = 200u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    let mut wins = 0u64;
                    for k in 0..keys {
                        if map.insert(k, t as u64) {
                            wins += 1;
                        }
                    }
                    wins
                })
            })
            .collect();
        let total_wins: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total_wins, keys, "each key must be inserted exactly once");
        assert_eq!(map.len(), keys as usize);
    }

    #[test]
    fn concurrent_insert_remove_churn_is_consistent() {
        let map = Arc::new(SplitOrderedMap::<u64, u64>::new());
        let threads = 8usize;
        let iters = 3_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    let mut net = 0i64;
                    for i in 0..iters {
                        // Each thread works on its own key range so the net count is
                        // exactly reconstructible.
                        let key = (t as u64) << 32 | (i % 64);
                        if i % 2 == 0 {
                            if map.insert(key, i) {
                                net += 1;
                            }
                        } else if map.remove(&key).is_some() {
                            net -= 1;
                        }
                    }
                    net
                })
            })
            .collect();
        let net_total: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(map.len() as i64, net_total);
        let mut live = 0;
        map.for_each(|_, _| live += 1);
        assert_eq!(live as i64, net_total);
    }
}
