//! The split-ordered hash map proper: a growable, lazily-initialized bucket
//! directory (the segment tree of [`crate::dir`]) over the single lock-free list of
//! [`crate::list`].

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam_epoch::{self as epoch, Guard, Reclaimer};
use skiptrie_atomics::{retire_box_born, tagged};
use skiptrie_metrics::{self as metrics, Counter};

use crate::dir::{Directory, DirectoryConfig};
use crate::list::{self, ListNode};

/// The table doubles once the average chain length exceeds this.
const LOAD_FACTOR: usize = 3;

/// A lock-free, linearizable, resizable hash map with *insert-if-absent* semantics.
///
/// This is the `prefixes` table of the concurrent x-fast trie (paper, Section 4), but
/// it is fully generic and reusable on its own. See the crate-level documentation for
/// the split-ordering idea.
///
/// `K` must be `Ord` (used only to totally order same-hash collisions inside the
/// list) in addition to the usual `Hash + Eq`. Values are returned by clone; use
/// `Copy` types (the SkipTrie stores raw trie-node pointers) when reads are hot.
pub struct SplitOrderedMap<K, V> {
    /// Growable segment tree; each leaf slot is a tagged pointer to that bucket's
    /// dummy list node (null = uninitialized bucket). See [`crate::dir`].
    directory: Directory,
    /// Current number of buckets in use (always a power of two).
    size: AtomicUsize,
    /// Number of regular (non-dummy) items.
    count: AtomicUsize,
    /// Bucket-count ceiling (a power of two). In the default unbounded mode this is
    /// the directory's own astronomical [`max_capacity`](Directory::max_capacity)
    /// and is never reached; in the legacy bounded mode
    /// ([`SplitOrderedMap::with_bucket_cap`]) `size` stops doubling here and every
    /// capped insert records [`Counter::HashSaturated`] so the cliff is observable.
    max_buckets: usize,
    /// Epoch domain every operation pins and retires in (`0` = the process-wide
    /// default). Set through [`SplitOrderedMap::with_directory_in_domain`] so a
    /// domain-isolated owner (e.g. one shard of a sharded SkipTrie) keeps its
    /// prefix-table garbage out of the global domain: every pin goes through the
    /// owning structure's domain, never `epoch::pin()` directly.
    domain: usize,
    /// Which reclamation substrate guards acquired via [`SplitOrderedMap::pin`]
    /// ride (EBR by default; hazard for stall-robust bounded garbage). Set through
    /// [`SplitOrderedMap::with_directory_in_domain`] alongside the domain.
    reclaimer: Reclaimer,
    /// Dummy node of bucket 0 — the head of the entire list.
    head: *const ListNode<K, V>,
}

// SAFETY: all shared mutation goes through atomics; nodes are managed via epoch
// reclamation. `K`/`V` cross threads inside nodes.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for SplitOrderedMap<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SplitOrderedMap<K, V> {}

impl<K, V> Default for SplitOrderedMap<K, V>
where
    K: Hash + Eq + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

/// A fast, non-cryptographic hasher: multiply-rotate mixing per 8-byte word with a
/// splitmix64-style finalizer.
///
/// The split-ordered map consumes hashes in two bit-sensitive ways — the bucket
/// index is the hash's *low* bits, the list position its *reversed* bits — so the
/// finalizer must diffuse every input bit into every output bit, which the
/// splitmix64 finalizer is built for. SipHash (the std default) gives the same
/// property at several times the cost per hash, and this map is on the hot path of
/// every x-fast-trie probe (the `LowestAncestor` binary search hashes `log u`
/// prefixes per query, and a bulk load hashes every distinct prefix once). HashDoS
/// resistance is not part of this crate's contract.
struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, word: u64) {
        self.state = (self.state ^ word)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(23);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: full avalanche, so low bits (bucket index) and high
        // bits (list order after reversal) are equally well mixed.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn hash_key<K: Hash>(key: &K) -> u64 {
    let mut hasher = FastHasher {
        state: 0x5bd1_e995_9e37_79b9,
    };
    key.hash(&mut hasher);
    hasher.finish()
}

/// Split-order key of a regular item: reversed hash with the lowest bit set, so it
/// sorts strictly between its bucket's dummy and the next bucket's dummy.
fn regular_so_key(hash: u64) -> u64 {
    hash.reverse_bits() | 1
}

/// Split-order key of a bucket's dummy node.
fn dummy_so_key(bucket: u64) -> u64 {
    bucket.reverse_bits()
}

/// The "parent" bucket from which a new bucket is split off: the index with its most
/// significant set bit cleared.
fn parent_bucket(bucket: u64) -> u64 {
    debug_assert!(bucket > 0);
    let msb = 63 - bucket.leading_zeros();
    bucket & !(1u64 << msb)
}

impl<K, V> SplitOrderedMap<K, V>
where
    K: Hash + Eq + Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates an empty map with a single bucket and an *unbounded* bucket
    /// directory: the segment tree behind [`DirectoryConfig`] grows a level whenever the
    /// doubling rule outruns it, so the expected `O(1)` chain length holds at every
    /// size and [`Counter::HashSaturated`] is never recorded.
    pub fn new() -> Self {
        Self::with_directory(DirectoryConfig::default())
    }

    /// Creates an empty map in the legacy *bounded* mode: the bucket directory never
    /// grows past `max_buckets` (rounded up to a power of two; clamped to the
    /// segment tree's ceiling at its maximum height — `2^63` with the default
    /// fanout, so the clamp only matters for tiny test fanouts).
    ///
    /// Past the cap the map keeps every guarantee except the `O(1)` expected chain
    /// length: items never move (split-ordering), lookups and removals stay correct,
    /// and each capped insert records [`Counter::HashSaturated`] so the degradation
    /// shows up in metrics instead of only in latency. This mode exists for A/B
    /// experiments against the unbounded default (E12 reproduces the old saturation
    /// cliff with it) and to unit-test the saturation path without fifty million
    /// inserts.
    ///
    /// # Panics
    ///
    /// Panics if `max_buckets` is zero.
    pub fn with_bucket_cap(max_buckets: usize) -> Self {
        Self::with_directory(DirectoryConfig::default().with_bucket_cap(max_buckets))
    }

    /// Creates an empty map with an explicitly shaped bucket directory — fanout for
    /// growth-at-test-scale, optional cap for the legacy bounded mode. See
    /// [`DirectoryConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `config.segment_bits` is outside `2..=16`, or if
    /// `config.bucket_cap` is `Some(0)`.
    pub fn with_directory(config: DirectoryConfig) -> Self {
        Self::with_directory_in_domain(config, None, Reclaimer::Ebr)
    }

    /// Creates an empty map with an explicitly shaped bucket directory that pins and
    /// retires in epoch domain `domain` (modulo the number of domains; `None` = the
    /// process-wide default domain 0).
    ///
    /// Every operation on the map — bucket initialization, chain walks, node
    /// retirement — then rides that domain's epoch counter, so a stalled reader
    /// pinned in the default domain can never stall this map's reclamation (and
    /// vice versa). The x-fast trie passes its own domain here so a domain-isolated
    /// trie's prefix table reclaims independently too. `reclaimer` selects the
    /// domain's reclamation substrate (see [`Reclaimer`]); every pin and every
    /// retirement the map performs routes through it.
    ///
    /// # Panics
    ///
    /// Panics if `config.segment_bits` is outside `2..=16`, or if
    /// `config.bucket_cap` is `Some(0)`.
    pub fn with_directory_in_domain(
        config: DirectoryConfig,
        domain: Option<usize>,
        reclaimer: Reclaimer,
    ) -> Self {
        let directory = Directory::new(config.segment_bits);
        let max_buckets = match config.bucket_cap {
            Some(cap) => {
                assert!(cap > 0, "the table needs at least one bucket");
                cap.min(1usize << 62)
                    .next_power_of_two()
                    .min(directory.max_capacity())
            }
            None => directory.max_capacity(),
        };
        let head = Box::into_raw(ListNode::<K, V>::new_dummy(dummy_so_key(0)));
        let map = SplitOrderedMap {
            directory,
            size: AtomicUsize::new(1),
            count: AtomicUsize::new(0),
            max_buckets,
            domain: domain.unwrap_or(0),
            reclaimer,
            head,
        };
        map.set_bucket_entry(0, head);
        map
    }

    /// Pins the calling thread in this map's epoch domain (see
    /// [`SplitOrderedMap::with_directory_in_domain`]). Every operation acquires its
    /// guard here, so all of the map's pins and retirements stay in one domain.
    pub fn pin(&self) -> Guard {
        // `pin_domain_with(0, Ebr)` is the default domain and substrate, so an
        // un-configured map behaves exactly as before — but without a direct
        // `epoch::pin()` call site.
        epoch::pin_domain_with(self.domain, self.reclaimer)
    }

    /// Number of items currently in the map (linearizable only in quiescent states).
    pub fn len(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }

    /// True if the map holds no items (quiescently accurate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn bucket_entry(&self, bucket: u64) -> &AtomicU64 {
        // The directory grows itself if the doubling rule outran its eager growth;
        // no bucket index below `size` is ever out of range.
        self.directory.entry(bucket as usize)
    }

    fn set_bucket_entry(&self, bucket: u64, dummy: *const ListNode<K, V>) {
        self.bucket_entry(bucket)
            .store(tagged::pack(dummy), Ordering::SeqCst);
    }

    /// Returns the dummy node for `bucket`, initializing it (and, recursively, its
    /// parent buckets) if necessary.
    fn get_bucket(&self, bucket: u64, guard: &Guard) -> *const ListNode<K, V> {
        let entry = self.bucket_entry(bucket);
        let word = entry.load(Ordering::SeqCst);
        if !tagged::is_null(word) {
            return tagged::unpack(word);
        }
        self.initialize_bucket(bucket, guard)
    }

    fn initialize_bucket(&self, bucket: u64, guard: &Guard) -> *const ListNode<K, V> {
        debug_assert!(bucket > 0, "bucket 0 is initialized at construction");
        let parent = parent_bucket(bucket);
        let parent_entry = self.bucket_entry(parent).load(Ordering::SeqCst);
        let parent_dummy: *const ListNode<K, V> = if tagged::is_null(parent_entry) {
            self.initialize_bucket(parent, guard)
        } else {
            tagged::unpack(parent_entry)
        };

        // Insert (or find) the dummy for this bucket, starting from the parent dummy.
        let so = dummy_so_key(bucket);
        let dummy = ListNode::<K, V>::new_dummy(so);
        // SAFETY: parent_dummy is a live dummy node; dummies are never removed.
        let dummy_ptr = match unsafe { list::insert_at(parent_dummy, dummy, guard) } {
            Ok(ptr) => ptr,
            Err(_rejected) => {
                // A dummy with this split-order key already exists; find it.
                // SAFETY: as above.
                let res = unsafe { list::find::<K, V>(parent_dummy, so, None, guard) };
                debug_assert!(res.found);
                tagged::unpack(res.curr_word)
            }
        };
        let entry = self.bucket_entry(bucket);
        let _ = entry.compare_exchange(
            tagged::NULL,
            tagged::pack(dummy_ptr),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        // Whether we won or lost, the entry now points at the unique dummy for `so`.
        tagged::unpack(entry.load(Ordering::SeqCst))
    }

    fn bucket_for_hash(&self, hash: u64) -> u64 {
        hash & (self.size.load(Ordering::SeqCst) as u64 - 1)
    }

    /// Inserts `key -> value` if `key` is absent. Returns `true` if the insertion took
    /// place, `false` if the key was already present (the existing value is kept).
    pub fn insert(&self, key: K, value: V) -> bool {
        metrics::record(Counter::HashOp);
        let guard = self.pin();
        let hash = hash_key(&key);
        let so = regular_so_key(hash);
        let bucket = self.bucket_for_hash(hash);
        let dummy = self.get_bucket(bucket, &guard);
        // Stamped before the publishing CAS inside `insert_at`, so the birth era
        // cannot postdate the node's reachability (hazard-substrate soundness).
        let node = ListNode::new_regular(so, key, value, guard.current_era());
        // SAFETY: `dummy` is a live dummy node of this map's list.
        match unsafe { list::insert_at(dummy, node, &guard) } {
            Ok(_) => {
                let count = self.count.fetch_add(1, Ordering::SeqCst) + 1;
                self.maybe_grow(count);
                true
            }
            Err(_rejected) => false,
        }
    }

    fn maybe_grow(&self, count: usize) {
        let size = self.size.load(Ordering::SeqCst);
        if count > size * LOAD_FACTOR {
            if size >= self.max_buckets {
                // The directory is at its cap: this insert wanted a doubling it
                // cannot have. Chains now grow with every further insert — record
                // it so the cliff is visible in metrics, not just in latency.
                metrics::record(Counter::HashSaturated);
                return;
            }
            // Doubling is a single CAS; items never move thanks to split-ordering.
            if self
                .size
                .compare_exchange(size, size * 2, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // Eagerly give the directory the height the new size needs so the
                // probe path almost never pays the grow CAS itself (entry() still
                // grows on demand if it races ahead of us).
                self.directory.ensure_capacity(size * 2);
            }
        }
    }

    /// Number of buckets currently in use (a power of two).
    pub fn bucket_count(&self) -> usize {
        self.size.load(Ordering::SeqCst)
    }

    /// Current height of the bucket directory's segment tree (`1..=7`); grows by one
    /// whenever the bucket count outgrows `fanout^height`. Diagnostics for tests and
    /// the E12 experiment.
    pub fn directory_height(&self) -> u32 {
        self.directory.height()
    }

    /// Number of allocated directory tree nodes (quiescently accurate). Together
    /// with the `dir_node_alloc`/`dir_node_freed` counters this pins the
    /// leak-freedom of drop in the reclamation canary tests.
    pub fn directory_node_count(&self) -> usize {
        self.directory.node_count()
    }

    /// True once the table has stopped resizing: the bucket directory is at its cap
    /// *and* the load factor calls for another doubling. From this point expected
    /// chain length — and therefore expected cost of every operation — grows
    /// linearly with further inserts (see [`SplitOrderedMap::with_bucket_cap`]).
    pub fn is_saturated(&self) -> bool {
        let size = self.size.load(Ordering::SeqCst);
        size >= self.max_buckets && self.len() > size * LOAD_FACTOR
    }

    /// Returns a clone of the value mapped to `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        metrics::record(Counter::HashOp);
        let guard = self.pin();
        let hash = hash_key(key);
        let so = regular_so_key(hash);
        let bucket = self.bucket_for_hash(hash);
        let dummy = self.get_bucket(bucket, &guard);
        // SAFETY: `dummy` is a live dummy node of this map's list.
        let res = unsafe { list::find(dummy, so, Some(key), &guard) };
        if !res.found {
            return None;
        }
        // SAFETY: found nodes are protected by the pin.
        let node = unsafe { &*tagged::unpack::<ListNode<K, V>>(res.curr_word) };
        node.value.clone()
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Removes `key` unconditionally. Returns the removed value, or `None` if absent.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.remove_with(key, |_| true)
    }

    /// The paper's `compareAndDelete`: removes `key` only if `predicate` holds for the
    /// currently mapped value (checked atomically with the removal, since values are
    /// immutable per entry). Returns `true` if this call removed the entry.
    pub fn remove_if(&self, key: &K, predicate: impl Fn(&V) -> bool) -> bool {
        self.remove_with(key, predicate).is_some()
    }

    fn remove_with(&self, key: &K, predicate: impl Fn(&V) -> bool) -> Option<V> {
        metrics::record(Counter::HashOp);
        let guard = self.pin();
        let hash = hash_key(key);
        let so = regular_so_key(hash);
        let bucket = self.bucket_for_hash(hash);
        let dummy = self.get_bucket(bucket, &guard);
        loop {
            // SAFETY: `dummy` is a live dummy node of this map's list.
            let res = unsafe { list::find(dummy, so, Some(key), &guard) };
            if !res.found {
                return None;
            }
            // SAFETY: protected by the pin.
            let node = unsafe { &*tagged::unpack::<ListNode<K, V>>(res.curr_word) };
            let value = node.value.as_ref().expect("regular nodes carry a value");
            if !predicate(value) {
                return None;
            }
            // Logically delete: set the mark on the victim's own next word.
            let next = node.next.load(Ordering::SeqCst);
            if tagged::is_marked(next) {
                // Someone else is deleting it concurrently; as far as this call is
                // concerned the key is (being) removed by them.
                return None;
            }
            metrics::record(Counter::CasAttempt);
            if node
                .next
                .compare_exchange(
                    next,
                    tagged::with_mark(next),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_err()
            {
                metrics::record(Counter::CasFailure);
                continue; // next changed (insertion after us, or a racing delete); retry
            }
            let removed = value.clone();
            // Physically unlink: try the quick CAS; on failure a fresh find() is
            // guaranteed to complete the unlink (or observe it already done).
            metrics::record(Counter::CasAttempt);
            if res
                .prev_link
                .compare_exchange(
                    res.curr_word,
                    tagged::untagged(next),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_err()
            {
                metrics::record(Counter::CasFailure);
                // SAFETY: as above.
                let _ = unsafe { list::find(dummy, so, Some(key), &guard) };
            }
            self.count.fetch_sub(1, Ordering::SeqCst);
            // We won the mark, so we own retirement.
            // SAFETY: the node is unlinked and will not be retired by anyone else.
            unsafe {
                let victim = tagged::unpack::<ListNode<K, V>>(res.curr_word) as *mut ListNode<K, V>;
                retire_box_born(&guard, victim, (*victim).birth);
            }
            return Some(removed);
        }
    }

    /// Single-owner bulk insertion of `items`, returning how many were inserted
    /// (always `items.len()`): the hash-table face of the workspace's bulk-load
    /// subsystem, used by the SkipTrie to install every prefix of a bulk-loaded key
    /// set in one pass.
    ///
    /// Inserting `n` items one at a time costs `n` bucket localizations, `n` chain
    /// walks and `n` CAS publications, plus the lazy dummy-initialization cascades
    /// of every directory doubling along the way. Under `&mut self` none of that
    /// machinery is needed: the items are sorted by their split-order position once,
    /// the directory is sized to its final power of two up front (replaying the
    /// incremental doubling rule, including the [`Counter::HashSaturated`]
    /// accounting at the cap), dummies for every not-yet-initialized bucket are
    /// generated in split order, and one three-way merge relinks the entire list —
    /// existing nodes, new items, new dummies — with plain stores. `O(n log n)` for
    /// the sort, `O(existing + n + buckets)` for the merge, and the result is
    /// exactly the list the `n` individual inserts would have produced.
    ///
    /// # Panics
    ///
    /// Panics if a key equals another item's key or a key already present (the map
    /// must stay duplicate-free), or if the map is not quiescent (a logically
    /// deleted node still linked means a concurrent remove — incompatible with
    /// `&mut self`).
    pub fn bulk_load(&mut self, items: Vec<(K, V)>) -> usize {
        let n = items.len();
        if n == 0 {
            return 0;
        }
        // (1) Sort the new items by their final list position (so_key, key).
        let mut new_nodes: Vec<(u64, K, V)> = items
            .into_iter()
            .map(|(k, v)| (regular_so_key(hash_key(&k)), k, v))
            .collect();
        new_nodes.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

        // (2) Final directory size: replay the one-doubling-per-insert growth rule,
        // recording saturation for every insert that wanted a doubling past the cap.
        let existing = self.count.load(Ordering::SeqCst);
        let mut size = self.size.load(Ordering::SeqCst);
        let mut saturated = 0u64;
        for i in 1..=n {
            if existing + i > size * LOAD_FACTOR {
                if size < self.max_buckets {
                    size *= 2;
                } else {
                    saturated += 1;
                }
            }
        }
        metrics::add(Counter::HashSaturated, saturated);
        // Build the segment tree at its final height directly: one grow loop here
        // instead of a grow CAS discovered lazily on some later probe's path.
        self.directory.ensure_capacity(size);

        // (3) The existing list, in order (under `&mut self` it must be quiescent:
        // no marked node is still linked once its remover has returned).
        let mut old: Vec<*mut ListNode<K, V>> = Vec::with_capacity(existing + 2);
        unsafe {
            let mut cur = self.head as *mut ListNode<K, V>;
            while !cur.is_null() {
                let next = (*cur).next.load(Ordering::SeqCst);
                assert!(
                    !tagged::is_marked(next),
                    "bulk_load requires a quiescent map (marked node still linked)"
                );
                old.push(cur);
                cur = tagged::unpack::<ListNode<K, V>>(next) as *mut _;
            }
        }

        // (4) Buckets of the final directory that still lack a dummy, in split
        // order: bucket `rev(i)` has the i-th smallest dummy so_key, because
        // `dummy_so_key(rev(i) >> (64 - s)) == i << (64 - s)` is monotone in `i`.
        let s = size.trailing_zeros();
        let missing: Vec<u64> = (0..size as u64)
            .map(|i| {
                if s == 0 {
                    0
                } else {
                    i.reverse_bits() >> (64 - s)
                }
            })
            .filter(|&b| tagged::is_null(self.bucket_entry(b).load(Ordering::SeqCst)))
            .collect();

        // Within-batch duplicates surface as adjacent equal positions after the sort.
        for w in new_nodes.windows(2) {
            assert!(
                (w[0].0, &w[0].1) < (w[1].0, &w[1].1),
                "bulk_load requires distinct keys"
            );
        }

        // (5) Three-way merge by (so_key, dummy-before-regular, key), relinking the
        // whole list with plain stores and installing new bucket entries. The
        // descriptor tuple `(so_key, is_regular, key)` carries the total list order:
        // dummies sort before regular nodes at the same so_key, and `Option<&K>`
        // breaks regular-vs-regular hash collisions exactly as `list::find` does.
        let mut merged: Vec<*mut ListNode<K, V>> =
            Vec::with_capacity(old.len() + new_nodes.len() + missing.len());
        let mut oi = 0usize;
        let mut di = 0usize;
        let mut new_iter = new_nodes.into_iter().peekable();
        loop {
            let old_desc = old.get(oi).map(|&p| {
                // SAFETY: a live node of this map's list; exclusive access.
                let node = unsafe { &*p };
                (node.so_key, node.key.is_some(), node.key.as_ref())
            });
            let new_desc = new_iter.peek().map(|(so, k, _)| (*so, true, Some(k)));
            let dummy_desc = missing.get(di).map(|&b| (dummy_so_key(b), false, None));
            let smallest = [old_desc, new_desc, dummy_desc].into_iter().flatten().min();
            let Some(smallest) = smallest else {
                break;
            };
            if old_desc == Some(smallest) {
                assert!(
                    new_desc != Some(smallest),
                    "bulk_load key already present in the map"
                );
                merged.push(old[oi]);
                oi += 1;
            } else if dummy_desc == Some(smallest) {
                merged.push(self.new_bucket_dummy(missing[di]));
                di += 1;
            } else {
                let (so, k, v) = new_iter.next().expect("peeked");
                // Bulk load is single-owner (`&mut self`): birth 0 is the
                // always-sound conservative stamp for never-yet-published nodes.
                merged.push(Box::into_raw(ListNode::new_regular(so, k, v, 0)));
            }
        }

        debug_assert_eq!(merged[0], self.head as *mut _, "head dummy stays first");
        for pair in merged.windows(2) {
            // SAFETY: every node is owned by this map; exclusive access.
            unsafe {
                (*pair[0])
                    .next
                    .store(tagged::pack(pair[1]), Ordering::Relaxed)
            };
        }
        // SAFETY: as above.
        unsafe {
            (*merged[merged.len() - 1])
                .next
                .store(tagged::NULL, Ordering::Relaxed)
        };

        self.size.store(size, Ordering::SeqCst);
        self.count.fetch_add(n, Ordering::SeqCst);
        n
    }

    /// Allocates a dummy for `bucket` and installs its directory entry (bulk path).
    fn new_bucket_dummy(&self, bucket: u64) -> *mut ListNode<K, V> {
        let dummy = Box::into_raw(ListNode::<K, V>::new_dummy(dummy_so_key(bucket)));
        self.set_bucket_entry(bucket, dummy);
        dummy
    }

    /// Calls `f` for every `(key, value)` currently reachable. Intended for tests,
    /// debugging and drop-time accounting; it is *not* a linearizable snapshot.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        let guard = self.pin();
        let mut cur = guard.protected(|| unsafe { (*self.head).next.load(Ordering::SeqCst) });
        while !tagged::is_null(cur) {
            // SAFETY: protected by the pin; traversal only follows live links.
            let node = unsafe { &*tagged::unpack::<ListNode<K, V>>(cur) };
            let next = guard.protected(|| node.next.load(Ordering::SeqCst));
            if !tagged::is_marked(next) && !node.is_dummy() {
                if let (Some(k), Some(v)) = (node.key.as_ref(), node.value.as_ref()) {
                    f(k, v);
                }
            }
            cur = tagged::untagged(next);
        }
    }
}

impl<K, V> Drop for SplitOrderedMap<K, V> {
    fn drop(&mut self) {
        // Exclusive access: free every list node (dummies included); the directory
        // frees its own tree, every level, in its own Drop.
        unsafe {
            let mut cur: *mut ListNode<K, V> = self.head as *mut _;
            while !cur.is_null() {
                let node = Box::from_raw(cur);
                let next = node.next.load(Ordering::SeqCst);
                cur = tagged::unpack::<ListNode<K, V>>(next) as *mut _;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;

    #[test]
    fn so_key_helpers() {
        assert_eq!(dummy_so_key(0), 0);
        assert_eq!(parent_bucket(1), 0);
        assert_eq!(parent_bucket(5), 1);
        assert_eq!(parent_bucket(6), 2);
        assert_eq!(parent_bucket(8), 0);
        // Regular keys are odd after reversal, dummies even.
        assert_eq!(regular_so_key(0) & 1, 1);
        assert_eq!(dummy_so_key(3) & 1, 0);
        // Ordering property: a bucket's dummy sorts before its items.
        let h = 0xdead_beef_u64;
        assert!(dummy_so_key(h & 7) < regular_so_key(h) || (h & 7) != h % 8);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let map: SplitOrderedMap<u64, String> = SplitOrderedMap::new();
        assert!(map.is_empty());
        assert!(map.insert(1, "one".to_string()));
        assert!(map.insert(2, "two".to_string()));
        assert!(!map.insert(1, "uno".to_string()));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&1).as_deref(), Some("one"));
        assert_eq!(map.get(&3), None);
        assert_eq!(map.remove(&1).as_deref(), Some("one"));
        assert_eq!(map.get(&1), None);
        assert_eq!(map.remove(&1), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn remove_if_checks_the_value() {
        let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
        map.insert(10, 100);
        assert!(!map.remove_if(&10, |v| *v == 999));
        assert_eq!(map.get(&10), Some(100));
        assert!(map.remove_if(&10, |v| *v == 100));
        assert_eq!(map.get(&10), None);
        assert!(!map.remove_if(&11, |_| true));
    }

    #[test]
    fn grows_past_many_items_and_stays_correct() {
        let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
        let n = 10_000u64;
        for i in 0..n {
            assert!(map.insert(i, i * 2));
        }
        assert_eq!(map.len(), n as usize);
        assert!(map.size.load(Ordering::SeqCst) > 1, "table must have grown");
        for i in 0..n {
            assert_eq!(map.get(&i), Some(i * 2), "key {i}");
        }
        for i in (0..n).step_by(2) {
            assert_eq!(map.remove(&i), Some(i * 2));
        }
        for i in 0..n {
            let expected = if i % 2 == 0 { None } else { Some(i * 2) };
            assert_eq!(map.get(&i), expected);
        }
        assert_eq!(map.len(), (n / 2) as usize);
    }

    #[test]
    fn saturated_table_stays_correct_and_is_observable() {
        use skiptrie_metrics::Counter;

        // A 4-bucket cap saturates after ~12 items; any larger cap behaves
        // identically at `cap * LOAD_FACTOR` items. (The default config has no cap
        // at all — see the unbounded tests below.)
        let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::with_bucket_cap(4);
        assert!(!map.is_saturated());
        let n = 500u64;
        let ((), delta) = skiptrie_metrics::measure(|| {
            for i in 0..n {
                assert!(map.insert(i, i * 3));
            }
        });
        // The directory stopped at the cap instead of doubling to ~n/3 buckets...
        assert_eq!(map.bucket_count(), 4);
        assert!(map.is_saturated());
        // ...and said so: every post-cap insert that wanted a doubling recorded the
        // saturation counter (once per insert past the load-factor threshold).
        assert!(
            delta.get(Counter::HashSaturated) >= n - 4 * LOAD_FACTOR as u64 - 1,
            "saturation must be observable: {} records",
            delta.get(Counter::HashSaturated)
        );
        // Correctness is unaffected — the chains are just long.
        for i in 0..n {
            assert_eq!(map.get(&i), Some(i * 3), "lookup {i} past saturation");
        }
        assert!(!map.insert(7, 0), "duplicate rejection still works");
        for i in (0..n).step_by(2) {
            assert_eq!(map.remove(&i), Some(i * 3));
        }
        for i in 0..n {
            let expected = (i % 2 == 1).then_some(i * 3);
            assert_eq!(map.get(&i), expected, "post-removal lookup {i}");
        }
        assert_eq!(map.len(), n as usize / 2);
    }

    #[test]
    fn bucket_cap_is_clamped_and_rounded() {
        let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::with_bucket_cap(5);
        for i in 0..200u64 {
            map.insert(i, i);
        }
        assert_eq!(
            map.bucket_count(),
            8,
            "cap 5 rounds up to 8 and stops there"
        );
        let unbounded: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
        for i in 0..200u64 {
            unbounded.insert(i, i);
        }
        assert!(unbounded.bucket_count() > 8, "there is no default cap");
        assert!(!unbounded.is_saturated());
    }

    #[test]
    fn bucket_cap_is_no_longer_clamped_at_the_former_ceiling() {
        // Before the growable directory, caps were clamped to the fixed directory's
        // 2^24-bucket ceiling; the segment tree accepts (much) larger bounds.
        let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::with_bucket_cap(1 << 26);
        assert_eq!(map.max_buckets, 1 << 26);
        let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::with_bucket_cap(usize::MAX);
        assert_eq!(map.max_buckets, 1 << 62, "overflow-safety clamp, not 2^24");
    }

    #[test]
    fn unbounded_small_fanout_grows_through_many_heights() {
        // Fanout 16 makes root growth reachable: 16 -> 256 -> 4096 -> 65536 buckets.
        let config = DirectoryConfig::default().with_segment_bits(4);
        let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::with_directory(config);
        assert_eq!(map.directory_height(), 1);
        let n = 20_000u64;
        for i in 0..n {
            assert!(map.insert(i, i + 1));
        }
        assert!(
            map.bucket_count() > 4096,
            "the doubling rule crossed three former tree capacities"
        );
        assert!(map.directory_height() >= 4);
        assert!(!map.is_saturated(), "unbounded mode never saturates");
        for i in 0..n {
            assert_eq!(map.get(&i), Some(i + 1), "key {i}");
        }
    }

    #[test]
    fn bulk_load_builds_the_tree_at_its_final_height() {
        let config = DirectoryConfig::default().with_segment_bits(4);
        let mut bulk: SplitOrderedMap<u64, u64> = SplitOrderedMap::with_directory(config);
        let incremental: SplitOrderedMap<u64, u64> = SplitOrderedMap::with_directory(config);
        let n = 20_000u64;
        bulk.bulk_load((0..n).map(|i| (i, i * 5)).collect());
        for i in 0..n {
            incremental.insert(i, i * 5);
        }
        assert_eq!(bulk.bucket_count(), incremental.bucket_count());
        assert_eq!(
            bulk.directory_height(),
            incremental.directory_height(),
            "pre-sizing reaches the same height as incremental growth"
        );
        assert!(bulk.directory_height() >= 4);
        for i in (0..n).step_by(97) {
            assert_eq!(bulk.get(&i), Some(i * 5));
        }
    }

    #[test]
    fn bulk_load_equals_incremental_inserts() {
        let mut bulk: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
        // Pre-existing entries (the SkipTrie's permanent ε is the real-world case).
        assert!(bulk.insert(1_000_000, 42));
        assert!(bulk.insert(2_000_000, 43));
        let incremental: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
        incremental.insert(1_000_000, 42);
        incremental.insert(2_000_000, 43);

        let n = 20_000u64;
        let items: Vec<(u64, u64)> = (0..n).map(|i| (i, i * 7)).collect();
        assert_eq!(bulk.bulk_load(items.clone()), n as usize);
        for (k, v) in items {
            incremental.insert(k, v);
        }
        assert_eq!(bulk.len(), incremental.len());
        assert_eq!(
            bulk.bucket_count(),
            incremental.bucket_count(),
            "bulk replays the incremental doubling rule"
        );
        for i in 0..n {
            assert_eq!(bulk.get(&i), Some(i * 7), "bulk get {i}");
        }
        assert_eq!(
            bulk.get(&1_000_000),
            Some(42),
            "pre-existing entry survives"
        );
        assert_eq!(bulk.get(&n), None);
        // The loaded map keeps working through the concurrent protocol.
        assert!(!bulk.insert(5, 0), "duplicates still rejected");
        assert!(bulk.insert(n + 1, 1));
        for i in (0..n).step_by(3) {
            assert_eq!(bulk.remove(&i), Some(i * 7));
        }
        let mut live = 0usize;
        bulk.for_each(|_, _| live += 1);
        assert_eq!(live, bulk.len());
    }

    #[test]
    fn bulk_load_respects_the_bucket_cap() {
        let mut capped: SplitOrderedMap<u64, u64> = SplitOrderedMap::with_bucket_cap(4);
        let ((), delta) = skiptrie_metrics::measure(|| {
            capped.bulk_load((0..200u64).map(|i| (i, i)).collect());
        });
        assert_eq!(capped.bucket_count(), 4);
        assert!(capped.is_saturated());
        assert!(
            delta.get(skiptrie_metrics::Counter::HashSaturated) >= 180,
            "capped bulk inserts record saturation too"
        );
        for i in 0..200u64 {
            assert_eq!(capped.get(&i), Some(i));
        }
    }

    #[test]
    fn empty_bulk_load_is_a_noop() {
        let mut map: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
        assert_eq!(map.bulk_load(Vec::new()), 0);
        assert!(map.is_empty());
        assert!(map.insert(1, 1));
    }

    #[test]
    #[should_panic(expected = "distinct keys")]
    fn bulk_load_rejects_within_batch_duplicates() {
        let mut map: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
        map.bulk_load(vec![(1, 1), (2, 2), (1, 3)]);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn bulk_load_rejects_present_keys() {
        let mut map: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
        map.insert(7, 7);
        map.bulk_load(vec![(7, 8)]);
    }

    #[test]
    fn string_keys_work() {
        let map: SplitOrderedMap<String, u64> = SplitOrderedMap::new();
        for i in 0..500u64 {
            assert!(map.insert(format!("key-{i}"), i));
        }
        for i in 0..500u64 {
            assert_eq!(map.get(&format!("key-{i}")), Some(i));
        }
        assert_eq!(map.get(&"missing".to_string()), None);
    }

    #[test]
    fn for_each_visits_live_entries() {
        let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
        for i in 0..100 {
            map.insert(i, i);
        }
        for i in 0..50 {
            map.remove(&i);
        }
        let mut collected = HashMap::new();
        map.for_each(|k, v| {
            collected.insert(*k, *v);
        });
        assert_eq!(collected.len(), 50);
        assert!(collected.keys().all(|k| *k >= 50));
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let map = Arc::new(SplitOrderedMap::<u64, u64>::new());
        let threads = 8;
        let per_thread = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let key = t as u64 * per_thread + i;
                        assert!(map.insert(key, key + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.len(), (threads as u64 * per_thread) as usize);
        for key in 0..threads as u64 * per_thread {
            assert_eq!(map.get(&key), Some(key + 1));
        }
    }

    #[test]
    fn concurrent_same_key_insert_races_have_one_winner() {
        let map = Arc::new(SplitOrderedMap::<u64, u64>::new());
        let threads = 8;
        let keys = 200u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    let mut wins = 0u64;
                    for k in 0..keys {
                        if map.insert(k, t as u64) {
                            wins += 1;
                        }
                    }
                    wins
                })
            })
            .collect();
        let total_wins: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total_wins, keys, "each key must be inserted exactly once");
        assert_eq!(map.len(), keys as usize);
    }

    #[test]
    fn concurrent_insert_remove_churn_is_consistent() {
        let map = Arc::new(SplitOrderedMap::<u64, u64>::new());
        let threads = 8usize;
        let iters = 3_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    let mut net = 0i64;
                    for i in 0..iters {
                        // Each thread works on its own key range so the net count is
                        // exactly reconstructible.
                        let key = (t as u64) << 32 | (i % 64);
                        if i % 2 == 0 {
                            if map.insert(key, i) {
                                net += 1;
                            }
                        } else if map.remove(&key).is_some() {
                            net -= 1;
                        }
                    }
                    net
                })
            })
            .collect();
        let net_total: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(map.len() as i64, net_total);
        let mut live = 0;
        map.for_each(|_, _| live += 1);
        assert_eq!(live as i64, net_total);
    }
}
