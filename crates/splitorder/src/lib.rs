//! A lock-free, resizable hash table based on **split-ordered lists**
//! (Shalev & Shavit, "Split-ordered lists: Lock-free extensible hash tables").
//!
//! The SkipTrie stores the prefixes of its x-fast trie in exactly such a table
//! (paper, Section 1: "For the hash table we use Split-Ordered Hashing \[19\], a
//! resizable lock-free hash table that supports all operations in expected O(1)
//! steps"), and additionally requires one extra operation,
//! [`SplitOrderedMap::remove_if`], the paper's `compareAndDelete(p, n)`: remove the
//! entry for `p` only if it still maps to trie node `n`.
//!
//! # How split-ordering works
//!
//! All items live in a single lock-free sorted linked list (a Harris-style list with
//! logical deletion marks). The sort key is the *bit-reversed* hash: recursively
//! splitting a bucket in two then corresponds to a contiguous split of the list, so
//! the table can double its bucket count without moving a single item. Each bucket is
//! a lazily-created *dummy* node that points into the list at the position where that
//! bucket's items begin; a lookup hashes the key, finds (or initializes) the bucket's
//! dummy, and scans a short expected-`O(1)` run of the list.
//!
//! # Examples
//!
//! ```
//! use skiptrie_splitorder::SplitOrderedMap;
//!
//! let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::new();
//! assert!(map.insert(7, 700));
//! assert!(!map.insert(7, 701), "insert is insert-if-absent");
//! assert_eq!(map.get(&7), Some(700));
//! assert!(map.remove_if(&7, |v| *v == 700));
//! assert_eq!(map.get(&7), None);
//! ```

#![warn(missing_docs)]

mod dir;
mod list;
mod map;

pub use dir::DirectoryConfig;
pub use map::SplitOrderedMap;
