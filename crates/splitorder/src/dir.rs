//! The growable bucket directory: a lock-free segment *tree* whose root pointer
//! carries the tree height in its low tag bits.
//!
//! The original directory was a fixed `Box<[AtomicPtr<Segment>]>` of `2^12` lazily
//! allocated segments — a hard ceiling of `2^24` buckets past which every probe of
//! the split-ordered map degrades into a chain walk. This module removes the ceiling
//! the way cs431's `GrowableArray` does for its hash table: the directory becomes a
//! radix tree of fixed-fanout nodes, and the *root word* packs both the pointer to
//! the top node and the current tree height, so one atomic load tells a reader how
//! to interpret the whole structure.
//!
//! # The CAS-grow protocol
//!
//! A tree of height `h` covers bucket indices `0 .. fanout^h`. To grow, a thread
//! allocates a fresh node, stores the *current* root pointer into its slot 0, and
//! CASes the root word from `(old_root, h)` to `(new_node, h + 1)`. Slot 0 is the
//! correct position because every index that fits in the old tree has zeros in the
//! bit positions the new level decodes. A loser of the race frees its fresh node
//! (nothing else can have seen it) and re-reads the root. Readers that loaded the
//! old root word *before* the growth stay correct: the old root is still the live
//! subtree covering the low indices, and the leaf slots it reaches are the very same
//! `AtomicU64` words the taller tree reaches for those indices.
//!
//! Interior and leaf nodes are raced in with CAS exactly like the old segments:
//! allocate zeroed, `compare_exchange(null, fresh)`, loser frees. Nodes are **never
//! unlinked or moved** while the map is alive, which is why readers need no epoch
//! pin beyond the one the map already holds for its list nodes: directory memory is
//! type- and address-stable for the map's whole lifetime and is freed only by
//! [`Drop`] under `&mut self`.
//!
//! The height tag needs 3 bits (heights `1..=7`), one more than the workspace's
//! [`skiptrie_atomics::tagged`] mark/descriptor pair uses, so the packing lives here
//! rather than in `tagged`; `AtomicU64` nodes are 8-byte aligned, leaving exactly 3
//! low bits. Seven levels of the default `2^12` fanout cover `2^84` buckets — more
//! indices than a `u64` hash can name, so the default directory is unbounded in
//! every practical sense and [`Directory::max_capacity`] saturates at `2^63`.

use std::sync::atomic::{AtomicU64, Ordering};

use skiptrie_metrics::{self as metrics, Counter};

/// Mask of the root-word bits holding the tree height (`1..=MAX_HEIGHT`).
const HEIGHT_MASK: u64 = 0b111;

/// Maximum tree height representable in the root word's 3 tag bits.
pub(crate) const MAX_HEIGHT: u32 = 7;

/// Default fanout exponent: `2^12` slots per node, matching the segment size of the
/// old fixed directory (one node = one 32 KiB leaf segment).
pub(crate) const DEFAULT_SEGMENT_BITS: u32 = 12;

/// Shape of a [`crate::SplitOrderedMap`]'s bucket directory.
///
/// The default is the unbounded growable tree with `2^12`-slot nodes; the two knobs
/// exist for tests and A/B experiments:
///
/// * [`segment_bits`](DirectoryConfig::segment_bits) shrinks the node fanout so root
///   growth happens at table sizes a unit test can reach (fanout 16 grows at 16,
///   256, 4096, ... buckets instead of 4096, 16M, ...).
/// * [`bucket_cap`](DirectoryConfig::bucket_cap) restores the legacy *bounded* mode:
///   the table stops doubling at the cap and records
///   [`Counter::HashSaturated`] per capped insert, exactly as before this directory
///   could grow. Benchmarks use it to reproduce the old saturation cliff on demand.
///
/// # Examples
///
/// ```
/// use skiptrie_splitorder::{DirectoryConfig, SplitOrderedMap};
///
/// let config = DirectoryConfig::default().with_segment_bits(4);
/// let map: SplitOrderedMap<u64, u64> = SplitOrderedMap::with_directory(config);
/// for i in 0..10_000u64 {
///     map.insert(i, i);
/// }
/// assert!(map.directory_height() >= 3, "the tree grew to cover the buckets");
/// assert!(!map.is_saturated(), "unbounded mode never saturates");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectoryConfig {
    /// Fanout exponent: every tree node has `2^segment_bits` slots. Must be in
    /// `2..=16`; the default is 12.
    pub segment_bits: u32,
    /// `None` (the default) grows the directory without bound; `Some(cap)` is the
    /// legacy bounded mode — see [`crate::SplitOrderedMap::with_bucket_cap`].
    pub bucket_cap: Option<usize>,
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        DirectoryConfig {
            segment_bits: DEFAULT_SEGMENT_BITS,
            bucket_cap: None,
        }
    }
}

impl DirectoryConfig {
    /// Overrides the node fanout exponent (`2..=16`; validated at map construction).
    pub fn with_segment_bits(mut self, segment_bits: u32) -> Self {
        self.segment_bits = segment_bits;
        self
    }

    /// Switches to the legacy bounded mode with the given bucket cap.
    pub fn with_bucket_cap(mut self, bucket_cap: usize) -> Self {
        self.bucket_cap = Some(bucket_cap);
        self
    }
}

/// Allocates one zeroed tree node of `fanout` slots, returning its thin pointer.
fn alloc_node(fanout: usize) -> *mut AtomicU64 {
    metrics::record(Counter::DirNodeAlloc);
    let node: Box<[AtomicU64]> = (0..fanout).map(|_| AtomicU64::new(0)).collect();
    Box::into_raw(node) as *mut AtomicU64
}

/// Frees a node previously produced by [`alloc_node`].
///
/// # Safety
///
/// `node` must be an [`alloc_node`] result of the same `fanout`, not freed before,
/// and no longer reachable by any thread.
unsafe fn free_node(node: *mut AtomicU64, fanout: usize) {
    metrics::record(Counter::DirNodeFreed);
    drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
        node, fanout,
    )));
}

/// The lock-free growable bucket directory (see the module docs).
///
/// Leaf slots are the map's bucket entries (tagged list-node words, `0` =
/// uninitialized bucket); interior slots hold packed child-node pointers (`0` = not
/// yet allocated). Both are bare `u64` words, so one node type serves every level
/// and the level a slot is read at decides its meaning.
pub(crate) struct Directory {
    /// Packed root: node pointer | tree height (low 3 bits, `1..=MAX_HEIGHT`).
    root: AtomicU64,
    /// Fanout exponent; every node has `1 << fanout_bits` slots.
    fanout_bits: u32,
}

impl Directory {
    /// A directory of height 1 (a single leaf node).
    ///
    /// # Panics
    ///
    /// Panics if `fanout_bits` is outside `2..=16`.
    pub(crate) fn new(fanout_bits: u32) -> Self {
        assert!(
            (2..=16).contains(&fanout_bits),
            "segment_bits must be between 2 and 16, got {fanout_bits}"
        );
        let root = alloc_node(1 << fanout_bits);
        Directory {
            root: AtomicU64::new(root as u64 | 1),
            fanout_bits,
        }
    }

    fn fanout(&self) -> usize {
        1 << self.fanout_bits
    }

    /// Bucket indices covered by a tree of `height`, saturating at `2^63` (more than
    /// any reachable `size`, and safe for power-of-two arithmetic on `usize`).
    fn capacity_at(&self, height: u32) -> usize {
        let shift = (self.fanout_bits * height).min(63);
        1usize << shift
    }

    /// Bucket indices the directory can ever cover at [`MAX_HEIGHT`].
    pub(crate) fn max_capacity(&self) -> usize {
        self.capacity_at(MAX_HEIGHT)
    }

    /// Current tree height (`1..=MAX_HEIGHT`).
    pub(crate) fn height(&self) -> u32 {
        (self.root.load(Ordering::SeqCst) & HEIGHT_MASK) as u32
    }

    /// Bucket indices covered without further growth.
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.capacity_at(self.height())
    }

    /// Number of allocated tree nodes (quiescently accurate; diagnostics only).
    pub(crate) fn node_count(&self) -> usize {
        let root = self.root.load(Ordering::SeqCst);
        self.count_subtree(
            (root & !HEIGHT_MASK) as *mut AtomicU64,
            (root & HEIGHT_MASK) as u32,
        )
    }

    fn count_subtree(&self, node: *mut AtomicU64, height: u32) -> usize {
        let mut total = 1;
        if height > 1 {
            for i in 0..self.fanout() {
                // SAFETY: nodes are live for the directory's lifetime.
                let child = unsafe { (*node.add(i)).load(Ordering::SeqCst) };
                if child != 0 {
                    total += self.count_subtree(child as *mut AtomicU64, height - 1);
                }
            }
        }
        total
    }

    /// Grows the root by one level if its height is still `observed_height`.
    ///
    /// Slot 0 of the new root is the old root: indices that fit in the old tree have
    /// zeros in the bits the new level decodes, so every existing leaf slot keeps its
    /// address. Losing the root CAS means another thread grew (or had grown) past
    /// `observed_height`; the fresh node is unreachable and freed on the spot.
    fn grow(&self, observed_height: u32) {
        assert!(
            observed_height < MAX_HEIGHT,
            "directory already at maximum height"
        );
        let root = self.root.load(Ordering::SeqCst);
        let height = (root & HEIGHT_MASK) as u32;
        if height > observed_height {
            return; // someone else already grew past what we observed
        }
        let fresh = alloc_node(self.fanout());
        // SAFETY: `fresh` is exclusively ours until the CAS publishes it.
        unsafe { (*fresh).store(root & !HEIGHT_MASK, Ordering::Relaxed) };
        metrics::record(Counter::CasAttempt);
        match self.root.compare_exchange(
            root,
            fresh as u64 | u64::from(height + 1),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => metrics::record(Counter::DirGrow),
            Err(_) => {
                metrics::record(Counter::CasFailure);
                // SAFETY: the CAS failed, so no other thread ever saw `fresh`. Clear
                // slot 0 first: it aliases the live old root, which must not be freed.
                unsafe {
                    (*fresh).store(0, Ordering::Relaxed);
                    free_node(fresh, self.fanout());
                }
            }
        }
    }

    /// Grows the tree until it covers at least `buckets` indices (clamped to
    /// [`Directory::max_capacity`]). Used to pre-size the tree to its final height in
    /// one pass — bulk loads and eager post-doubling growth — so later probes never
    /// pay the grow CAS.
    pub(crate) fn ensure_capacity(&self, buckets: usize) {
        loop {
            let root = self.root.load(Ordering::SeqCst);
            let height = (root & HEIGHT_MASK) as u32;
            if self.capacity_at(height) >= buckets || height == MAX_HEIGHT {
                return;
            }
            self.grow(height);
        }
    }

    /// The bucket word for `index`, growing the tree and allocating the node path on
    /// demand. The returned reference stays valid for the directory's lifetime.
    pub(crate) fn entry(&self, index: usize) -> &AtomicU64 {
        let mask = self.fanout() - 1;
        loop {
            let root = self.root.load(Ordering::SeqCst);
            let height = (root & HEIGHT_MASK) as u32;
            if index >= self.capacity_at(height) {
                // The doubling rule outran the tree (eager growth is best-effort);
                // grow here so no index below `size` can ever be out of range —
                // this replaces the old directory's "bucket index out of range"
                // assert with progress.
                self.grow(height);
                continue;
            }
            let mut node = (root & !HEIGHT_MASK) as *mut AtomicU64;
            for level in (1..height).rev() {
                let shift = self.fanout_bits * level;
                let slot_index = if shift >= usize::BITS {
                    0 // the index has no bits that high; only child 0 exists up here
                } else {
                    (index >> shift) & mask
                };
                // SAFETY: nodes are live and stable for the directory's lifetime.
                let slot = unsafe { &*node.add(slot_index) };
                let child = slot.load(Ordering::SeqCst);
                node = if child != 0 {
                    child as *mut AtomicU64
                } else {
                    self.install_child(slot)
                };
            }
            // SAFETY: as above; `index & mask` is within the node.
            return unsafe { &*node.add(index & mask) };
        }
    }

    /// Races a zeroed child node into an interior `slot`; the loser frees its node
    /// and adopts the winner's.
    fn install_child(&self, slot: &AtomicU64) -> *mut AtomicU64 {
        let fresh = alloc_node(self.fanout());
        metrics::record(Counter::CasAttempt);
        match slot.compare_exchange(0, fresh as u64, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => fresh,
            Err(existing) => {
                metrics::record(Counter::CasFailure);
                // SAFETY: the CAS failed, so no other thread ever saw `fresh`, and
                // its slots are still all zero.
                unsafe { free_node(fresh, self.fanout()) };
                existing as *mut AtomicU64
            }
        }
    }
}

impl Drop for Directory {
    fn drop(&mut self) {
        let root = *self.root.get_mut();
        let height = (root & HEIGHT_MASK) as u32;
        // SAFETY: exclusive access; every reachable node was alloc_node'd and is
        // freed exactly once by the walk.
        unsafe { self.free_subtree((root & !HEIGHT_MASK) as *mut AtomicU64, height) };
    }
}

impl Directory {
    /// Frees the subtree rooted at `node` (leaf slots hold list-node words owned by
    /// the map, not by the directory, and are left alone).
    ///
    /// # Safety
    ///
    /// Requires exclusive access and a well-formed subtree of the given height.
    unsafe fn free_subtree(&self, node: *mut AtomicU64, height: u32) {
        if height > 1 {
            for i in 0..self.fanout() {
                let child = (*node.add(i)).load(Ordering::Relaxed);
                if child != 0 {
                    self.free_subtree(child as *mut AtomicU64, height - 1);
                }
            }
        }
        free_node(node, self.fanout());
    }
}

// SAFETY: the directory is a tree of atomics mutated only through CAS; nodes are
// freed only under `&mut self`.
unsafe impl Send for Directory {}
unsafe impl Sync for Directory {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_height_one_and_grows_on_demand() {
        let dir = Directory::new(4);
        assert_eq!(dir.height(), 1);
        assert_eq!(dir.capacity(), 16);
        dir.entry(15).store(7, Ordering::SeqCst);
        assert_eq!(dir.height(), 1, "in-range entries do not grow the tree");
        dir.entry(16).store(8, Ordering::SeqCst);
        assert_eq!(dir.height(), 2);
        assert_eq!(dir.capacity(), 256);
        // The old leaf kept its slots: entry(15) resolves to the same word.
        assert_eq!(dir.entry(15).load(Ordering::SeqCst), 7);
        assert_eq!(dir.entry(16).load(Ordering::SeqCst), 8);
    }

    #[test]
    fn ensure_capacity_builds_the_height_directly() {
        let dir = Directory::new(4);
        dir.ensure_capacity(5_000);
        assert_eq!(dir.height(), 4, "16^3 = 4096 < 5000 <= 16^4");
        assert!(dir.capacity() >= 5_000);
        dir.ensure_capacity(1); // never shrinks
        assert_eq!(dir.height(), 4);
    }

    #[test]
    fn former_fixed_directory_cap_is_now_in_range() {
        // The old directory asserted `seg_idx < 2^12`, i.e. panicked at bucket index
        // 2^24. The tree just grows: index 2^24 needs height 3 at the default
        // fanout, and only the three nodes on its path are allocated.
        let former_cap = 1usize << 24;
        let dir = Directory::new(DEFAULT_SEGMENT_BITS);
        let ((), delta) = skiptrie_metrics::measure(|| {
            dir.entry(former_cap).store(42, Ordering::SeqCst);
        });
        assert_eq!(dir.height(), 3);
        assert_eq!(dir.entry(former_cap).load(Ordering::SeqCst), 42);
        assert!(
            delta.get(Counter::DirNodeAlloc) <= 4,
            "growth is lazy: only the path to the index is allocated"
        );
        assert!(dir.max_capacity() > former_cap, "the ceiling is gone");
    }

    #[test]
    fn max_capacity_saturates_for_wide_fanouts() {
        let dir = Directory::new(16);
        assert_eq!(dir.max_capacity(), 1usize << 63, "16 * 7 bits clamp at 63");
        let narrow = Directory::new(2);
        assert_eq!(narrow.max_capacity(), 1 << 14);
    }

    #[test]
    fn every_index_maps_to_a_distinct_stable_word() {
        let dir = Directory::new(2);
        let n = 256usize; // forces height 4 at fanout 4
        for i in 0..n {
            dir.entry(i).store(i as u64 + 1, Ordering::SeqCst);
        }
        dir.ensure_capacity(4 * n); // further growth must not move any slot
        for i in 0..n {
            assert_eq!(
                dir.entry(i).load(Ordering::SeqCst),
                i as u64 + 1,
                "index {i}"
            );
        }
    }

    #[test]
    fn node_count_tracks_allocations() {
        let dir = Directory::new(4);
        assert_eq!(dir.node_count(), 1);
        dir.entry(16).store(1, Ordering::SeqCst);
        // Height 2: new root + the old leaf (slot 0) + the lazily added leaf for 16.
        assert_eq!(dir.node_count(), 3);
    }

    #[test]
    fn concurrent_growth_races_resolve_to_one_tree() {
        use std::sync::Arc;
        let dir = Arc::new(Directory::new(4));
        let threads = 8usize;
        let per_thread = 2_000usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let dir = Arc::clone(&dir);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let index = i * threads + t; // interleaved, monotonically spreading
                        dir.entry(index).store((index + 1) as u64, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(dir.height() >= 4, "16k indices need height 4 at fanout 16");
        for index in 0..threads * per_thread {
            assert_eq!(
                dir.entry(index).load(Ordering::SeqCst),
                (index + 1) as u64,
                "index {index}"
            );
        }
    }

    #[test]
    fn drop_frees_every_level() {
        // Counters are process-wide and other tests run concurrently, so only
        // inflation-safe `>=` assertions are sound here.
        let ((), _delta) = skiptrie_metrics::measure(|| {
            let dir = Directory::new(4);
            for i in (0..10_000).step_by(7) {
                dir.entry(i).store(1, Ordering::SeqCst);
            }
            let nodes = dir.node_count();
            assert!(dir.height() >= 4);
            let before = skiptrie_metrics::snapshot();
            drop(dir);
            let freed = skiptrie_metrics::snapshot().since(&before);
            assert!(
                freed.get(Counter::DirNodeFreed) >= nodes as u64,
                "drop must free all {nodes} nodes"
            );
        });
    }

    #[test]
    #[should_panic(expected = "segment_bits")]
    fn rejects_degenerate_fanout() {
        let _ = Directory::new(1);
    }
}
