//! Property-based tests for the growable bucket directory: over arbitrary key
//! universes and operation sequences, the default *unbounded* map, a map bounded at
//! a never-reached huge cap, and a `BTreeMap` model are observationally identical —
//! growth changes where bucket words live, never what any operation returns. The
//! bulk path is covered too: `bulk_load` into a directory pre-grown to its final
//! height must equal item-at-a-time inserts.

use std::collections::BTreeMap;

use proptest::prelude::*;
use skiptrie_splitorder::{DirectoryConfig, SplitOrderedMap};

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u64, u32),
    Remove(u64),
    RemoveIf(u64, u32),
    Get(u64),
}

/// Keys drawn from a `2^universe_bits`-sized universe: small universes hammer
/// same-key races and collisions, large ones spread across many buckets.
fn op_strategy(universe_bits: u32) -> impl Strategy<Value = MapOp> {
    let mask = u64::MAX >> (64 - universe_bits);
    prop_oneof![
        (any::<u64>(), any::<u32>()).prop_map(move |(k, v)| MapOp::Insert(k & mask, v)),
        any::<u64>().prop_map(move |k| MapOp::Remove(k & mask)),
        (any::<u64>(), any::<u32>()).prop_map(move |(k, v)| MapOp::RemoveIf(k & mask, v)),
        any::<u64>().prop_map(move |k| MapOp::Get(k & mask)),
    ]
}

/// Applies `op` to `map`, asserting the observed result equals the model's (the
/// vendored `prop_assert*` macros panic on failure, so no `Result` plumbing).
fn apply_and_check(map: &SplitOrderedMap<u64, u32>, model: &mut BTreeMap<u64, u32>, op: &MapOp) {
    match *op {
        MapOp::Insert(k, v) => {
            let expected = !model.contains_key(&k);
            if expected {
                model.insert(k, v);
            }
            prop_assert_eq!(map.insert(k, v), expected);
        }
        MapOp::Remove(k) => {
            prop_assert_eq!(map.remove(&k), model.remove(&k));
        }
        MapOp::RemoveIf(k, v) => {
            let matches = model.get(&k) == Some(&v);
            if matches {
                model.remove(&k);
            }
            prop_assert_eq!(map.remove_if(&k, |stored| *stored == v), matches);
        }
        MapOp::Get(k) => {
            prop_assert_eq!(map.get(&k), model.get(&k).copied());
        }
    }
    prop_assert_eq!(map.len(), model.len());
}

fn contents(map: &SplitOrderedMap<u64, u32>) -> BTreeMap<u64, u32> {
    let mut out = BTreeMap::new();
    map.for_each(|k, v| {
        out.insert(*k, *v);
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unbounded_equals_bounded_at_huge_cap_equals_model(
        universe_bits in 1u32..=48,
        segment_bits in 2u32..=12,
        ops in proptest::collection::vec(op_strategy(48), 1..400),
    ) {
        // A fanout this small forces real root growth inside the op sequence;
        // the bounded twin's cap is far beyond any size 400 ops can reach, so
        // it never saturates and the two must stay step-for-step identical.
        let unbounded: SplitOrderedMap<u64, u32> = SplitOrderedMap::with_directory(
            DirectoryConfig::default().with_segment_bits(segment_bits),
        );
        let bounded: SplitOrderedMap<u64, u32> = SplitOrderedMap::with_bucket_cap(1 << 20);
        let mut unbounded_model = BTreeMap::new();
        let mut bounded_model = BTreeMap::new();
        let mask = u64::MAX >> (64 - universe_bits);
        for op in &ops {
            // Re-mask the ops into this case's universe so both maps see the
            // same (arbitrary-width) key stream.
            let op = match *op {
                MapOp::Insert(k, v) => MapOp::Insert(k & mask, v),
                MapOp::Remove(k) => MapOp::Remove(k & mask),
                MapOp::RemoveIf(k, v) => MapOp::RemoveIf(k & mask, v),
                MapOp::Get(k) => MapOp::Get(k & mask),
            };
            apply_and_check(&unbounded, &mut unbounded_model, &op);
            apply_and_check(&bounded, &mut bounded_model, &op);
        }
        prop_assert_eq!(&unbounded_model, &bounded_model);
        prop_assert_eq!(contents(&unbounded), unbounded_model);
        prop_assert_eq!(contents(&bounded), bounded_model);
        prop_assert!(!unbounded.is_saturated());
        prop_assert!(!bounded.is_saturated());
    }

    #[test]
    fn bulk_load_into_a_pre_grown_tree_equals_incremental(
        raw_keys in proptest::collection::vec(any::<u64>(), 1..600),
        segment_bits in 2u32..=12,
        follow_ups in proptest::collection::vec(op_strategy(64), 0..50),
    ) {
        // bulk_load requires distinct keys; dedup the arbitrary stream.
        let keys: std::collections::BTreeSet<u64> = raw_keys.into_iter().collect();
        let config = DirectoryConfig::default().with_segment_bits(segment_bits);
        let mut bulk: SplitOrderedMap<u64, u32> = SplitOrderedMap::with_directory(config);
        let incremental: SplitOrderedMap<u64, u32> = SplitOrderedMap::with_directory(config);
        let items: Vec<(u64, u32)> =
            keys.iter().map(|&k| (k, k as u32 ^ 0x5eed)).collect();
        prop_assert_eq!(bulk.bulk_load(items.clone()), items.len());
        let mut model = BTreeMap::new();
        for &(k, v) in &items {
            incremental.insert(k, v);
            model.insert(k, v);
        }
        // Same observable map, same directory: the bulk pre-size must land on
        // exactly the bucket count and tree height incremental growth reaches.
        prop_assert_eq!(bulk.bucket_count(), incremental.bucket_count());
        prop_assert_eq!(bulk.directory_height(), incremental.directory_height());
        prop_assert_eq!(contents(&bulk), model.clone());
        // The pre-grown tree keeps serving the concurrent protocol afterwards.
        for op in &follow_ups {
            apply_and_check(&bulk, &mut model, op);
        }
        prop_assert_eq!(contents(&bulk), model);
    }
}
