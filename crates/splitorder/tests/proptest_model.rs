//! Property-based tests: the split-ordered hash map behaves exactly like a
//! `HashMap` model over arbitrary operation sequences, and its split-ordering helper
//! invariants hold for arbitrary inputs.

use std::collections::HashMap;

use proptest::prelude::*;
use skiptrie_splitorder::SplitOrderedMap;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u16, u32),
    Remove(u16),
    RemoveIf(u16, u32),
    Get(u16),
}

fn op_strategy() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        any::<u16>().prop_map(MapOp::Remove),
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| MapOp::RemoveIf(k, v)),
        any::<u16>().prop_map(MapOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn behaves_like_hashmap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let map: SplitOrderedMap<u16, u32> = SplitOrderedMap::new();
        let mut model: HashMap<u16, u32> = HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let expected = !model.contains_key(&k);
                    if expected {
                        model.insert(k, v);
                    }
                    prop_assert_eq!(map.insert(k, v), expected);
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(map.remove(&k), model.remove(&k));
                }
                MapOp::RemoveIf(k, v) => {
                    let matches = model.get(&k) == Some(&v);
                    if matches {
                        model.remove(&k);
                    }
                    prop_assert_eq!(map.remove_if(&k, |stored| *stored == v), matches);
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(map.get(&k), model.get(&k).copied());
                }
            }
            prop_assert_eq!(map.len(), model.len());
        }
        // Final contents agree exactly.
        let mut seen: HashMap<u16, u32> = HashMap::new();
        map.for_each(|k, v| {
            seen.insert(*k, *v);
        });
        prop_assert_eq!(seen, model);
    }

    #[test]
    fn contains_matches_get(keys in proptest::collection::vec(any::<u32>(), 1..200)) {
        let map: SplitOrderedMap<u32, u32> = SplitOrderedMap::new();
        for &k in &keys {
            map.insert(k, k.wrapping_mul(3));
        }
        for &k in &keys {
            prop_assert!(map.contains_key(&k));
            prop_assert_eq!(map.get(&k), Some(k.wrapping_mul(3)));
        }
    }
}
