//! A software DCSS (double-compare-single-swap) built from single-word CAS.
//!
//! `DCSS(X, old_X, new_X, Y, old_Y)` atomically sets `X := new_X` iff `X == old_X`
//! and `Y == old_Y`. The SkipTrie uses it to avoid swinging list and trie pointers to
//! nodes that have already started being deleted (paper, Section 1: "we condition the
//! DCSS on the target of the pointer being unmarked, so that we can rest assured that
//! once a node has been marked and physically deleted, it will never become reachable
//! again").
//!
//! # Protocol
//!
//! The implementation follows the RDCSS recipe of Harris et al., adapted to tagged
//! `u64` words:
//!
//! 1. The owner allocates a descriptor recording `(expected, new, guard,
//!    expected_guard)` and installs a pointer to it into the target word with a CAS
//!    from `expected`; the pointer is distinguished from real values by
//!    [`DESC_BIT`](crate::tagged::DESC_BIT).
//! 2. Any thread that reads a descriptor-tagged word *helps*: it reads the guard word,
//!    proposes a verdict by CAS-ing the descriptor's `outcome` from `Undecided`, and
//!    then replaces the descriptor in the target word with `new` (success) or
//!    `expected` (failure). Because the verdict is agreed through the single `outcome`
//!    word, helpers can never disagree about whether the DCSS took effect.
//! 3. Readers use [`read_resolved`] so that a word never *appears* to hold a
//!    descriptor; writers CAS against resolved values, and a CAS that races with an
//!    installed descriptor simply fails and retries after helping.
//!
//! The linearization point of a successful DCSS is the (agreed) read of the guard word
//! while the descriptor is installed: at that instant the target logically holds
//! `expected` and the guard holds `expected_guard`.
//!
//! # Guard-word lifetime and the node pool
//!
//! A helper may dereference the descriptor's guard pointer *after* the owning
//! operation has returned (it loses the race to propose a verdict and merely observes
//! the decided outcome, but the dereference still happens). The guard word must
//! therefore live in **type-stable memory**: memory that is never returned to the
//! allocator while the data structure is alive. In this workspace every guard word is
//! the packed [`status`](#status-words) word of a skiplist node, and skiplist nodes
//! are recycled through a per-structure pool rather than freed (see
//! `skiptrie-skiplist::pool`), which also means a recycled node's bumped sequence
//! number makes any stale guard comparison fail. This is why [`dcss`] is an `unsafe
//! fn`: the caller promises the guard pointer stays dereferenceable.
//!
//! # Status words
//!
//! All guards in this workspace are *status words*: `bit 0` = STOP (deletion of the
//! node has begun — set before any physical removal), `bits 63..1` = incarnation
//! sequence number (bumped every time the node's memory is recycled). Packing both
//! into one word lets a single atomic load answer "is this still the same node, and
//! has its deletion begun?", which is exactly the paper's "conditioned on the node
//! remaining unmarked" guard, strengthened from *marked* to *stop-flagged* (stop is
//! set earlier in the deletion, so the guard is strictly more conservative; the paper
//! proves the structure remains linearizable even if the guard is dropped entirely).
//!
//! # CAS fallback
//!
//! [`DcssMode::CasOnly`] drops the guard and performs a plain CAS, as the paper
//! explicitly allows ("after attempting the DCSS some fixed number of times and
//! aborting, it is permissible to fall back to CAS"). The structures remain
//! linearizable and memory-safe (the node pool keeps every dereference valid); the
//! difference is measured by experiment E6.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crossbeam_epoch::Guard;
use skiptrie_metrics::{self as metrics, Counter};

use crate::tagged;

/// How conditional pointer swings are performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DcssMode {
    /// Full software DCSS via descriptors (the paper's default).
    #[default]
    Descriptor,
    /// Plain CAS, dropping the second comparison (the paper's sanctioned fallback).
    CasOnly,
}

/// Why a [`dcss`] call did not take effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DcssError {
    /// The target word did not hold the expected value; the actual (resolved) value is
    /// returned so callers can decide whether to retry.
    TargetMismatch(u64),
    /// The target matched but the guard word did not.
    GuardMismatch,
}

const UNDECIDED: u8 = 0;
const SUCCEEDED: u8 = 1;
const FAILED: u8 = 2;

/// The shared state of an in-flight DCSS.
///
/// Allocated by the owner, published by tagging its address with
/// [`DESC_BIT`](crate::tagged::DESC_BIT) in the target word, retired through the
/// epoch collector once uninstalled.
struct Descriptor {
    expected: u64,
    new: u64,
    guard: *const AtomicU64,
    expected_guard: u64,
    outcome: AtomicU8,
}

// SAFETY: the raw guard pointer is only dereferenced under the type-stable-memory
// contract documented on `dcss`; the descriptor itself is plain data otherwise.
unsafe impl Send for Descriptor {}
unsafe impl Sync for Descriptor {}

/// Completes (helps) the descriptor currently installed in `target` as `desc_word`.
///
/// # Safety
///
/// `desc_word` must be a descriptor-tagged value read from `target` while the calling
/// thread was pinned (`_epoch` witnesses that), and the descriptor's guard pointer
/// must satisfy the type-stable-memory contract of [`dcss`].
unsafe fn help(target: &AtomicU64, desc_word: u64, _epoch: &Guard) {
    debug_assert!(tagged::is_descriptor(desc_word));
    let desc = &*(tagged::unpack::<Descriptor>(desc_word));
    if desc.outcome.load(Ordering::Acquire) == UNDECIDED {
        // Read the guard and propose a verdict. Multiple helpers may propose
        // different verdicts; the CAS below makes the first proposal win, so every
        // thread then acts on the same agreed outcome.
        let guard_value = (*desc.guard).load(Ordering::SeqCst);
        let proposal = if guard_value == desc.expected_guard {
            SUCCEEDED
        } else {
            FAILED
        };
        let _ =
            desc.outcome
                .compare_exchange(UNDECIDED, proposal, Ordering::AcqRel, Ordering::Acquire);
    }
    let decided = desc.outcome.load(Ordering::Acquire);
    debug_assert_ne!(decided, UNDECIDED);
    let replacement = if decided == SUCCEEDED {
        desc.new
    } else {
        desc.expected
    };
    // Whoever wins this CAS uninstalls the descriptor; losers see it already gone.
    let _ = target.compare_exchange(desc_word, replacement, Ordering::AcqRel, Ordering::Acquire);
}

/// Loads a DCSS-target word, helping any in-flight descriptor first, so the returned
/// value is always a plain (possibly marked) pointer word, never a descriptor.
///
/// Every read of a word that can be a DCSS target (skiplist `next` words above level
/// 0, `prev` words, x-fast-trie child pointers) must go through this function;
/// otherwise the atomicity argument for DCSS breaks.
#[inline]
pub fn read_resolved(word: &AtomicU64, epoch: &Guard) -> u64 {
    // `Guard::protected` is the substrate choke point: under EBR it is the bare
    // load; under the hazard substrate the load is era-validated, which is what
    // makes the descriptor (and node) dereferences below scan-safe.
    let mut current = epoch.protected(|| word.load(Ordering::SeqCst));
    while tagged::is_descriptor(current) {
        metrics::record(Counter::DcssHelp);
        // SAFETY: `current` was read from `word` under the guard's protection;
        // descriptors are only retired after being uninstalled, so the dereference
        // inside `help` is valid, and guard words satisfy the crate-level
        // type-stable contract.
        unsafe { help(word, current, epoch) };
        current = epoch.protected(|| word.load(Ordering::SeqCst));
    }
    current
}

/// Performs `target: expected -> new` conditioned on `*guard == expected_guard`.
///
/// Returns `Ok(())` if the swap took effect, [`DcssError::TargetMismatch`] if the
/// target held a different (resolved) value, and [`DcssError::GuardMismatch`] if the
/// guard comparison failed while the target matched.
///
/// In [`DcssMode::CasOnly`] the guard is checked once, non-atomically, before a plain
/// CAS (the paper's fallback); in [`DcssMode::Descriptor`] the full helping protocol
/// described in the module documentation runs.
///
/// # Safety
///
/// * `guard` must point to an `AtomicU64` that remains valid (allocated, properly
///   aligned, not repurposed as a different type) for as long as any thread may still
///   hold a reference to this call's descriptor — in practice, for the lifetime of the
///   enclosing data structure. The node pool used by `skiptrie-skiplist` provides
///   this.
/// * `expected` and `new` must not carry [`DESC_BIT`](crate::tagged::DESC_BIT).
/// * The calling thread must stay pinned (`epoch`) for the duration of the call.
pub unsafe fn dcss(
    target: &AtomicU64,
    expected: u64,
    new: u64,
    guard: *const AtomicU64,
    expected_guard: u64,
    mode: DcssMode,
    epoch: &Guard,
) -> Result<(), DcssError> {
    debug_assert!(!tagged::is_descriptor(expected));
    debug_assert!(!tagged::is_descriptor(new));
    metrics::record(Counter::DcssAttempt);

    if mode == DcssMode::CasOnly {
        // Paper fallback: check the guard once, then plain CAS. Not atomic, but the
        // enclosing structures remain linearizable (see paper §4.2) and memory-safe.
        if (*guard).load(Ordering::SeqCst) != expected_guard {
            metrics::record(Counter::DcssFailure);
            return Err(DcssError::GuardMismatch);
        }
        metrics::record(Counter::CasAttempt);
        return match target.compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => Ok(()),
            Err(_) => {
                metrics::record(Counter::CasFailure);
                metrics::record(Counter::DcssFailure);
                let resolved = read_resolved(target, epoch);
                Err(DcssError::TargetMismatch(resolved))
            }
        };
    }

    // Birth era for the descriptor (meaningful only under the hazard substrate):
    // stamped before publication, so it cannot postdate reachability.
    let birth = epoch.current_era();
    let desc = Box::into_raw(Box::new(Descriptor {
        expected,
        new,
        guard,
        expected_guard,
        outcome: AtomicU8::new(UNDECIDED),
    }));
    let desc_word = tagged::pack_descriptor(desc);

    loop {
        match target.compare_exchange(expected, desc_word, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                // Installed: decide and uninstall (possibly with help).
                help(target, desc_word, epoch);
                let decided = (*desc).outcome.load(Ordering::Acquire);
                // Other threads may still hold the descriptor pointer; retire it.
                crate::retire_box_born(epoch, desc, birth);
                return if decided == SUCCEEDED {
                    Ok(())
                } else {
                    metrics::record(Counter::DcssFailure);
                    Err(DcssError::GuardMismatch)
                };
            }
            Err(actual) if tagged::is_descriptor(actual) => {
                // Someone else's DCSS is in flight on this word: resolve it under
                // the guard's protection and retry. (The CAS-failure value itself
                // was not a protected read, so it must not be dereferenced —
                // `read_resolved` re-reads the word through the substrate choke
                // point and helps whatever descriptor it validates.)
                let _ = read_resolved(target, epoch);
            }
            Err(actual) => {
                // Genuine value mismatch. The descriptor was never published, so it
                // can be freed immediately.
                drop(Box::from_raw(desc));
                metrics::record(Counter::DcssFailure);
                return Err(DcssError::TargetMismatch(actual));
            }
        }
    }
}

/// A plain CAS on a DCSS-target word that first resolves any in-flight descriptor.
///
/// Returns `Ok(())` on success and `Err(resolved_actual)` on failure. Used for
/// unconditional swings (e.g. physically unlinking a marked node) so that they compose
/// correctly with concurrent DCSS operations on the same word.
pub fn cas_resolved(target: &AtomicU64, expected: u64, new: u64, epoch: &Guard) -> Result<(), u64> {
    metrics::record(Counter::CasAttempt);
    match target.compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst) {
        Ok(_) => Ok(()),
        Err(_) => {
            metrics::record(Counter::CasFailure);
            Err(read_resolved(target, epoch))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pin;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn dcss_succeeds_when_both_match() {
        let target = AtomicU64::new(8);
        let guard_word = AtomicU64::new(40);
        let g = pin();
        let r = unsafe { dcss(&target, 8, 16, &guard_word, 40, DcssMode::Descriptor, &g) };
        assert_eq!(r, Ok(()));
        assert_eq!(read_resolved(&target, &g), 16);
    }

    #[test]
    fn dcss_fails_on_guard_mismatch_and_restores_target() {
        let target = AtomicU64::new(8);
        let guard_word = AtomicU64::new(41);
        let g = pin();
        let r = unsafe { dcss(&target, 8, 16, &guard_word, 40, DcssMode::Descriptor, &g) };
        assert_eq!(r, Err(DcssError::GuardMismatch));
        assert_eq!(read_resolved(&target, &g), 8);
    }

    #[test]
    fn dcss_fails_on_target_mismatch() {
        let target = AtomicU64::new(12);
        let guard_word = AtomicU64::new(40);
        let g = pin();
        let r = unsafe { dcss(&target, 8, 16, &guard_word, 40, DcssMode::Descriptor, &g) };
        assert_eq!(r, Err(DcssError::TargetMismatch(12)));
        assert_eq!(read_resolved(&target, &g), 12);
    }

    #[test]
    fn cas_only_mode_behaves_like_guarded_cas() {
        let target = AtomicU64::new(8);
        let guard_word = AtomicU64::new(40);
        let g = pin();
        let ok = unsafe { dcss(&target, 8, 16, &guard_word, 40, DcssMode::CasOnly, &g) };
        assert_eq!(ok, Ok(()));
        let guard_fail = unsafe { dcss(&target, 16, 24, &guard_word, 99, DcssMode::CasOnly, &g) };
        assert_eq!(guard_fail, Err(DcssError::GuardMismatch));
        let target_fail = unsafe { dcss(&target, 96, 24, &guard_word, 40, DcssMode::CasOnly, &g) };
        assert!(matches!(target_fail, Err(DcssError::TargetMismatch(16))));
    }

    #[test]
    fn read_resolved_returns_plain_values() {
        let target = AtomicU64::new(1234 & !crate::tagged::TAG_MASK);
        let g = pin();
        assert_eq!(read_resolved(&target, &g), 1234 & !crate::tagged::TAG_MASK);
    }

    #[test]
    fn cas_resolved_reports_actual_value() {
        let target = AtomicU64::new(8);
        let g = pin();
        assert_eq!(cas_resolved(&target, 8, 16, &g), Ok(()));
        assert_eq!(cas_resolved(&target, 8, 24, &g), Err(16));
    }

    /// Concurrent stress: many threads perform guarded increments on a shared counter
    /// word; the guard word is flipped to "closed" at a known value, after which no
    /// further increments may take effect. This checks both atomicity of the guard and
    /// agreement among helpers.
    #[test]
    fn concurrent_guarded_updates_respect_the_guard() {
        const THREADS: usize = 8;
        const ATTEMPTS: usize = 2000;
        const CLOSE_AT: u64 = 512;

        // Values are shifted left so they never collide with tag bits.
        let target = Arc::new(AtomicU64::new(0));
        let guard_word = Arc::new(AtomicU64::new(0)); // 0 = open, 1 = closed

        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let target = Arc::clone(&target);
                let guard_word = Arc::clone(&guard_word);
                std::thread::spawn(move || {
                    let mut applied = 0u64;
                    for _ in 0..ATTEMPTS {
                        let g = pin();
                        let cur = read_resolved(&target, &g);
                        let next = cur + 4; // keep tag bits clear
                        let res = unsafe {
                            dcss(
                                &target,
                                cur,
                                next,
                                &*guard_word as *const _,
                                0,
                                DcssMode::Descriptor,
                                &g,
                            )
                        };
                        if res.is_ok() {
                            applied += 1;
                            if next / 4 >= CLOSE_AT {
                                guard_word.store(1, std::sync::atomic::Ordering::SeqCst);
                            }
                        }
                    }
                    applied
                })
            })
            .collect();

        let total_applied: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let g = pin();
        let final_value = read_resolved(&target, &g) / 4;
        assert_eq!(
            final_value, total_applied,
            "every successful DCSS must contribute exactly one increment"
        );
        // The guard closes at CLOSE_AT; a few in-flight operations may have linearized
        // before the close, but the counter can never run far past it.
        assert!(final_value >= CLOSE_AT);
        assert!(
            final_value <= CLOSE_AT + THREADS as u64,
            "increments continued after the guard closed: {final_value}"
        );
    }

    /// Concurrent stress for CAS-only mode: the fallback must still never lose updates
    /// that it reports as successful.
    #[test]
    fn concurrent_cas_only_updates_are_not_lost() {
        const THREADS: usize = 8;
        const ATTEMPTS: usize = 2000;
        let target = Arc::new(AtomicU64::new(0));
        let guard_word = Arc::new(AtomicU64::new(0));

        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let target = Arc::clone(&target);
                let guard_word = Arc::clone(&guard_word);
                std::thread::spawn(move || {
                    let mut applied = 0u64;
                    for _ in 0..ATTEMPTS {
                        let g = pin();
                        let cur = read_resolved(&target, &g);
                        let res = unsafe {
                            dcss(
                                &target,
                                cur,
                                cur + 4,
                                &*guard_word as *const _,
                                0,
                                DcssMode::CasOnly,
                                &g,
                            )
                        };
                        if res.is_ok() {
                            applied += 1;
                        }
                    }
                    applied
                })
            })
            .collect();

        let total_applied: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let g = pin();
        assert_eq!(read_resolved(&target, &g) / 4, total_applied);
    }
}
