//! Tagged pointer words.
//!
//! Every mutable link in the SkipTrie's structures (skiplist `next`, `prev`, `back`,
//! trie child pointers, hash-table list links) is stored as a single [`AtomicU64`]
//! whose value is a pointer with up to two low tag bits:
//!
//! * [`MARK_BIT`] — the Harris-style *logical deletion* mark. Following the paper
//!   (Section 2, "we use the logical deletion scheme from \[10\], storing each node's
//!   next pointer together with its marked bit in one word"), the mark lives on the
//!   **victim's own `next` word**: a node is logically deleted once its `next` word
//!   carries the mark.
//! * [`DESC_BIT`] — the word currently holds a pointer to an in-flight DCSS
//!   descriptor (see [`crate::dcss`]); readers must help complete it before
//!   interpreting the word.
//!
//! Pointers stored in tagged words must therefore be at least 4-byte aligned; all node
//! types in this workspace are 8-byte aligned, which [`pack`] debug-asserts.

use std::sync::atomic::AtomicU64;

/// Logical-deletion mark bit (bit 0).
pub const MARK_BIT: u64 = 0b01;
/// DCSS-descriptor tag bit (bit 1).
pub const DESC_BIT: u64 = 0b10;
/// Mask covering every tag bit.
pub const TAG_MASK: u64 = MARK_BIT | DESC_BIT;

/// Packs a raw pointer into a tagged word with no tag bits set.
///
/// # Panics
///
/// Debug-asserts that the pointer's low bits are clear (i.e. the allocation is at
/// least 4-byte aligned).
#[inline]
pub fn pack<T>(ptr: *const T) -> u64 {
    let raw = ptr as u64;
    debug_assert_eq!(
        raw & TAG_MASK,
        0,
        "pointer not sufficiently aligned for tagging"
    );
    raw
}

/// Extracts the pointer from a tagged word, stripping every tag bit.
#[inline]
pub fn unpack<T>(word: u64) -> *const T {
    (word & !TAG_MASK) as *const T
}

/// Strips all tag bits, returning the bare pointer word.
#[inline]
pub fn untagged(word: u64) -> u64 {
    word & !TAG_MASK
}

/// Returns the tag bits of a word.
#[inline]
pub fn tag(word: u64) -> u64 {
    word & TAG_MASK
}

/// True if the word's pointer component is null.
#[inline]
pub fn is_null(word: u64) -> bool {
    untagged(word) == 0
}

/// True if the word carries the logical-deletion mark.
#[inline]
pub fn is_marked(word: u64) -> bool {
    word & MARK_BIT != 0
}

/// True if the word holds a DCSS descriptor pointer.
#[inline]
pub fn is_descriptor(word: u64) -> bool {
    word & DESC_BIT != 0
}

/// Returns `word` with the mark bit set (descriptor bit must not be set).
#[inline]
pub fn with_mark(word: u64) -> u64 {
    debug_assert!(!is_descriptor(word), "cannot mark a descriptor word");
    word | MARK_BIT
}

/// Returns `word` with the mark bit cleared.
#[inline]
pub fn without_mark(word: u64) -> u64 {
    word & !MARK_BIT
}

/// Packs a descriptor pointer into a word carrying [`DESC_BIT`].
#[inline]
pub fn pack_descriptor<T>(ptr: *const T) -> u64 {
    pack(ptr) | DESC_BIT
}

/// The null word (null pointer, no tags).
pub const NULL: u64 = 0;

/// A convenience constructor for an atomic link word holding `ptr` untagged.
#[inline]
pub fn atomic_from_ptr<T>(ptr: *const T) -> AtomicU64 {
    AtomicU64::new(pack(ptr))
}

/// A convenience constructor for an atomic link word holding null.
#[inline]
pub fn atomic_null() -> AtomicU64 {
    AtomicU64::new(NULL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let boxed = Box::new(1234u64);
        let ptr: *const u64 = &*boxed;
        let word = pack(ptr);
        assert_eq!(unpack::<u64>(word), ptr);
        assert!(!is_marked(word));
        assert!(!is_descriptor(word));
        assert!(!is_null(word));
    }

    #[test]
    fn null_word_properties() {
        assert!(is_null(NULL));
        assert!(
            is_null(with_mark(NULL)),
            "marked null still has null pointer"
        );
        assert_eq!(unpack::<u8>(NULL), std::ptr::null());
    }

    #[test]
    fn mark_bit_algebra() {
        let boxed = Box::new(5u32);
        let word = pack(&*boxed as *const u32);
        let marked = with_mark(word);
        assert!(is_marked(marked));
        assert_eq!(untagged(marked), word);
        assert_eq!(without_mark(marked), word);
        assert_eq!(unpack::<u32>(marked), &*boxed as *const u32);
    }

    #[test]
    fn descriptor_bit_is_distinct_from_mark() {
        let boxed = Box::new(0u64);
        let word = pack_descriptor(&*boxed as *const u64);
        assert!(is_descriptor(word));
        assert!(!is_marked(word));
        assert_eq!(unpack::<u64>(word), &*boxed as *const u64);
        assert_eq!(tag(word), DESC_BIT);
    }

    #[test]
    fn tag_mask_covers_both_bits() {
        assert_eq!(TAG_MASK, 0b11);
        assert_eq!(MARK_BIT & DESC_BIT, 0);
    }

    #[test]
    fn atomic_constructors() {
        use std::sync::atomic::Ordering;
        let boxed = Box::new(7u64);
        let a = atomic_from_ptr(&*boxed as *const u64);
        assert_eq!(
            unpack::<u64>(a.load(Ordering::SeqCst)),
            &*boxed as *const u64
        );
        let n = atomic_null();
        assert!(is_null(n.load(Ordering::SeqCst)));
    }
}
