//! Atomic building blocks for the SkipTrie reproduction: tagged pointer words and a
//! software DCSS (double-compare-single-swap) built from single-word CAS.
//!
//! The SkipTrie paper assumes two primitives:
//!
//! * single-word **CAS**, and
//! * **DCSS** — `DCSS(X, old_X, new_X, Y, old_Y)` sets `X := new_X` if and only if
//!   `X == old_X` *and* `Y == old_Y`, atomically.
//!
//! DCSS is not a portable hardware primitive, so — exactly as the paper anticipates
//! ("after attempting the DCSS some fixed number of times … it is permissible to fall
//! back to CAS") — we provide a software implementation derived from Harris et al.'s
//! RDCSS: the target word temporarily holds a pointer to a *descriptor* (distinguished
//! by a tag bit), any thread that encounters a descriptor helps complete it, and the
//! outcome is agreed through a per-descriptor status word so helpers can never
//! disagree.
//!
//! All link words in the data structures are represented as [`u64`]s holding a pointer
//! plus low tag bits (see [`tagged`]); this crate also re-exports the epoch-based
//! reclamation [`crossbeam_epoch::Guard`] used throughout, and a helper to
//! retire heap allocations through it.
//!
//! # Examples
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use skiptrie_atomics::dcss::{dcss, DcssMode, DcssError};
//!
//! let target = AtomicU64::new(8);
//! let guard_word = AtomicU64::new(0);
//! let epoch_guard = skiptrie_atomics::pin();
//!
//! // Succeeds: target == 8 and guard_word == 0.
//! // SAFETY: `guard_word` outlives every use of the descriptor (it lives on this
//! // stack frame and no other thread can reach it).
//! unsafe {
//!     dcss(&target, 8, 16, &guard_word, 0, DcssMode::Descriptor, &epoch_guard).unwrap();
//! }
//! assert_eq!(target.load(Ordering::SeqCst), 16);
//!
//! // Fails: the guard no longer matches.
//! guard_word.store(1, Ordering::SeqCst);
//! let err = unsafe { dcss(&target, 16, 24, &guard_word, 0, DcssMode::Descriptor, &epoch_guard) };
//! assert_eq!(err, Err(DcssError::GuardMismatch));
//! assert_eq!(target.load(Ordering::SeqCst), 16);
//! ```

#![warn(missing_docs)]

pub mod dcss;
pub mod tagged;

pub use crossbeam_epoch::{
    domain_stats, pin, pin_domain, pin_domain_with, GarbageStats, Guard, Reclaimer,
};

/// Retires a heap allocation created with [`Box::into_raw`], freeing it once no epoch
/// guard pinned before this call can still reach it.
///
/// Birth-agnostic: under the hazard substrate the allocation is treated as old
/// enough to be covered by any active interval (see [`retire_box_born`] for the
/// stamped variant structures use on their hot paths).
///
/// # Safety
///
/// * `ptr` must have been produced by `Box::into_raw(Box::new(_))` for the same `T`.
/// * `ptr` must not be retired more than once.
/// * After this call no *new* reference to `ptr` may be created from shared memory;
///   callers must guarantee the allocation is unreachable from the live structure
///   (threads that obtained the pointer while pinned before the call may keep using it
///   until they unpin).
pub unsafe fn retire_box<T: Send + 'static>(guard: &Guard, ptr: *mut T) {
    retire_box_born(guard, ptr, 0);
}

/// [`retire_box`] with the allocation's birth era, as captured by
/// [`Guard::current_era`] when the allocation was first published. EBR ignores
/// `birth`; the hazard substrate uses it to free objects born after a stalled
/// reader pinned (`birth = 0` is always sound, merely conservative).
///
/// # Safety
///
/// As [`retire_box`]; additionally `birth` must not postdate the era at which the
/// allocation first became reachable from shared memory.
pub unsafe fn retire_box_born<T: Send + 'static>(guard: &Guard, ptr: *mut T, birth: u64) {
    debug_assert!(!ptr.is_null(), "attempted to retire a null pointer");
    skiptrie_metrics::record(skiptrie_metrics::Counter::NodeRetired);
    guard.defer_unchecked_born(birth, move || {
        drop(Box::from_raw(ptr));
    });
}

/// Retires a batch of heap allocations created with [`Box::into_raw`] under a single
/// deferred closure — one epoch-queue entry for the whole batch instead of one per
/// allocation, which is the defer-side analogue of the operations batching their
/// unlinks per guard.
///
/// # Safety
///
/// Same contract as [`retire_box`], applied to every pointer in `ptrs`: each must
/// come from `Box::into_raw` for the same `T`, be unreachable from the live
/// structure, and be retired at most once.
pub unsafe fn retire_boxes<T: Send + 'static>(guard: &Guard, ptrs: Vec<*mut T>) {
    retire_boxes_born(guard, ptrs, 0);
}

/// [`retire_boxes`] with a birth era covering the whole batch — the **minimum** of
/// the members' birth eras, so the hazard scan never frees a batch while any
/// member could still be reached (a batch is freed atomically; an over-young birth
/// on the batch would let an older member escape a stalled reader's interval).
///
/// # Safety
///
/// As [`retire_boxes`]; additionally `birth` must not postdate the era at which
/// any member of the batch first became reachable from shared memory.
pub unsafe fn retire_boxes_born<T: Send + 'static>(guard: &Guard, ptrs: Vec<*mut T>, birth: u64) {
    if ptrs.is_empty() {
        return;
    }
    debug_assert!(
        ptrs.iter().all(|p| !p.is_null()),
        "attempted to retire a null pointer"
    );
    skiptrie_metrics::add(skiptrie_metrics::Counter::NodeRetired, ptrs.len() as u64);
    guard.defer_unchecked_born(birth, move || {
        for ptr in ptrs {
            drop(Box::from_raw(ptr));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn retire_box_eventually_drops() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let guard = pin();
            let ptr = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            unsafe { retire_box(&guard, ptr) };
        }
        // Force the collector to run by pinning/unpinning repeatedly.
        for _ in 0..1024 {
            let g = pin();
            g.flush();
        }
        // The deferred destruction must run at most once (and usually has by now).
        assert!(drops.load(Ordering::SeqCst) <= 1);
    }
}
